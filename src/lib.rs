#![deny(missing_docs)]
//! # deepn — DeepN-JPEG, a DNN-favorable JPEG-based image compression framework
//!
//! Facade crate for the DAC 2018 paper reproduction. It re-exports the
//! workspace crates so downstream users can depend on a single crate:
//!
//! - [`parallel`] — work-stealing data-parallel runtime driving every hot
//!   path below (`DEEPN_THREADS` sizes it; see `docs/PARALLELISM.md`)
//! - [`tensor`] — minimal NCHW `f32` tensor library
//! - [`nn`] — from-scratch CNN framework and the Mini* model zoo
//! - [`codec`] — baseline-sequential JPEG codec built from scratch
//! - [`dataset`] — seeded procedural labeled image dataset (ImageNet stand-in)
//! - [`power`] — edge-offloading energy/latency model
//! - [`core`] — the DeepN-JPEG contribution: frequency analysis, PLM
//!   quantization-table design, baselines, and the experiment pipeline
//! - [`store`] — versioned, checksummed on-disk artifacts (tables, band
//!   statistics, datasets, trained weights; see `docs/ARTIFACT_FORMAT.md`)
//! - [`serve`] — the long-running TCP compression service (worker pool +
//!   bounded job queue, both wire directions streamed strip-by-strip) and
//!   its persistent, pipelining client (see `docs/PROTOCOL.md`)
//! - [`front`] — sharded multi-process front end: supervises N `serve`
//!   backends, routes connections by consistent hashing with failover,
//!   aggregates fleet-wide metrics (see `docs/SHARDING.md`)
//! - [`trace`] — from-scratch observability substrate: instrument
//!   registry (counters/gauges/latency histograms), spans, Chrome-trace
//!   export, and a Prometheus text parser (see `docs/OBSERVABILITY.md`)
//! - [`lint`] — the workspace invariant analyzer behind `deepn lint`
//!   (safety-ledger, determinism, panic-policy, protocol-sync,
//!   metrics-sync, docs-gate)
//! - [`bench`](mod@bench) — shared helpers for the figure-regeneration benches (see
//!   `EXPERIMENTS.md` for how to rerun each paper figure)
//!
//! The `deepn` binary (`cargo run --bin deepn`) wires these together:
//! `build-table` / `train` persist artifacts, `serve` loads them into the
//! service, `bench-client` drives it, and `pipeline` reruns the figure
//! experiment with the decoded-set cache. `EXPERIMENTS.md` walks through
//! the full workflow.
//!
//! ## Quickstart
//!
//! ```
//! use deepn::core::{DeepnTableBuilder, PlmParams};
//! use deepn::codec::{Encoder, QuantTablePair};
//! use deepn::dataset::{DatasetSpec, ImageSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Generate a labeled dataset (stand-in for ImageNet).
//! let set = ImageSet::generate(&DatasetSpec::tiny(), 42);
//!
//! // 2. Run the DeepN-JPEG frequency analysis + PLM table design.
//! let tables: QuantTablePair = DeepnTableBuilder::new(PlmParams::paper())
//!     .sample_interval(3)
//!     .build(set.images())?;
//!
//! // 3. Compress with the DNN-favorable tables.
//! let jpeg = Encoder::with_tables(tables).encode(&set.images()[0])?;
//! assert!(!jpeg.is_empty());
//! # Ok(())
//! # }
//! ```

pub use deepn_bench as bench;
pub use deepn_codec as codec;
pub use deepn_core as core;
pub use deepn_dataset as dataset;
pub use deepn_front as front;
pub use deepn_lint as lint;
pub use deepn_nn as nn;
pub use deepn_parallel as parallel;
pub use deepn_power as power;
pub use deepn_serve as serve;
pub use deepn_store as store;
pub use deepn_tensor as tensor;
pub use deepn_trace as trace;
