//! The `deepn` command-line tool: build and persist artifacts, run the
//! compression service, drive it from a benchmarking client, and rerun
//! the figure pipeline against the decoded-set cache.
//!
//! Run `deepn help` for the full usage text; `EXPERIMENTS.md` walks
//! through the end-to-end workflow.

use deepn::codec::ppm::{read_ppm, write_ppm, write_ppm_header, PpmRowReader};
use deepn::codec::{
    DecodeWorkspace, Decoder, EncodeWorkspace, Encoder, PixelStrip, QuantTablePair,
};
use deepn::core::experiment::{run_symmetric_cached_with_models, ExperimentConfig, Scale};
use deepn::core::sa_search::{anneal, anneal_restarts, SaConfig};
use deepn::core::{analyze_images, CompressionScheme, DeepnTableBuilder, PlmParams};
use deepn::dataset::ImageSet;
use deepn::serve::{Client, PipelineReply, Server, ServerConfig};
use deepn::store::{self, ArtifactKind, FsModelCache, FsRoundTripCache, StoredModel};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
deepn — DeepN-JPEG artifact store + compression service CLI

USAGE:
    deepn <command> [options]

COMMANDS:
    build-table   Analyze a dataset and persist designed quantization tables
                  --out PATH [--scale fast|full] [--seed N] [--sa]
                  [--sa-iters N] [--sa-restarts N] [--stats-out PATH]
    train         Train a zoo model and persist its weights
                  --out PATH [--scale fast|full] [--model NAME] [--epochs N]
    compress      Compress a PPM image, streaming it strip-by-strip so RSS
                  stays bounded at any image size. With --addr the strips
                  travel to a running service (CompressStream op,
                  standard-Huffman, the service's own tables); otherwise
                  the local codec encodes
                  --input IN.ppm --output OUT.jpg [--verify]
                  [--addr HOST:PORT] [--tables PATH (required unless
                  --addr is given without --verify)]
    decompress    Decompress a JFIF stream back to PPM, streaming strips.
                  With --addr the service decodes and streams the pixel
                  strips back (DecompressStream op); either way the
                  decoded image is never materialized
                  --input IN.jpg --output OUT.ppm [--verify]
                  [--addr HOST:PORT]
    gen-ppm       Write a synthetic gradient PPM row-by-row (test input
                  for the streaming paths; never materializes the image)
                  --out PATH [--width N] [--height N]
    serve         Run the compression service on stored tables
                  --tables PATH --addr HOST:PORT [--workers N] [--queue N]
                  [--max-conns N] [--timeout-ms N (0 = no deadline)]
                  [--slow-ms N (log requests at/over N ms; 0 = off)]
                  [--model PATH]
    shard         Run a sharded fleet: one front end on --addr spawning
                  and supervising N `deepn serve` backends on ephemeral
                  ports, routing client connections by consistent hashing
                  with failover, restarting crashed backends with backoff,
                  and answering the Metrics op with a fleet-wide
                  shard-labelled exposition. SIGTERM (or a client
                  Shutdown) drains in-flight requests before exit
                  --tables PATH --addr HOST:PORT [--backends N]
                  [--vnodes N] [--drain-secs N] plus serve pass-throughs:
                  [--workers N] [--queue N] [--max-conns N]
                  [--timeout-ms N] [--slow-ms N] [--model PATH]
    loadgen       Load/soak a running service: N concurrent clients with a
                  mixed serial/pipelined op mix and optional connection
                  churn, a scraper thread polling the Metrics op
                  throughout, and a reconciling BENCH-shaped JSON report.
                  Exits nonzero when any anomaly flag is raised (error or
                  reject rate over budget, throughput stall, client/server
                  accounting mismatch) or the --baseline perf gate fails
                  --addr HOST:PORT [--clients N] [--duration-secs N]
                  [--window W (0 = all serial)] [--churn] [--tagged
                  (drive protocol-v2 tagged framing)] [--image-side N]
                  [--batch N] [--scrape-ms N] [--max-error-rate F]
                  [--max-reject-rate F] [--out PATH] [--baseline PATH]
                  [--min-rps-frac F]
    bench-client  Drive a running service and verify byte-identical
                  round-trips against the local codec. --pipeline W adds a
                  serial-vs-pipelined phase: the same per-image requests
                  once strictly request/response, once with a W-deep
                  in-flight window on the same connection
                  --addr HOST:PORT --tables PATH [--scale fast|full]
                  [--batch N] [--iters N] [--model PATH] [--pipeline W]
                  [--shutdown]
    metrics       Print a running service's Prometheus-style metrics.
                  --pretty summarizes histograms (count/mean/p50/p90/p99);
                  --check validates the exposition and exits nonzero on a
                  malformed scrape
                  --addr HOST:PORT [--pretty] [--check]
    pipeline      Rerun the figure experiment through the decoded-set cache.
                  --profile times each codec stage (output bytes are
                  identical either way) and prints the stage table
                  --cache-dir DIR [--scale fast|full] [--profile]
    trace-export  Run a pipelined mixed workload against an in-process
                  service with tracing and stage profiling on, and write
                  the recorded spans as Chrome trace-event JSON
                  (Perfetto-loadable)
                  --out PATH [--requests N] [--window W]
    inspect       Print an artifact's header
                  PATH
    lint          Run the workspace invariant analyzer (safety-ledger,
                  determinism, panic-policy, protocol-sync, docs-gate,
                  metrics-sync); exits nonzero on any finding
                  [--root DIR (default .)] [--json]
    help          Show this message
";

/// Minimal `--flag value` / `--flag` argument scanner.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn new(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// Consumes `--name VALUE`, if present.
    fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        if let Some(i) = self.argv.iter().position(|a| a == name) {
            if i + 1 >= self.argv.len() {
                return Err(format!("{name} requires a value"));
            }
            let v = self.argv.remove(i + 1);
            self.argv.remove(i);
            return Ok(Some(v));
        }
        Ok(None)
    }

    /// Consumes `--name VALUE`, requiring it.
    fn required(&mut self, name: &str) -> Result<String, String> {
        self.value(name)?
            .ok_or_else(|| format!("missing required option {name}"))
    }

    /// Consumes a boolean `--name`.
    fn flag(&mut self, name: &str) -> bool {
        if let Some(i) = self.argv.iter().position(|a| a == name) {
            self.argv.remove(i);
            return true;
        }
        false
    }

    /// Consumes a parsed `--name N` with a default.
    fn parsed<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, String> {
        match self.value(name)? {
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {name}: {v}")),
            None => Ok(default),
        }
    }

    /// The scale option (default: the `DEEPN_SCALE` environment variable).
    fn scale(&mut self) -> Result<Scale, String> {
        match self.value("--scale")?.as_deref() {
            Some("fast") => Ok(Scale::Fast),
            Some("full") => Ok(Scale::Full),
            Some(other) => Err(format!("invalid --scale {other} (fast|full)")),
            None => Ok(Scale::from_env()),
        }
    }

    /// Errors on anything left unconsumed.
    fn finish(self) -> Result<(), String> {
        if self.argv.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", self.argv.join(" ")))
        }
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = argv.remove(0);
    let args = Args::new(argv);
    let result = match cmd.as_str() {
        "build-table" => cmd_build_table(args),
        "train" => cmd_train(args),
        "compress" => cmd_compress(args),
        "decompress" => cmd_decompress(args),
        "gen-ppm" => cmd_gen_ppm(args),
        "metrics" => cmd_metrics(args),
        "serve" => cmd_serve(args),
        "shard" => cmd_shard(args),
        "loadgen" => cmd_loadgen(args),
        "bench-client" => cmd_bench_client(args),
        "pipeline" => cmd_pipeline(args),
        "trace-export" => cmd_trace_export(args),
        "inspect" => cmd_inspect(args),
        "lint" => cmd_lint(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("deepn {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The dataset every artifact-producing command derives from: the scale's
/// spec generated at a fixed seed, so `build-table`, `train`, and
/// `bench-client` all agree on the data distribution.
fn dataset_for(scale: Scale, seed: u64) -> ImageSet {
    ImageSet::generate(&scale.dataset_spec(), seed)
}

fn cmd_build_table(mut args: Args) -> Result<(), Box<dyn Error>> {
    let out = args.required("--out")?;
    let scale = args.scale()?;
    let seed = args.parsed("--seed", 0xDEE9u64)?;
    let use_sa = args.flag("--sa");
    let sa_iters = args.parsed("--sa-iters", SaConfig::default().iterations)?;
    let sa_restarts = args.parsed("--sa-restarts", 1usize)?;
    let stats_out = args.value("--stats-out")?;
    args.finish()?;
    if sa_restarts == 0 {
        return Err("--sa-restarts must be at least 1".into());
    }

    let t0 = Instant::now();
    let set = dataset_for(scale, seed);
    let stats = analyze_images(set.sample_per_class(3), 1)?;
    if let Some(path) = &stats_out {
        store::save(&stats, path)?;
        println!("band statistics -> {path}");
    }
    let tables = if use_sa {
        let cfg = SaConfig {
            iterations: sa_iters,
            seed,
            ..SaConfig::default()
        };
        let outcome = if sa_restarts > 1 {
            // Independent chains anneal in parallel on the shared pool.
            anneal_restarts(&stats, &cfg, sa_restarts)
        } else {
            anneal(&stats, &cfg)
        };
        println!(
            "SA search: {} iterations x {} restart(s), objective {:.1}",
            sa_iters, sa_restarts, outcome.objective
        );
        outcome.tables
    } else {
        DeepnTableBuilder::new(PlmParams::paper()).build_from_stats(&stats)?
    };
    store::save(&tables, &out)?;
    println!(
        "quantization tables ({}) -> {out}  [{} images analyzed, {:.2?}]",
        if use_sa { "SA-annealed" } else { "PLM" },
        stats.image_count(),
        t0.elapsed()
    );
    Ok(())
}

fn cmd_train(mut args: Args) -> Result<(), Box<dyn Error>> {
    let out = args.required("--out")?;
    let scale = args.scale()?;
    let model = args
        .value("--model")?
        .unwrap_or_else(|| "MiniAlexNet".into());
    let mut cfg = ExperimentConfig::alexnet(scale).with_model(&model);
    cfg.epochs = args.parsed("--epochs", cfg.epochs)?;
    cfg.seed = args.parsed("--seed", cfg.seed)?;
    args.finish()?;

    let t0 = Instant::now();
    let set = dataset_for(scale, cfg.seed);
    let net = deepn::core::experiment::train_model(&cfg, &set, &CompressionScheme::original())?;
    let img = &set.images()[0];
    let stored = StoredModel::from_network(
        &cfg.model,
        3,
        img.height(),
        img.width(),
        set.class_count(),
        cfg.seed,
        &net,
    );
    store::save(&stored, &out)?;
    println!(
        "trained {} ({} epochs) -> {out}  [{:.2?}]",
        cfg.model,
        cfg.epochs,
        t0.elapsed()
    );
    Ok(())
}

fn cmd_compress(mut args: Args) -> Result<(), Box<dyn Error>> {
    let tables_path = args.value("--tables")?;
    let input = args.required("--input")?;
    let output = args.required("--output")?;
    let verify = args.flag("--verify");
    let addr = args.value("--addr")?;
    args.finish()?;
    // The service encodes with its own tables, so a local artifact is
    // only needed to encode locally or to back --verify.
    let encoder = match &tables_path {
        Some(p) => Some(Encoder::with_tables(store::load::<QuantTablePair>(p)?)),
        None if addr.is_none() || verify => {
            return Err("--tables is required unless --addr is given without --verify".into())
        }
        None => None,
    };

    let open = |path: &str| -> Result<PpmRowReader<BufReader<File>>, Box<dyn Error>> {
        Ok(PpmRowReader::new(BufReader::new(File::open(path)?))?)
    };
    let mut reader = open(&input)?;
    let (w, h) = (reader.width(), reader.height());
    let mut strip = PixelStrip::new();
    let mut rows = Vec::new();
    let total;
    if let Some(addr) = &addr {
        // Service path: the strips travel over the wire (CompressStream),
        // one frame per strip, and the service answers with the JFIF blob.
        // Network peers cannot be rewound for the optimized-Huffman
        // analysis pass, so this is the single-pass standard-Huffman mode;
        // --verify compares against the same mode locally. The served
        // tables are the service's own — the local --tables only back the
        // verification.
        let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))?;
        let mut session = client.begin_compress_stream(w, h)?;
        for s in 0..session.strip_count() {
            let n = reader.read_rows(session.strip_rows(s), &mut rows)?;
            strip.set_rows(w, n, &rows)?;
            session.send_strip(strip.as_bytes())?;
        }
        let jfif = session.finish()?;
        total = jfif.len();
        std::fs::write(&output, &jfif)?;
        if verify {
            let encoder = encoder.as_ref().expect("--verify requires --tables");
            let image = read_ppm(BufReader::new(File::open(&input)?))?;
            let reference = encoder.clone().optimize_huffman(false).encode(&image)?;
            if jfif != reference {
                return Err("service stream differs from the local single-pass codec \
                            (is --tables the artifact the service was started with?)"
                    .into());
            }
            println!("verify OK: service bytes identical to the local single-pass codec");
        }
    } else {
        // Local path: the PPM streams through the codec strip by strip —
        // twice, because the optimized-Huffman analysis pass needs the
        // whole image's symbol statistics before the first header byte
        // (the file is simply reopened). Peak pixel memory is one 8-row
        // strip, whatever the image size.
        let encoder = encoder.as_ref().expect("local encoding requires --tables");
        let mut session = encoder.stream_encoder(w, h)?;
        let mut ws = EncodeWorkspace::new();
        for s in 0..session.strip_count() {
            let n = reader.read_rows(session.strip_rows(s), &mut rows)?;
            strip.set_rows(w, n, &rows)?;
            session.analyze_strip(&strip, &mut ws)?;
        }
        let mut reader = open(&input)?;
        let mut out = BufWriter::new(File::create(&output)?);
        let mut written = 0usize;
        for s in 0..session.strip_count() {
            let n = reader.read_rows(session.strip_rows(s), &mut rows)?;
            strip.set_rows(w, n, &rows)?;
            session.encode_strip(&strip, &mut ws)?;
            let chunk = session.take_output();
            written += chunk.len();
            out.write_all(&chunk)?;
        }
        let tail = session.finish()?;
        written += tail.len();
        out.write_all(&tail)?;
        out.flush()?;
        drop(out);
        total = written;
        if verify {
            let image = read_ppm(BufReader::new(File::open(&input)?))?;
            let reference = encoder.encode(&image)?;
            if std::fs::read(&output)? != reference {
                return Err("streamed output differs from the in-memory codec".into());
            }
            println!("verify OK: streamed bytes identical to the in-memory codec");
        }
    }
    println!(
        "{input} ({w}x{h}) -> {output} ({total} bytes, streamed{})",
        if addr.is_some() { " via service" } else { "" }
    );
    Ok(())
}

fn cmd_decompress(mut args: Args) -> Result<(), Box<dyn Error>> {
    let input = args.required("--input")?;
    let output = args.required("--output")?;
    let verify = args.flag("--verify");
    let addr = args.value("--addr")?;
    args.finish()?;
    let bytes = std::fs::read(&input)?;
    let decoder = Decoder::new();
    let (w, h);
    let mut out = BufWriter::new(File::create(&output)?);
    let mut strip = PixelStrip::new();
    if let Some(addr) = &addr {
        // Service path: the service decodes and frames the pixel strips
        // back over the wire (DecompressStream), and they stream straight
        // into the PPM file — resident memory is the compressed stream
        // plus one 8-row strip on both sides, never the decoded image.
        let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))?;
        let mut session = client.begin_decompress_stream(&bytes)?;
        (w, h) = (session.width(), session.height());
        write_ppm_header(&mut out, w, h)?;
        while session.next_strip(&mut strip)? {
            out.write_all(strip.as_bytes())?;
        }
    } else {
        // Local path: same bound, with the entropy decoder in-process.
        let mut session = decoder.stream_decoder(&bytes)?;
        (w, h) = (session.width(), session.height());
        write_ppm_header(&mut out, w, h)?;
        let mut ws = DecodeWorkspace::new();
        while session.next_strip(&mut ws, &mut strip)? {
            out.write_all(strip.as_bytes())?;
        }
    }
    out.flush()?;
    drop(out);
    if verify {
        let image = decoder.decode(&bytes)?;
        let mut reference = Vec::new();
        write_ppm(&image, &mut reference)?;
        if std::fs::read(&output)? != reference {
            return Err("streamed output differs from the in-memory codec".into());
        }
        println!("verify OK: streamed pixels identical to the in-memory codec");
    }
    println!(
        "{input} ({} bytes) -> {output} ({w}x{h}, streamed{})",
        bytes.len(),
        if addr.is_some() { " via service" } else { "" }
    );
    Ok(())
}

fn cmd_gen_ppm(mut args: Args) -> Result<(), Box<dyn Error>> {
    let out = args.required("--out")?;
    let width = args.parsed("--width", 2048usize)?;
    let height = args.parsed("--height", 2048usize)?;
    args.finish()?;
    if width == 0 || height == 0 || width > 0xFFFF || height > 0xFFFF {
        return Err(format!("invalid dimensions {width}x{height}").into());
    }
    // Row-streamed writer: the same gradient as `RgbImage::gradient`, but
    // one row resident at a time.
    let mut writer = BufWriter::new(File::create(&out)?);
    write_ppm_header(&mut writer, width, height)?;
    let mut row = vec![0u8; width * 3];
    for y in 0..height {
        for (x, px) in row.chunks_exact_mut(3).enumerate() {
            px[0] = (x * 255 / width) as u8;
            px[1] = (y * 255 / height) as u8;
            px[2] = 128;
        }
        writer.write_all(&row)?;
    }
    writer.flush()?;
    drop(writer);
    println!(
        "{out}: {width}x{height} gradient ({} bytes)",
        std::fs::metadata(&out)?.len()
    );
    Ok(())
}

fn cmd_metrics(mut args: Args) -> Result<(), Box<dyn Error>> {
    let addr = args.required("--addr")?;
    let pretty = args.flag("--pretty");
    let check = args.flag("--check");
    args.finish()?;
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))?;
    let text = client.metrics()?;
    if check {
        let families =
            deepn::trace::prom::validate(&text).map_err(|e| format!("bad scrape: {e}"))?;
        println!("scrape OK: {} metric families validate", families.len());
        return Ok(());
    }
    if pretty {
        print!("{}", deepn::trace::prom::pretty(&text)?);
    } else {
        print!("{text}");
    }
    Ok(())
}

fn cmd_serve(mut args: Args) -> Result<(), Box<dyn Error>> {
    let tables_path = args.required("--tables")?;
    let addr = args.required("--addr")?;
    let mut config = ServerConfig::default();
    config.workers = args.parsed("--workers", config.workers)?;
    config.queue_depth = args.parsed("--queue", config.queue_depth)?;
    config.max_connections = args.parsed("--max-conns", config.max_connections)?;
    let default_timeout_ms = config.request_timeout.map_or(0, |t| t.as_millis() as u64);
    let timeout_ms = args.parsed("--timeout-ms", default_timeout_ms)?;
    config.request_timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    let slow_ms = args.parsed("--slow-ms", 0u64)?;
    config.slow_threshold = (slow_ms > 0).then(|| Duration::from_millis(slow_ms));
    let model_path = args.value("--model")?;
    args.finish()?;

    let tables: QuantTablePair = store::load(&tables_path)?;
    let model = match &model_path {
        Some(p) => {
            let stored: StoredModel = store::load(p)?;
            let net = stored.instantiate()?;
            println!("model {} loaded from {p}", stored.arch);
            Some(net)
        }
        None => None,
    };
    // A worker panic would otherwise die silently with the thread; the
    // flight recorder dumps the last structured events from every thread.
    deepn::trace::log::install_panic_hook();
    let server = Server::bind(addr.as_str(), tables, model, config.clone())?;
    // Machine-parsable readiness line (the CI smoke job and the shard
    // front end's supervisor wait for it).
    println!(
        "deepn-serve listening on {} ({} workers, queue {}, {} conns max, \
         timeout {})",
        server.local_addr()?,
        config.workers,
        config.queue_depth,
        config.max_connections,
        config
            .request_timeout
            .map_or("off".to_owned(), |t| format!("{t:?}")),
    );
    // A piped stdout is block-buffered: without this flush a supervising
    // parent would never see the readiness line.
    std::io::stdout().flush()?;
    server.run()?;
    println!("deepn-serve stopped");
    Ok(())
}

fn cmd_shard(mut args: Args) -> Result<(), Box<dyn Error>> {
    use deepn::front::{signal, BackendCommand, Front, FrontConfig};

    let tables = args.required("--tables")?;
    let addr = args.required("--addr")?;
    let backends = args.parsed("--backends", 3usize)?;
    let vnodes = args.parsed("--vnodes", 64u32)?;
    let drain_secs = args.parsed("--drain-secs", 30u64)?;
    // Pass-throughs handed verbatim to every backend `deepn serve`.
    let passthrough = [
        ("--workers", args.value("--workers")?),
        ("--queue", args.value("--queue")?),
        ("--max-conns", args.value("--max-conns")?),
        ("--timeout-ms", args.value("--timeout-ms")?),
        ("--slow-ms", args.value("--slow-ms")?),
        ("--model", args.value("--model")?),
    ];
    args.finish()?;

    deepn::trace::log::init_from_env();
    deepn::trace::log::install_panic_hook();

    let exe = std::env::current_exe()?;
    let mut backend_args = vec![
        "serve".to_string(),
        "--tables".to_string(),
        tables,
        "--addr".to_string(),
        // Ephemeral: each backend reports where it landed via its
        // readiness line, which the supervisor parses.
        "127.0.0.1:0".to_string(),
    ];
    for (flag, value) in passthrough {
        if let Some(v) = value {
            backend_args.push(flag.to_string());
            backend_args.push(v);
        }
    }

    let mut config = FrontConfig::new(backends, BackendCommand::new(exe, backend_args));
    config.vnodes = vnodes;
    config.drain_timeout = Duration::from_secs(drain_secs);
    // SIGTERM starts the drain instead of killing the fleet mid-request.
    signal::install_term_handler();
    let front = Front::bind(addr.as_str(), config)?;
    // Machine-parsable readiness + pid lines (the CI shard job waits for
    // the first and injects faults with the second).
    println!(
        "deepn-front listening on {} ({backends} backends, {vnodes} vnodes, \
         drain {drain_secs}s)",
        front.local_addr()?
    );
    let pids: Vec<String> = front
        .backend_pids()
        .into_iter()
        .map(|p| p.map_or("-".to_string(), |p| p.to_string()))
        .collect();
    println!("deepn-front backend pids: {}", pids.join(" "));
    std::io::stdout().flush()?;
    front.run()?;
    println!("deepn-front drained");
    Ok(())
}

fn cmd_loadgen(mut args: Args) -> Result<(), Box<dyn Error>> {
    use std::net::ToSocketAddrs;
    let addr_arg = args.required("--addr")?;
    let addr = addr_arg
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("--addr {addr_arg} resolved to no address"))?;
    let mut cfg = deepn::serve::loadgen::LoadgenConfig::new(addr);
    cfg.clients = args.parsed("--clients", cfg.clients)?;
    cfg.duration = Duration::from_secs(args.parsed("--duration-secs", 10u64)?);
    cfg.pipeline_window = args.parsed("--window", cfg.pipeline_window)?;
    cfg.churn = args.flag("--churn");
    cfg.tagged = args.flag("--tagged");
    cfg.image_side = args.parsed("--image-side", cfg.image_side)?;
    cfg.batch = args.parsed("--batch", cfg.batch)?;
    cfg.scrape_interval = Duration::from_millis(args.parsed("--scrape-ms", 1000u64)?);
    cfg.max_error_rate = args.parsed("--max-error-rate", cfg.max_error_rate)?;
    cfg.max_reject_rate = args.parsed("--max-reject-rate", cfg.max_reject_rate)?;
    let out = args.value("--out")?;
    let baseline = args.value("--baseline")?;
    let min_rps_frac = args.parsed("--min-rps-frac", 0.25f64)?;
    args.finish()?;

    deepn::trace::log::init_from_env();
    deepn::trace::log::install_panic_hook();
    let report = deepn::serve::loadgen::run(&cfg)?;
    let json = report.to_json();
    deepn::trace::export::validate_json(&json)
        .map_err(|e| format!("internal error: loadgen report JSON malformed: {e}"))?;
    if let Some(path) = &out {
        std::fs::write(path, &json)?;
        println!("loadgen report written to {path}");
    } else {
        print!("{json}");
    }
    println!(
        "loadgen: {} ok, {} busy, {} timeout, {} error, {} io over {:.1}s \
         ({:.1} req/s, {} scrapes)",
        report.totals.ok,
        report.totals.busy,
        report.totals.timeout,
        report.totals.error,
        report.totals.io_error,
        report.duration_secs,
        report.rps,
        report.scrapes,
    );

    // Perf gate: compare throughput against a committed baseline report,
    // with a deliberately loose floor — a shared 1-core CI box is noisy.
    if let Some(bp) = &baseline {
        let text = std::fs::read_to_string(bp)?;
        let doc = deepn::trace::export::parse_json(&text)
            .map_err(|e| format!("bad baseline {bp}: {e}"))?;
        let base_rps = doc
            .get("loadgen_summary")
            .and_then(|s| s.get("rps"))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline {bp} has no loadgen_summary.rps"))?;
        let floor = base_rps * min_rps_frac;
        println!(
            "perf gate: {:.1} req/s vs baseline {base_rps:.1} (floor {floor:.1})",
            report.rps
        );
        if report.rps < floor {
            return Err(format!(
                "perf gate failed: {:.1} req/s is below the floor of {floor:.1} \
                 ({min_rps_frac} × baseline {base_rps:.1})",
                report.rps
            )
            .into());
        }
    }
    if !report.is_clean() {
        for a in &report.anomalies {
            eprintln!("loadgen anomaly: {a}");
        }
        return Err(format!("{} anomaly flag(s) raised", report.anomalies.len()).into());
    }
    Ok(())
}

fn cmd_bench_client(mut args: Args) -> Result<(), Box<dyn Error>> {
    let addr = args.required("--addr")?;
    let tables_path = args.required("--tables")?;
    let batch = args.parsed("--batch", 16usize)?;
    let iters = args.parsed("--iters", 4usize)?;
    let seed = args.parsed("--seed", 0xDEE9u64)?;
    // Must match the scale the served tables/model were built at, or the
    // classify check feeds the model images of the wrong geometry.
    let scale = args.scale()?;
    let model_path = args.value("--model")?;
    let pipeline_window = args.parsed("--pipeline", 0usize)?;
    let stop = args.flag("--shutdown");
    args.finish()?;

    let tables: QuantTablePair = store::load(&tables_path)?;
    let set = dataset_for(scale, seed);
    let images: Vec<_> = set.images().iter().cycle().take(batch).cloned().collect();
    let raw_bytes: usize = images.iter().map(|i| i.as_bytes().len()).sum();

    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(10))?;
    client.ping()?;

    let encoder = Encoder::with_tables(tables);
    let decoder = Decoder::new();
    let mut compressed_total = 0usize;
    let t0 = Instant::now();
    for iter in 0..iters {
        let streams = client.encode_batch(&images)?;
        let decoded = client.decode_batch(&streams)?;
        // Byte-identity against the local codec, both directions.
        for (i, img) in images.iter().enumerate() {
            let local = encoder.encode(img)?;
            if streams[i] != local {
                return Err(format!(
                    "iter {iter}: service stream {i} differs from local encode \
                     ({} vs {} bytes)",
                    streams[i].len(),
                    local.len()
                )
                .into());
            }
            if decoded[i] != decoder.decode(&local)? {
                return Err(format!("iter {iter}: service decode {i} differs from local").into());
            }
        }
        compressed_total += streams.iter().map(Vec::len).sum::<usize>();
    }
    let elapsed = t0.elapsed();
    let total_images = batch * iters;
    println!("round-trip OK: {total_images} images byte-identical over {iters} batches");
    println!(
        "throughput: {:.0} images/s, {:.2} MiB raw in, {:.2} MiB compressed \
         (CR {:.2}) in {elapsed:.2?}",
        total_images as f64 / elapsed.as_secs_f64(),
        (raw_bytes * iters) as f64 / (1 << 20) as f64,
        compressed_total as f64 / (1 << 20) as f64,
        (raw_bytes * iters) as f64 / compressed_total as f64,
    );
    if let Some(p) = &model_path {
        // The service classifies with a shared `&self` model across its
        // workers; verify it agrees with the same weights run locally.
        let stored: StoredModel = store::load(p)?;
        let net = stored.instantiate()?;
        let tensors = deepn::core::experiment::to_tensors(&images);
        let indices: Vec<usize> = (0..tensors.len()).collect();
        let local = net.predict(&deepn::nn::stack_batch(&tensors, &indices));
        let remote = client.classify(&images)?;
        if local != remote {
            return Err("service classification differs from local model".into());
        }
        println!(
            "classification OK: {} labels match the local model",
            local.len()
        );
    }
    if pipeline_window > 0 {
        run_pipeline_phase(&mut client, &encoder, &images, iters, pipeline_window)?;
    }
    let stats = client.stats()?;
    println!(
        "service counters: {} requests, {} encoded, {} decoded ({} workers)",
        stats.requests, stats.images_encoded, stats.images_decoded, stats.workers
    );
    if stop {
        client.shutdown()?;
        println!("service shutdown requested");
    }
    Ok(())
}

/// Unwraps a [`PipelineReply`] expected to carry exactly one encoded
/// stream.
fn expect_encoded(reply: PipelineReply) -> Result<Vec<u8>, Box<dyn Error>> {
    match reply {
        PipelineReply::Encoded(mut blobs) if blobs.len() == 1 => Ok(blobs.remove(0)),
        other => Err(format!("unexpected pipelined reply: {other:?}").into()),
    }
}

/// The serial-vs-pipelined comparison phase of `bench-client`: the same
/// per-image encode requests, first strictly request/response, then with a
/// `window`-deep in-flight window on the same connection. Pipelining hides
/// the per-request round-trip gap (the service computes request `k` while
/// requests `k+1..k+window` are already on the wire), so the second number
/// should grow with the window even on one connection. Every pipelined
/// reply is verified byte-identical to the local codec.
fn run_pipeline_phase(
    client: &mut Client,
    encoder: &Encoder,
    images: &[deepn::codec::RgbImage],
    iters: usize,
    window: usize,
) -> Result<(), Box<dyn Error>> {
    let requests = images.len() * iters;
    // One local reference encode per distinct image, computed outside the
    // timed phases and reused for every iteration's verification.
    let references: Vec<Vec<u8>> = images
        .iter()
        .map(|img| encoder.encode(img))
        .collect::<Result<_, _>>()?;

    // Phase 1 — serial: wait out every round trip.
    let t0 = Instant::now();
    for _ in 0..iters {
        for img in images {
            client.encode_batch(std::slice::from_ref(img))?;
        }
    }
    let serial = t0.elapsed();

    // Phase 2 — pipelined: same requests, same connection, bounded window.
    let mut streams = Vec::with_capacity(requests);
    let t0 = Instant::now();
    {
        let mut pipe = client.pipeline(window);
        for _ in 0..iters {
            for img in images {
                pipe.submit_encode_batch(std::slice::from_ref(img))?;
                while let Some(reply) = pipe.try_ready() {
                    streams.push(expect_encoded(reply?)?);
                }
            }
        }
        while pipe.pending() > 0 {
            streams.push(expect_encoded(pipe.recv()?)?);
        }
    }
    let pipelined = t0.elapsed();

    // Replies must sequence in submission order and match the local codec.
    for (i, stream) in streams.iter().enumerate() {
        if stream != &references[i % references.len()] {
            return Err(format!("pipelined reply {i} differs from local encode").into());
        }
    }
    let per_sec = |d: Duration| requests as f64 / d.as_secs_f64();
    println!(
        "pipeline phase: {requests} single-image requests on one connection\n\
         \x20 serial    (window 1): {serial:>9.2?}  ({:.0} req/s)\n\
         \x20 pipelined (window {window}): {pipelined:>9.2?}  ({:.0} req/s, {:.2}x)",
        per_sec(serial),
        per_sec(pipelined),
        serial.as_secs_f64() / pipelined.as_secs_f64(),
    );
    Ok(())
}

fn cmd_pipeline(mut args: Args) -> Result<(), Box<dyn Error>> {
    let cache_dir = args.required("--cache-dir")?;
    let scale = args.scale()?;
    let seed = args.parsed("--seed", 0xDEE9u64)?;
    let profile = args.flag("--profile");
    args.finish()?;
    if profile {
        // Must be on before the first codec session is created: sessions
        // capture the profiling decision at creation.
        deepn::codec::profile::enable();
    }

    let t0 = Instant::now();
    let set = dataset_for(scale, seed);
    let tables = DeepnTableBuilder::new(PlmParams::paper())
        .sample_interval(3)
        .build(set.images())?;
    let schemes = [
        CompressionScheme::original(),
        CompressionScheme::Jpeg(50),
        CompressionScheme::SameQ(30),
        CompressionScheme::Deepn(tables),
    ];
    let mut cache = FsRoundTripCache::new(&cache_dir)?;
    // Trained models persist beside the decoded sets, so reruns skip the
    // training stage as well as the codec round trips.
    let mut models = FsModelCache::new(std::path::Path::new(&cache_dir).join("models"))?;
    let cfg = ExperimentConfig::alexnet(scale);

    // Phase 1 — materialize the decoded sets every case needs. On a cold
    // cache this pays the serial per-image codec round trip; on a warm
    // one it loads the persisted artifacts, which is where the cache's
    // speedup is directly measurable.
    let (train_imgs, _) = set.train();
    let (test_imgs, _) = set.test();
    let mat0 = Instant::now();
    for scheme in &schemes {
        for split in [train_imgs, test_imgs] {
            deepn::core::experiment::round_trip_set_cached(scheme, split, &mut cache)?;
        }
    }
    let materialize = mat0.elapsed();
    println!(
        "decoded-set materialization: {materialize:.2?} ({} hits, {} misses)",
        cache.hits(),
        cache.misses()
    );

    // Phase 2 — the accuracy comparison itself, fed from the cache.
    println!(
        "{:<24} {:>8} {:>12} {:>10}",
        "scheme", "acc", "bytes", "elapsed"
    );
    for scheme in &schemes {
        let t = Instant::now();
        let outcome =
            run_symmetric_cached_with_models(&cfg, &set, scheme, &mut cache, &mut models)?;
        println!(
            "{:<24} {:>7.1}% {:>12} {:>10.2?}",
            scheme.to_string(),
            outcome.accuracy * 100.0,
            outcome.train_bytes + outcome.test_bytes,
            t.elapsed()
        );
    }
    println!(
        "cache: {} decoded-set hits, {} misses; {} model hits, {} misses \
         ({cache_dir}); materialization {materialize:.2?}; total {:.2?}",
        cache.hits(),
        cache.misses(),
        models.hits(),
        models.misses(),
        t0.elapsed()
    );
    println!("rerun the same command to reuse the cached decoded sets and models");
    if profile {
        print_profile_report();
    }
    Ok(())
}

/// Prints the per-stage codec timing table and the pool instruments from
/// the process-global registry — the sink every `--profile` run and
/// traced pool feeds.
fn print_profile_report() {
    use deepn::trace::{prom::human_seconds, Reading};
    let g = deepn::trace::global();
    println!(
        "\ncodec stage profile (per strip):\n{:<16} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "stage", "strips", "mean", "p50", "p90", "p99"
    );
    for stage in deepn::codec::profile::Stage::ALL {
        let Some(Reading::Histogram(snap)) = g.reading(stage.metric()) else {
            continue;
        };
        if snap.count == 0 {
            continue;
        }
        let s = |ns: f64| human_seconds(ns / 1e9);
        println!(
            "{:<16} {:>9} {:>10} {:>10} {:>10} {:>10}",
            stage.name(),
            snap.count,
            s(snap.mean_ns()),
            s(snap.quantile_ns(0.5)),
            s(snap.quantile_ns(0.9)),
            s(snap.quantile_ns(0.99)),
        );
    }
    let counter = |name: &str| match g.reading(name) {
        Some(Reading::Counter(v)) | Some(Reading::Gauge(v)) => v,
        _ => 0,
    };
    println!(
        "pool: {} steals, queue high-water {}, workers busy {}",
        counter("deepn_parallel_steals_total"),
        counter("deepn_parallel_queue_high_water"),
        human_seconds(counter("deepn_parallel_worker_busy_ns_total") as f64 / 1e9),
    );
}

/// Span names `trace-export` asserts before writing: the workload below
/// exercises each of these paths, so their absence means the
/// instrumentation regressed, not that the run was quiet.
const EXPECTED_SPANS: &[&str] = &[
    "serve.request.ping",
    "serve.request.encode_batch",
    "serve.request.decode_batch",
    "serve.request.stats",
    "serve.request.metrics",
    "serve.queue_wait",
    "serve.execute",
    "serve.reply_write",
];

fn cmd_trace_export(mut args: Args) -> Result<(), Box<dyn Error>> {
    let out = args.required("--out")?;
    let requests = args.parsed("--requests", 32usize)?.max(1);
    let window = args.parsed("--window", 8usize)?.max(1);
    args.finish()?;

    deepn::trace::set_enabled(true);
    deepn::codec::profile::enable();

    // An in-process service on standard tables: the workload needs spans,
    // not designed quantization.
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(75),
        None,
        ServerConfig::default(),
    )?;
    let addr = server.local_addr()?;
    let handle = server.spawn();
    let mut client = Client::connect_retry(addr, Duration::from_secs(10))?;

    // Mixed workload: pipelined single-image encodes (the window keeps
    // queue-wait spans non-trivial), then batch decodes and the metadata
    // ops, so every expected span name fires at least once.
    let images = [
        deepn::codec::RgbImage::gradient(64, 64),
        deepn::codec::RgbImage::gradient(96, 48),
    ];
    client.ping()?;
    let mut streams = Vec::with_capacity(requests);
    {
        let mut pipe = client.pipeline(window);
        for i in 0..requests {
            pipe.submit_encode_batch(std::slice::from_ref(&images[i % images.len()]))?;
            while let Some(reply) = pipe.try_ready() {
                streams.push(expect_encoded(reply?)?);
            }
        }
        while pipe.pending() > 0 {
            streams.push(expect_encoded(pipe.recv()?)?);
        }
    }
    client.decode_batch(&streams)?;
    let stats = client.stats()?;
    deepn::trace::prom::validate(&client.metrics()?).map_err(|e| format!("bad scrape: {e}"))?;
    client.shutdown()?;
    handle.join();

    let events = deepn::trace::snapshot_spans();
    for name in EXPECTED_SPANS {
        if !events.iter().any(|e| e.name == *name) {
            return Err(format!("workload produced no `{name}` span").into());
        }
    }
    let json = deepn::trace::export::chrome_trace_json(&events);
    deepn::trace::export::validate_json(&json).map_err(|e| format!("bad trace JSON: {e}"))?;
    std::fs::write(&out, &json)?;
    println!(
        "{out}: {} span events from {} requests ({} dropped), {} bytes; \
         load it at https://ui.perfetto.dev",
        events.len(),
        stats.requests,
        deepn::trace::dropped_spans(),
        json.len()
    );
    Ok(())
}

fn cmd_inspect(mut args: Args) -> Result<(), Box<dyn Error>> {
    let path = args
        .value("--path")?
        .or_else(|| {
            if args.argv.is_empty() {
                None
            } else {
                Some(args.argv.remove(0))
            }
        })
        .ok_or("usage: deepn inspect PATH")?;
    args.finish()?;
    let bytes = std::fs::read(&path)?;
    let (version, kind) = store::peek(&bytes)?;
    println!(
        "{path}: deepn artifact v{version}, kind {}, {} bytes",
        kind.map_or("unknown", ArtifactKind::name),
        bytes.len()
    );
    Ok(())
}

fn cmd_lint(mut args: Args) -> Result<(), Box<dyn Error>> {
    let root = args.value("--root")?.unwrap_or_else(|| ".".into());
    let json = args.flag("--json");
    args.finish()?;
    let findings = deepn::lint::run(std::path::Path::new(&root))?;
    for f in &findings {
        if json {
            println!("{}", f.json());
        } else {
            println!("{}", f.human());
        }
    }
    if findings.is_empty() {
        if !json {
            println!("deepn lint: clean ({root})");
        }
        Ok(())
    } else {
        Err(format!("{} finding(s)", findings.len()).into())
    }
}
