//! Vendored, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), written from scratch for this repository.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface the reproduction uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — seeded determinism
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`]
//! - [`seq::SliceRandom::shuffle`] — Fisher–Yates
//!
//! The generator is xoshiro256++ seeded via SplitMix64. It is *not* the
//! upstream `StdRng` stream (upstream uses ChaCha12); the reproduction only
//! relies on determinism and statistical quality, not on byte-identical
//! streams with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f32`/`f64` uniform in `[0, 1)`, integers over the full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Closed-interval unit sample so `hi` is attainable,
                // matching upstream `gen_range(a..=b)` semantics.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
range_float!(f32, f64);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++ over a SplitMix64-expanded
    /// seed. Deterministic across platforms and runs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Slice extensions: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[SampleRange::sample_from(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
