//! Vendored, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! written from scratch for this repository (the build environment has no
//! crates.io access).
//!
//! Supported surface — what `crates/bench/benches/kernels.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (including the
//! `name = ...; config = ...; targets = ...` form).
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports min/median/max plus
//! mean ± standard deviation and a 95% confidence interval on the mean
//! (normal approximation) per iteration. Samples outside the Tukey fences
//! (1.5 × IQR beyond the quartiles — the scheduling hiccups that skew the
//! mean on a busy machine) are rejected before the mean/σ/CI are computed,
//! and the rejected count is reported alongside. There are no plots or
//! baselines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Every finished benchmark of this process, for [`write_json_results`].
static RESULTS: Mutex<Vec<(String, SampleStats)>> = Mutex::new(Vec::new());

/// How `iter_batched` amortizes setup cost. The subset treats every variant
/// identically (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup upstream; one here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Inputs of unknown size.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (each sample is a
    /// batch of iterations sized so one sample takes ≳1 ms).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size on one untimed run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize;

        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
            if budget.elapsed() > Duration::from_secs(3) {
                break; // keep slow benches bounded
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Summary statistics over one benchmark's samples, in nanoseconds.
///
/// `min`/`median`/`max` describe **all** samples; `mean`/`std_dev`/`ci95`
/// are computed on the samples that survive IQR outlier rejection
/// (`outliers` counts the rejected ones), so a single scheduling hiccup
/// cannot skew the reported interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample (midpoint average for even counts) — robust to the
    /// scheduling outliers that skew the mean on a busy machine.
    pub median: f64,
    /// Arithmetic mean of the retained (non-outlier) samples.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
    /// Population standard deviation of the retained samples.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`1.96 · σ / √n` over the retained samples, the normal
    /// approximation): the mean lies in `mean ± ci95` with 95% confidence.
    pub ci95: f64,
    /// Number of samples collected (outliers included).
    pub len: usize,
    /// Samples rejected by the Tukey fences (more than 1.5 × IQR below
    /// the first or above the third quartile). Zero when fewer than four
    /// samples were collected — quartiles need that many to mean
    /// anything.
    pub outliers: usize,
}

/// The median of a sorted, non-empty slice (midpoint average for even
/// counts).
fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The Tukey fences over a sorted sample set: `[q1 - 1.5·iqr, q3 +
/// 1.5·iqr]`, with the quartiles taken as the medians of the lower and
/// upper halves (the common "exclusive" convention).
fn tukey_fences(sorted: &[f64]) -> (f64, f64) {
    let n = sorted.len();
    let q1 = median_of(&sorted[..n / 2]);
    let q3 = median_of(&sorted[n.div_ceil(2)..]);
    let iqr = q3 - q1;
    (q1 - 1.5 * iqr, q3 + 1.5 * iqr)
}

/// Computes [`SampleStats`] over timed samples. Returns `None` when empty.
pub fn sample_stats(samples: &[Duration]) -> Option<SampleStats> {
    if samples.is_empty() {
        return None;
    }
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let len = ns.len();
    let median = median_of(&ns);
    // IQR outlier rejection: the mean/σ/CI are computed on the samples
    // inside the Tukey fences. Below four samples the quartiles are
    // meaningless, so everything is retained.
    let retained: Vec<f64> = if len >= 4 {
        let (lo, hi) = tukey_fences(&ns);
        ns.iter().copied().filter(|&v| v >= lo && v <= hi).collect()
    } else {
        ns.clone()
    };
    let outliers = len - retained.len();
    let mean = retained.iter().sum::<f64>() / retained.len() as f64;
    let var = retained
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / retained.len() as f64;
    let std_dev = var.sqrt();
    Some(SampleStats {
        min: ns[0],
        median,
        mean,
        max: ns[len - 1],
        std_dev,
        ci95: 1.96 * std_dev / (retained.len() as f64).sqrt(),
        len,
        outliers,
    })
}

fn report(id: &str, samples: &[Duration]) {
    let Some(s) = sample_stats(samples) else {
        println!("{id:<40} (no samples)");
        return;
    };
    if let Ok(mut results) = RESULTS.lock() {
        results.push((id.to_string(), s));
    }
    println!(
        "{id:<40} time: [{} {} {}] mean: {} ± {} (95% CI [{}, {}], {} samples, \
         {} outlier{} rejected)",
        fmt_ns(s.min),
        fmt_ns(s.median),
        fmt_ns(s.max),
        fmt_ns(s.mean),
        fmt_ns(s.std_dev),
        fmt_ns(s.mean - s.ci95),
        fmt_ns(s.mean + s.ci95),
        s.len,
        s.outliers,
        if s.outliers == 1 { "" } else { "s" },
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Renders one benchmark's stats as a single-line JSON object.
fn stats_json(s: &SampleStats) -> String {
    format!(
        "{{\"mean_ns\": {:.1}, \"std_dev_ns\": {:.1}, \"ci95_ns\": {:.1}, \
         \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
         \"samples\": {}, \"retained\": {}}}",
        s.mean,
        s.std_dev,
        s.ci95,
        s.median,
        s.min,
        s.max,
        s.len,
        s.len - s.outliers,
    )
}

/// Writes (or merges) this process's benchmark results into the JSON file
/// named by the `DEEPN_BENCH_JSON` environment variable; a no-op when the
/// variable is unset. [`criterion_main!`] calls this after the groups run,
/// so `DEEPN_BENCH_JSON=BENCH.json cargo bench` accumulates every bench
/// binary's results into one file.
///
/// The format is deliberately line-oriented — `{`, one
/// `  "id": {stats},` line per benchmark (sorted), `}` — so merging is a
/// line-level read-modify-write and diffs stay reviewable; re-running a
/// benchmark overwrites its row.
pub fn write_json_results() {
    let Ok(path) = std::env::var("DEEPN_BENCH_JSON") else {
        return;
    };
    let mut rows: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let t = line.trim().trim_end_matches(',');
            let Some(rest) = t.strip_prefix('"') else {
                continue;
            };
            // Bench ids never contain quotes, so the first `": ` splits
            // exactly at the id/stats boundary.
            if let Some((id, stats)) = rest.split_once("\": ") {
                rows.insert(id.to_string(), stats.to_string());
            }
        }
    }
    if let Ok(results) = RESULTS.lock() {
        for (id, s) in results.iter() {
            rows.insert(id.clone(), stats_json(s));
        }
    }
    let mut out = String::from("{\n");
    let last = rows.len().saturating_sub(1);
    for (i, (id, stats)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  \"{id}\": {stats}{}\n",
            if i == last { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion shim: cannot write {path}: {e}");
    }
}

/// Declares a benchmark group function, in either the positional or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_match_closed_form() {
        let samples: Vec<Duration> = [4u64, 2, 8, 6]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&samples).expect("non-empty");
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 5.0); // midpoint of 4 and 6
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.std_dev, 5.0f64.sqrt()); // var = (9+1+1+9)/4 = 5
                                              // 95% CI half-width: 1.96 * sqrt(5) / sqrt(4).
        assert!((s.ci95 - 1.96 * 5.0f64.sqrt() / 2.0).abs() < 1e-12);
        assert!(s.mean - s.ci95 < s.median && s.median < s.mean + s.ci95);
        assert_eq!(s.len, 4);
        // [2,4,6,8]: q1 = 3, q3 = 7, fences [-3, 13] — nothing rejected.
        assert_eq!(s.outliers, 0);

        // Odd count: the median is the middle element, not an average.
        // Below four samples no rejection happens, so the giant sample
        // skews the mean but not the median.
        let odd: Vec<Duration> = [1u64, 100, 3]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&odd).expect("non-empty");
        assert_eq!(s.median, 3.0);
        assert!(s.mean > s.median, "outlier skews mean, not median");
        assert_eq!(s.outliers, 0);

        assert!(sample_stats(&[]).is_none());
    }

    #[test]
    fn stats_json_rows_round_trip_through_the_merge_parser() {
        let samples: Vec<Duration> = [4u64, 2, 8, 6]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&samples).expect("non-empty");
        let row = format!("  \"group/case\": {},", stats_json(&s));
        // The same line-level parse write_json_results uses on an
        // existing file must recover the id and the stats verbatim.
        let t = row.trim().trim_end_matches(',');
        let rest = t.strip_prefix('"').expect("row starts with a quoted id");
        let (id, stats) = rest.split_once("\": ").expect("id/stats boundary");
        assert_eq!(id, "group/case");
        assert_eq!(stats, stats_json(&s));
        assert!(stats.contains("\"mean_ns\": 5.0"));
        assert!(stats.contains("\"samples\": 4"));
        assert!(stats.contains("\"retained\": 4"));
    }

    #[test]
    fn iqr_rejection_discards_scheduling_spikes_from_the_mean() {
        // Seven tight samples and one 100x spike: the spike must be
        // rejected, leaving the mean/σ/CI on the tight cluster, while
        // min/median/max still describe the full set.
        let samples: Vec<Duration> = [10u64, 10, 11, 10, 9, 10, 11, 1000]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&samples).expect("non-empty");
        assert_eq!(s.len, 8);
        assert_eq!(s.outliers, 1);
        assert_eq!(s.max, 1000.0);
        let tight_mean = (10 + 10 + 11 + 10 + 9 + 10 + 11) as f64 / 7.0;
        assert!((s.mean - tight_mean).abs() < 1e-12, "mean {}", s.mean);
        assert!(s.ci95 < 1.0, "CI reflects the cluster, not the spike");

        // A constant sample set has a zero IQR: the fences collapse onto
        // the value itself and reject nothing.
        let flat: Vec<Duration> = std::iter::repeat_n(Duration::from_nanos(5), 6).collect();
        let s = sample_stats(&flat).expect("non-empty");
        assert_eq!((s.outliers, s.mean, s.std_dev), (0, 5.0, 0.0));
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(21u64) * 2));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
