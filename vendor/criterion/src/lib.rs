//! Vendored, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! written from scratch for this repository (the build environment has no
//! crates.io access).
//!
//! Supported surface — what `crates/bench/benches/kernels.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (including the
//! `name = ...; config = ...; targets = ...` form).
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports min/mean/max time per
//! iteration. There are no plots, baselines, or outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The subset treats every variant
/// identically (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup upstream; one here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Inputs of unknown size.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (each sample is a
    /// batch of iterations sized so one sample takes ≳1 ms).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size on one untimed run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize;

        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
            if budget.elapsed() > Duration::from_secs(3) {
                break; // keep slow benches bounded
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<40} time: [{} {} {}] ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, in either the positional or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(21u64) * 2));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
