//! Vendored, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! written from scratch for this repository (the build environment has no
//! crates.io access).
//!
//! Supported surface — what `crates/bench/benches/kernels.rs` uses:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (including the
//! `name = ...; config = ...; targets = ...` form).
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports min/median/max plus
//! mean ± standard deviation and a 95% confidence interval on the mean
//! (normal approximation) per iteration. There are no plots, baselines, or
//! outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The subset treats every variant
/// identically (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations per setup upstream; one here.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Inputs of unknown size.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (each sample is a
    /// batch of iterations sized so one sample takes ≳1 ms).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size on one untimed run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as usize;

        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
            if budget.elapsed() > Duration::from_secs(3) {
                break; // keep slow benches bounded
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget.elapsed() > Duration::from_secs(3) {
                break;
            }
        }
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Summary statistics over one benchmark's samples, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Fastest sample.
    pub min: f64,
    /// Median sample (midpoint average for even counts) — robust to the
    /// scheduling outliers that skew the mean on a busy machine.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Slowest sample.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`1.96 · σ / √n`, the normal approximation): the mean lies in
    /// `mean ± ci95` with 95% confidence.
    pub ci95: f64,
    /// Number of samples.
    pub len: usize,
}

/// Computes [`SampleStats`] over timed samples. Returns `None` when empty.
pub fn sample_stats(samples: &[Duration]) -> Option<SampleStats> {
    if samples.is_empty() {
        return None;
    }
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let len = ns.len();
    let mean = ns.iter().sum::<f64>() / len as f64;
    let median = if len % 2 == 1 {
        ns[len / 2]
    } else {
        (ns[len / 2 - 1] + ns[len / 2]) / 2.0
    };
    let var = ns.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / len as f64;
    let std_dev = var.sqrt();
    Some(SampleStats {
        min: ns[0],
        median,
        mean,
        max: ns[len - 1],
        std_dev,
        ci95: 1.96 * std_dev / (len as f64).sqrt(),
        len,
    })
}

fn report(id: &str, samples: &[Duration]) {
    let Some(s) = sample_stats(samples) else {
        println!("{id:<40} (no samples)");
        return;
    };
    println!(
        "{id:<40} time: [{} {} {}] mean: {} ± {} (95% CI [{}, {}], {} samples)",
        fmt_ns(s.min),
        fmt_ns(s.median),
        fmt_ns(s.max),
        fmt_ns(s.mean),
        fmt_ns(s.std_dev),
        fmt_ns(s.mean - s.ci95),
        fmt_ns(s.mean + s.ci95),
        s.len
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, in either the positional or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_match_closed_form() {
        let samples: Vec<Duration> = [4u64, 2, 8, 6]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&samples).expect("non-empty");
        assert_eq!(s.min, 2.0);
        assert_eq!(s.median, 5.0); // midpoint of 4 and 6
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.std_dev, 5.0f64.sqrt()); // var = (9+1+1+9)/4 = 5
                                              // 95% CI half-width: 1.96 * sqrt(5) / sqrt(4).
        assert!((s.ci95 - 1.96 * 5.0f64.sqrt() / 2.0).abs() < 1e-12);
        assert!(s.mean - s.ci95 < s.median && s.median < s.mean + s.ci95);
        assert_eq!(s.len, 4);

        // Odd count: the median is the middle element, not an average.
        let odd: Vec<Duration> = [1u64, 100, 3]
            .iter()
            .map(|&n| Duration::from_nanos(n))
            .collect();
        let s = sample_stats(&odd).expect("non-empty");
        assert_eq!(s.median, 3.0);
        assert!(s.mean > s.median, "outlier skews mean, not median");

        assert!(sample_stats(&[]).is_none());
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(21u64) * 2));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
