//! The conventional `use proptest::prelude::*` import surface.

pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy};
pub use crate::{prop_assert, prop_assert_eq, proptest};
