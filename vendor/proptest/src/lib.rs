//! Vendored, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, written from
//! scratch for this repository (the build environment has no crates.io
//! access).
//!
//! Supported surface — exactly what `tests/proptest_invariants.rs` uses:
//!
//! - [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`]
//! - numeric `Range` / `RangeInclusive` strategies, tuple strategies,
//!   [`collection::vec`], and [`any`]
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header
//! - [`prop_assert!`] / [`prop_assert_eq!`]
//!
//! Unlike upstream there is **no shrinking**: a failing case reports its
//! case number and the deterministic per-test seed, which is enough to
//! reproduce it (cases are generated from a fixed seed derived from the
//! test name, so failures are stable across runs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod prelude;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property test: deterministic RNG + case counter.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner whose RNG seed is derived from `name` (FNV-1a), so
    /// every test sees a stable, independent stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            cases: config.cases,
            seed: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The seed the RNG stream was created from (derived from the test
    /// name, so it is stable across runs).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
    T: Strategy,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Like upstream, `any::<char>()` is biased toward "interesting"
/// characters rather than uniform over all scalar values: escape-relevant
/// ASCII (quotes, backslash, whitespace controls, NUL, DEL) and plain
/// printable ASCII each get a large share, with the remainder drawn from
/// the full scalar-value space (surrogates re-rolled).
impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        const INTERESTING: &[char] = &[
            '"', '\\', '\n', '\r', '\t', ' ', '=', '\0', '\x01', '\x1b', '\x7f', 'é', '\u{2028}',
            '🦀',
        ];
        match rng.gen_range(0u8..10) {
            0..=2 => INTERESTING[rng.gen_range(0..INTERESTING.len())],
            3..=6 => char::from(rng.gen_range(0x20u8..0x7f)),
            _ => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10_FFFF)) {
                    break c;
                }
            },
        }
    }
}

/// Arbitrary strings: 0–24 [`Arbitrary`] chars, so the interesting-char
/// bias above lands in every position.
impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0usize..=24);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Runs one property test body over `config.cases` random cases.
///
/// This is the engine behind the [`proptest!`] macro; `body` receives the
/// runner's RNG and returns `Err` (from a `prop_assert!`) to fail.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    let mut runner = TestRunner::new(config, name);
    let seed = runner.seed();
    for case in 0..runner.cases() {
        if let Err(msg) = body(runner.rng()) {
            panic!("proptest '{name}' failed at case {case} (seed {seed:#018x}): {msg}");
        }
    }
}

/// Declares property tests. Supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in strategy, y in strategy) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current proptest case with context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        let s = (1usize..=8, 1usize..=8).prop_map(|(a, b)| a * b);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((1..=64).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_has_requested_len(len in 0usize..32) {
            let s = crate::collection::vec(any::<u8>(), len);
            // Re-deriving a value inside the body exercises flat sampling.
            prop_assert!(true);
            let _ = s;
        }

        #[test]
        fn flat_map_composes(n in 1usize..6) {
            let s = (1usize..=n).prop_flat_map(|k| crate::collection::vec(0u8..10, k));
            let _ = s;
            prop_assert_eq!(n.min(6), n);
        }
    }
}
