//! Collection strategies (`vec`).

use super::Strategy;
use rand::rngs::StdRng;

/// Strategy producing `Vec`s of a fixed length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy generating `Vec`s of exactly `len` elements drawn from
/// `element`.
///
/// (Upstream proptest also accepts a length *range*; the subset vendored
/// here supports the fixed-length form the test-suite uses.)
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
