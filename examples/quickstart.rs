//! Quickstart: design a DeepN-JPEG quantization table from a labeled
//! dataset and compare it against standard JPEG on one image.
//!
//! Run with: `cargo run --release --example quickstart`

use deepn::codec::{psnr, Decoder, Encoder};
use deepn::core::{CompressionScheme, DeepnTableBuilder, PlmParams};
use deepn::dataset::{DatasetSpec, ImageSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A labeled dataset (stand-in for ImageNet; see DESIGN.md §4).
    let spec = DatasetSpec::imagenet_standin();
    let set = ImageSet::generate(&spec, 42);
    println!(
        "dataset: {} classes x {} images, {}x{} px",
        spec.class_count(),
        spec.train_per_class + spec.test_per_class,
        spec.width,
        spec.height
    );

    // 2. DeepN-JPEG table design: frequency analysis (Algorithm 1) +
    //    piece-wise linear mapping (Eq. 3), sampling every 4th image.
    let tables = DeepnTableBuilder::new(PlmParams::paper())
        .sample_interval(3)
        .build(set.images())?;
    println!("\ndesigned luma table (natural order):");
    for row in 0..8 {
        let cells: Vec<String> = (0..8)
            .map(|col| format!("{:>4}", tables.luma.value(row, col)))
            .collect();
        println!("  {}", cells.join(" "));
    }

    // 3. Compress one image with DeepN-JPEG vs the "Original" reference.
    let img = &set.images()[0];
    let deepn_bytes = Encoder::with_tables(tables.clone()).encode(img)?;
    let jpeg_bytes = Encoder::with_quality(100).encode(img)?;
    let deepn_decoded = Decoder::new().decode(&deepn_bytes)?;

    println!(
        "\nper-image comparison ({}x{} px):",
        img.width(),
        img.height()
    );
    println!("  JPEG QF=100 : {:>6} bytes (CR 1.00x)", jpeg_bytes.len());
    println!(
        "  DeepN-JPEG  : {:>6} bytes (CR {:.2}x), psnr {:.1} dB",
        deepn_bytes.len(),
        jpeg_bytes.len() as f64 / deepn_bytes.len() as f64,
        psnr(img, &deepn_decoded)
    );

    // 4. Dataset-level compression rate (the paper's headline metric).
    let cr =
        deepn::core::experiment::compression_rate(&CompressionScheme::Deepn(tables), set.images())?;
    println!("\ndataset compression rate vs Original: {cr:.2}x");
    Ok(())
}
