//! Walks through every stage of the DeepN-JPEG design flow (the paper's
//! Fig. 4): image sampling, per-band DCT statistics, magnitude-based band
//! segmentation, PLM calibration, and the resulting quantization table,
//! contrasted with the HVS-designed standard JPEG table.
//!
//! Run with: `cargo run --release --example table_design`

use deepn::codec::quant::STANDARD_LUMA;
use deepn::core::{
    analysis::analyze_images, bands::rank_thresholds, BandKind, DeepnTableBuilder, PlmParams,
    Segmentation,
};
use deepn::dataset::{DatasetSpec, ImageSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = ImageSet::generate(&DatasetSpec::imagenet_standin(), 7);

    // Stage 1: Algorithm 1 — sample every 4th image, characterize σ(i,j).
    let sampled = set.sample_per_class(4);
    println!(
        "sampled {} of {} training images for frequency analysis",
        sampled.len(),
        set.train().0.len()
    );
    let stats = analyze_images(sampled, 1)?;
    let sigmas = stats.luma_sigmas();
    println!("\nper-band σ of the un-quantized luma DCT coefficients:");
    for row in 0..8 {
        let cells: Vec<String> = (0..8)
            .map(|col| format!("{:>7.1}", sigmas[row * 8 + col]))
            .collect();
        println!("  {}", cells.join(" "));
    }

    // Stage 2: magnitude-based band segmentation (vs position-based).
    let magnitude = Segmentation::magnitude_based(&sigmas);
    let position = Segmentation::position_based();
    let mark = |k: BandKind| match k {
        BandKind::Low => 'L',
        BandKind::Mid => 'M',
        BandKind::High => 'H',
    };
    println!("\nband groups   magnitude-based     position-based");
    for row in 0..8 {
        let m: String = (0..8).map(|c| mark(magnitude.kind(row * 8 + c))).collect();
        let p: String = (0..8).map(|c| mark(position.kind(row * 8 + c))).collect();
        println!("  row {row}:      {m}            {p}");
    }
    let moved: usize = (0..64)
        .filter(|&b| magnitude.kind(b) != position.kind(b))
        .count();
    println!("bands regrouped by the magnitude criterion: {moved}/64");

    // Stage 3: PLM calibration from the measured σ rank boundaries.
    let (t1, t2) = rank_thresholds(&sigmas);
    let params = PlmParams::calibrated(t1, t2, 3.0)?;
    println!(
        "\ncalibrated PLM: T1={t1:.1}, T2={t2:.1}, k1={:.2}, k2={:.2}, k3={:.1}",
        params.k1, params.k2, params.k3
    );

    // Stage 4: the designed table vs the HVS standard table.
    let tables = DeepnTableBuilder::new(PlmParams::paper())
        .sample_interval(3)
        .build(set.images())?;
    println!("\n          DeepN-JPEG luma table        standard JPEG luma table");
    for row in 0..8 {
        let d: Vec<String> = (0..8)
            .map(|c| format!("{:>3}", tables.luma.value(row, c)))
            .collect();
        let s: Vec<String> = (0..8)
            .map(|c| format!("{:>3}", STANDARD_LUMA[row * 8 + c]))
            .collect();
        println!("  {}    {}", d.join(" "), s.join(" "));
    }
    println!(
        "\nNote how DeepN-JPEG assigns fine steps wherever the *dataset* has\n\
         energy (large σ) rather than wherever the human eye is sensitive."
    );
    Ok(())
}
