//! Exercises the from-scratch JPEG codec on its own: encodes a test image
//! across the quality ladder and reports rate (bytes, bits/px) and
//! distortion (PSNR), plus the effect of per-image optimized Huffman
//! tables.
//!
//! Run with: `cargo run --release --example codec_roundtrip`

use deepn::codec::{psnr, CompressionStats, Decoder, Encoder, RgbImage};
use deepn::dataset::{DatasetSpec, ImageSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic "photo": one of the dataset's textured classes.
    let set = ImageSet::generate(&DatasetSpec::imagenet_standin(), 3);
    let img = &set.images()[4];
    println!(
        "source image: {}x{} px, {} raw bytes\n",
        img.width(),
        img.height(),
        img.as_bytes().len()
    );

    println!(
        "{:>4} {:>8} {:>7} {:>9}   notes",
        "QF", "bytes", "bpp", "PSNR(dB)"
    );
    for qf in [100u8, 90, 75, 50, 30, 10] {
        let bytes = Encoder::with_quality(qf).encode(img)?;
        let decoded = Decoder::new().decode(&bytes)?;
        let stats = CompressionStats::new(img, &bytes);
        println!(
            "{qf:>4} {:>8} {:>7.2} {:>9.1}   ratio vs raw {:.1}x",
            bytes.len(),
            stats.bits_per_pixel(),
            psnr(img, &decoded),
            stats.ratio_vs_raw()
        );
    }

    // Optimized vs standard Huffman tables.
    let opt = Encoder::with_quality(75).encode(img)?;
    let std = Encoder::with_quality(75)
        .optimize_huffman(false)
        .encode(img)?;
    println!(
        "\nHuffman tables at QF=75: optimized {} bytes vs standard {} bytes ({:+.1}%)",
        opt.len(),
        std.len(),
        100.0 * (opt.len() as f64 - std.len() as f64) / std.len() as f64
    );

    // Robustness: a ragged-size gradient image round-trips too.
    let ragged = RgbImage::gradient(37, 23);
    let bytes = Encoder::with_quality(85).encode(&ragged)?;
    let back = Decoder::new().decode(&bytes)?;
    println!(
        "\nragged 37x23 image: {} bytes, psnr {:.1} dB",
        bytes.len(),
        psnr(&ragged, &back)
    );
    Ok(())
}
