//! Simulates the paper's motivating scenario: a resource-constrained edge
//! sensor producing images that must be uploaded to a server for DNN
//! classification. Compares Original JPEG, aggressive JPEG (QF=20),
//! SAME-Q, and DeepN-JPEG on upload latency, energy, and the accuracy the
//! server-side model achieves on the uploaded images.
//!
//! Run with: `cargo run --release --example edge_sensor`
//! (set `DEEPN_SCALE=fast` for a quick pass)

use deepn::core::experiment::{evaluate_model, train_model, ExperimentConfig, Scale};
use deepn::core::{CompressionScheme, DeepnTableBuilder, PlmParams};
use deepn::dataset::ImageSet;
use deepn::power::{EnergyModel, RadioProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    let set = ImageSet::generate(&scale.dataset_spec(), 42);
    println!(
        "edge sensor scenario: {} images to offload\n",
        set.test().0.len()
    );

    // The server-side model is trained once on high-quality data.
    let cfg = ExperimentConfig::alexnet(scale);
    println!("training server-side {} ...", cfg.model);
    let net = train_model(&cfg, &set, &CompressionScheme::original())?;

    // Candidate upload formats.
    let tables = DeepnTableBuilder::new(PlmParams::paper())
        .sample_interval(3)
        .build(set.train().0)?;
    let schemes = [
        CompressionScheme::original(),
        CompressionScheme::Jpeg(20),
        CompressionScheme::SameQ(4),
        CompressionScheme::Deepn(tables),
    ];

    let (test_imgs, _) = set.test();
    let radios = RadioProfile::all();
    println!(
        "\n{:<24} {:>9} {:>7}  {:>8} {:>8} {:>8}  {:>8}",
        "scheme", "bytes", "acc", "3G (s)", "LTE (s)", "WiFi (s)", "energy"
    );
    let mut reference_sizes: Option<Vec<usize>> = None;
    for scheme in &schemes {
        let sizes = scheme.compressed_sizes(test_imgs)?;
        let total: usize = sizes.iter().sum();
        let acc = evaluate_model(&net, &set, scheme)?;
        let latencies: Vec<f64> = radios
            .iter()
            .map(|r| EnergyModel::new(*r).transfer_latency(total))
            .collect();
        // Normalize on transfer energy alone (the Fig. 9 quantity); the
        // synthetic images are so small that a fixed per-image compute
        // term would mask the transfer differences.
        let mut model = EnergyModel::new(RadioProfile::lte());
        model.compute_energy_j = 0.0;
        let norm = match &reference_sizes {
            Some(refs) => model.normalized_power(&sizes, refs),
            None => 1.0,
        };
        if reference_sizes.is_none() {
            reference_sizes = Some(sizes.clone());
        }
        println!(
            "{:<24} {:>9} {:>6.1}%  {:>8.2} {:>8.2} {:>8.2}  {:>7.2}x",
            scheme.to_string(),
            total,
            acc * 100.0,
            latencies[0],
            latencies[1],
            latencies[2],
            norm
        );
    }
    println!(
        "\nDeepN-JPEG uploads at a fraction of the Original's energy while the\n\
         server-side model keeps (close to) its original accuracy — the\n\
         aggressive HVS schemes save energy but lose classification quality."
    );
    Ok(())
}
