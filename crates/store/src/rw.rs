//! Little-endian byte-level reader/writer primitives and the CRC32
//! checksum the container format is built on. Hand-rolled (no serde): the
//! build environment has no crates.io access, and the codec crate set the
//! precedent of writing byte-level formats in-repo.

use crate::StoreError;

/// IEEE 802.3 CRC32 lookup table (reflected polynomial `0xEDB88320`).
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 of `bytes` (the checksum zip/png/gzip use).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte sink for artifact payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`, little-endian IEEE 754.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`, little-endian IEEE 754.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes (no length prefix; pair with
    /// [`put_len`](Self::put_len) when the count varies).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a collection length as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (no artifact is that large).
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("artifact section exceeds u32 length"));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian cursor over an artifact payload.
///
/// Every read validates the remaining length *before* touching the buffer
/// (and before any allocation is sized from untrusted input), so a
/// truncated or corrupted payload yields [`StoreError::Truncated`] rather
/// than a panic or an absurd allocation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if n > self.remaining() {
            return Err(StoreError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] at end of buffer (as all reads).
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`].
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Reads a `u32` element count and validates that `count * elem_size`
    /// bytes can still follow, so decoders can size allocations from it
    /// safely.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] if the declared count cannot fit in the
    /// remaining bytes.
    pub fn len(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        match n.checked_mul(elem_size) {
            Some(total) if total <= self.remaining() => Ok(n),
            _ => Err(StoreError::Truncated),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] or [`StoreError::Corrupt`] on invalid
    /// UTF-8.
    pub fn string(&mut self) -> Result<String, StoreError> {
        let n = self.len(1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corrupt("invalid utf-8 in string field".into()))
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if bytes remain.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_f32(1.5);
        w.put_f64(-2.25);
        w.put_string("σ-table");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().expect("u8"), 7);
        assert_eq!(r.u16().expect("u16"), 0xBEEF);
        assert_eq!(r.u32().expect("u32"), 123_456);
        assert_eq!(r.u64().expect("u64"), u64::MAX - 1);
        assert_eq!(r.f32().expect("f32"), 1.5);
        assert_eq!(r.f64().expect("f64"), -2.25);
        assert_eq!(r.string().expect("string"), "σ-table");
        r.finish().expect("consumed exactly");
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(StoreError::Truncated)));
        // A huge declared count cannot trigger a huge allocation.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.len(8), Err(StoreError::Truncated)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0]);
        assert!(matches!(r.finish(), Err(StoreError::Corrupt(_))));
    }
}
