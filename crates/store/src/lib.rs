//! # deepn-store
//!
//! A versioned, checksummed on-disk artifact store for the DeepN-JPEG
//! reproduction: everything the pipeline computes — SA-annealed or
//! PLM-designed [`QuantTablePair`]s, [`BandStats`] from frequency
//! analysis, [`DatasetSpec`]s and generated [`ImageSet`]s, and trained
//! [`Sequential`] weights ([`StoredModel`]) — can be persisted once and
//! reloaded by later processes, instead of being recomputed at every
//! start (the prerequisite for the long-running `deepn-serve` service).
//!
//! The format is hand-rolled at the byte level (see
//! `docs/ARTIFACT_FORMAT.md` for the full spec): a `DEEPNART` magic, a
//! format version, an artifact kind tag, a length-prefixed payload, and a
//! trailing CRC32. There is no serde — the build environment has no
//! crates.io access — so the reader is written defensively: every length
//! is validated before it sizes an allocation, and every failure mode of
//! a damaged file is a typed [`StoreError`], never a panic.
//!
//! ```
//! use deepn_codec::QuantTablePair;
//! use deepn_store as store;
//!
//! # fn main() -> Result<(), store::StoreError> {
//! let tables = QuantTablePair::standard(80);
//! let bytes = store::to_bytes(&tables);
//! let back: QuantTablePair = store::from_bytes(&bytes)?;
//! assert_eq!(tables, back);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod artifacts;
mod cache;
mod error;
mod rw;

pub use artifacts::{decode_image, encode_image, DecodedSet, StoredModel};
pub use cache::FsModelCache;
pub use cache::FsRoundTripCache;
pub use error::StoreError;
pub use rw::{crc32, ByteReader, ByteWriter};

// Re-export the artifact-bearing types for downstream convenience.
pub use deepn_codec::{QuantTable, QuantTablePair};
pub use deepn_core::BandStats;
pub use deepn_dataset::{DatasetSpec, ImageSet};
pub use deepn_nn::Sequential;

use std::fs;
use std::path::Path;

/// File magic: the first eight bytes of every artifact.
pub const MAGIC: &[u8; 8] = b"DEEPNART";

/// Container format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Container overhead in bytes: magic + version + kind + payload length
/// up front, CRC32 behind the payload.
pub const HEADER_LEN: usize = 16;

/// Kind tags distinguishing the payloads a container can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ArtifactKind {
    /// A single 64-entry quantization table.
    QuantTable = 1,
    /// A luma/chroma quantization-table pair.
    QuantTablePair = 2,
    /// Per-band Welford statistics from frequency analysis.
    BandStats = 3,
    /// A procedural dataset recipe.
    DatasetSpec = 4,
    /// A generated labeled image set.
    ImageSet = 5,
    /// Trained network weights plus the architecture to rebuild them.
    Model = 6,
    /// A cached decoded (round-tripped) image set for the figure pipeline.
    DecodedSet = 7,
}

impl ArtifactKind {
    /// Parses a header kind tag.
    pub fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(ArtifactKind::QuantTable),
            2 => Some(ArtifactKind::QuantTablePair),
            3 => Some(ArtifactKind::BandStats),
            4 => Some(ArtifactKind::DatasetSpec),
            5 => Some(ArtifactKind::ImageSet),
            6 => Some(ArtifactKind::Model),
            7 => Some(ArtifactKind::DecodedSet),
            _ => None,
        }
    }

    /// Short lowercase name (used by `deepn inspect`-style tooling).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::QuantTable => "quant-table",
            ArtifactKind::QuantTablePair => "quant-table-pair",
            ArtifactKind::BandStats => "band-stats",
            ArtifactKind::DatasetSpec => "dataset-spec",
            ArtifactKind::ImageSet => "image-set",
            ArtifactKind::Model => "model",
            ArtifactKind::DecodedSet => "decoded-set",
        }
    }
}

/// A value that can be carried as an artifact payload.
///
/// Implementations encode/decode *only* the payload; the container
/// (magic, version, kind, length, checksum) is handled by
/// [`to_bytes`]/[`from_bytes`].
pub trait Artifact: Sized {
    /// The kind tag written into the container header.
    const KIND: ArtifactKind;

    /// Serializes the payload.
    fn encode_payload(&self, w: &mut ByteWriter);

    /// Deserializes the payload. The reader is scoped to exactly the
    /// payload bytes; implementations must consume all of them.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] for truncated or semantically invalid payloads.
    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError>;
}

/// Serializes an artifact into a self-contained container.
pub fn to_bytes<A: Artifact>(artifact: &A) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    artifact.encode_payload(&mut payload);
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(A::KIND as u16).to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("artifact payload exceeds u32 length")
            .to_le_bytes(),
    );
    out.extend_from_slice(&payload);
    // The checksum covers everything after the magic: version, kind,
    // length, and payload — so header tampering is also detected.
    let crc = crc32(&out[MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses the container header, returning `(version, kind, payload)` after
/// validating magic, version, length, and checksum.
fn open_container(bytes: &[u8]) -> Result<(u16, u16, &[u8]), StoreError> {
    if bytes.len() < MAGIC.len() {
        return Err(StoreError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r.u16()?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let kind = r.u16()?;
    let payload_len = r.u32()? as usize;
    if payload_len.checked_add(4).is_none_or(|n| n > r.remaining()) {
        return Err(StoreError::Truncated);
    }
    let payload_end = HEADER_LEN + payload_len;
    let payload = &bytes[HEADER_LEN..payload_end];
    if bytes.len() != payload_end + 4 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after checksum",
            bytes.len() - payload_end - 4
        )));
    }
    let stored = u32::from_le_bytes(
        bytes[payload_end..payload_end + 4]
            .try_into()
            .expect("len 4"),
    );
    let computed = crc32(&bytes[MAGIC.len()..payload_end]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok((version, kind, payload))
}

/// Deserializes an artifact of type `A` from container bytes.
///
/// # Errors
///
/// Any [`StoreError`]: bad magic, unsupported version, kind mismatch,
/// checksum failure, truncation, or a corrupt payload.
pub fn from_bytes<A: Artifact>(bytes: &[u8]) -> Result<A, StoreError> {
    let (_, kind, payload) = open_container(bytes)?;
    if kind != A::KIND as u16 {
        return Err(StoreError::WrongKind {
            expected: A::KIND as u16,
            found: kind,
        });
    }
    let mut r = ByteReader::new(payload);
    let value = A::decode_payload(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Reads just the header of container bytes: `(version, kind)`. The kind
/// is `None` for tags this build does not know (a future format addition).
///
/// # Errors
///
/// As [`from_bytes`], minus payload decoding.
pub fn peek(bytes: &[u8]) -> Result<(u16, Option<ArtifactKind>), StoreError> {
    let (version, kind, _) = open_container(bytes)?;
    Ok((version, ArtifactKind::from_u16(kind)))
}

/// Saves an artifact to `path`, writing the container atomically via a
/// sibling temp file + rename so a crashed writer never leaves a torn
/// artifact behind.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure.
pub fn save<A: Artifact>(artifact: &A, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let path = path.as_ref();
    let bytes = to_bytes(artifact);
    let tmp = path.with_extension("tmp-deepn-store");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads an artifact of type `A` from `path`.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, otherwise as [`from_bytes`].
pub fn load<A: Artifact>(path: impl AsRef<Path>) -> Result<A, StoreError> {
    let bytes = fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips_and_rejects_damage() {
        let table = QuantTable::uniform(9);
        let bytes = to_bytes(&table);
        assert_eq!(&bytes[..8], MAGIC);
        let back: QuantTable = from_bytes(&bytes).expect("round trip");
        assert_eq!(table, back);
        assert_eq!(
            peek(&bytes).expect("peek"),
            (FORMAT_VERSION, Some(ArtifactKind::QuantTable))
        );

        // Wrong kind is typed.
        assert!(matches!(
            from_bytes::<QuantTablePair>(&bytes),
            Err(StoreError::WrongKind { .. })
        ));
        // Any single corrupted byte is caught.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5A;
            assert!(from_bytes::<QuantTable>(&bad).is_err(), "byte {i}");
        }
        // Every truncation is caught.
        for n in 0..bytes.len() {
            assert!(from_bytes::<QuantTable>(&bytes[..n]).is_err(), "len {n}");
        }
        // Trailing garbage is caught.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            from_bytes::<QuantTable>(&long),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_via_filesystem() {
        let dir = std::env::temp_dir().join(format!("deepn-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tables.deepn");
        let tables = QuantTablePair::standard(65);
        save(&tables, &path).expect("save");
        let back: QuantTablePair = load(&path).expect("load");
        assert_eq!(tables, back);
        assert!(matches!(
            load::<QuantTablePair>(dir.join("missing.deepn")),
            Err(StoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let table = QuantTable::uniform(2);
        let mut bytes = to_bytes(&table);
        bytes[8] = 99; // version low byte
                       // Fix up the checksum so the version check itself is what trips.
        let end = bytes.len() - 4;
        let crc = crc32(&bytes[8..end]).to_le_bytes();
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&crc);
        assert!(matches!(
            from_bytes::<QuantTable>(&bytes),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }
}
