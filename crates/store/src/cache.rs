//! Filesystem-backed implementation of the experiment pipeline's
//! [`RoundTripCache`], persisting decoded image sets as [`DecodedSet`]
//! artifacts so figure regeneration skips the serial per-image round trip
//! on every rerun.

use crate::{load, save, DecodedSet, StoreError, StoredModel};
use deepn_codec::RgbImage;
use deepn_core::experiment::{ModelCache, ModelRecipe, RoundTripCache};
use deepn_nn::Sequential;
use std::path::{Path, PathBuf};

/// Keys are fingerprints (`[A-Za-z0-9_-]`); sanitize defensively so a
/// hostile key cannot escape a cache directory.
fn sanitized_key(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A directory of [`DecodedSet`] artifacts keyed by the experiment
/// pipeline's scheme+dataset fingerprint.
///
/// Lookups that fail for any reason (missing file, corrupt artifact,
/// version skew) are treated as misses; stores that fail are dropped — a
/// cache must never turn into a correctness dependency.
///
/// ```no_run
/// use deepn_core::experiment::{round_trip_set_cached};
/// use deepn_core::CompressionScheme;
/// use deepn_dataset::{DatasetSpec, ImageSet};
/// use deepn_store::FsRoundTripCache;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = ImageSet::generate(&DatasetSpec::tiny(), 1);
/// let mut cache = FsRoundTripCache::new("target/deepn-cache")?;
/// // First call round-trips and persists; reruns load from disk.
/// let (decoded, bytes) =
///     round_trip_set_cached(&CompressionScheme::Jpeg(50), set.images(), &mut cache)?;
/// # let _ = (decoded, bytes);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FsRoundTripCache {
    dir: PathBuf,
    hits: usize,
    misses: usize,
}

impl FsRoundTripCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FsRoundTripCache {
            dir,
            hits: 0,
            misses: 0,
        })
    }

    /// The artifact path a key maps to.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{}.decoded.deepn", sanitized_key(key)))
    }

    /// Cache hits observed through this handle.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses observed through this handle.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

impl RoundTripCache for FsRoundTripCache {
    fn load(&mut self, key: &str) -> Option<(Vec<RgbImage>, usize)> {
        match load::<DecodedSet>(self.path_for(key)) {
            Ok(set) => {
                self.hits += 1;
                Some((set.images, set.compressed_bytes as usize))
            }
            Err(_) => {
                self.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, key: &str, images: &[RgbImage], compressed_bytes: usize) {
        let artifact = DecodedSet {
            images: images.to_vec(),
            compressed_bytes: compressed_bytes as u64,
        };
        // Best effort: a full disk or read-only dir must not fail the run.
        let _ = save(&artifact, self.path_for(key));
    }
}

/// A directory of [`StoredModel`] artifacts keyed by the experiment
/// pipeline's (config, train scheme, train data) fingerprint — the
/// persistent [`ModelCache`] that lets `deepn pipeline` reruns skip the
/// training stage.
///
/// Same failure policy as [`FsRoundTripCache`]: unreadable or corrupt
/// artifacts are misses, failed stores are dropped.
#[derive(Debug, Clone)]
pub struct FsModelCache {
    dir: PathBuf,
    hits: usize,
    misses: usize,
}

impl FsModelCache {
    /// Opens (creating if needed) a model-cache directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn new(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FsModelCache {
            dir,
            hits: 0,
            misses: 0,
        })
    }

    /// The artifact path a key maps to (same sanitization as
    /// [`FsRoundTripCache::path_for`]).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{}.model.deepn", sanitized_key(key)))
    }

    /// Cache hits observed through this handle.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses observed through this handle.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

impl ModelCache for FsModelCache {
    fn load(&mut self, key: &str) -> Option<Sequential> {
        let net = load::<StoredModel>(self.path_for(key))
            .ok()
            .and_then(|stored| stored.instantiate().ok());
        match net {
            Some(net) => {
                self.hits += 1;
                Some(net)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, key: &str, recipe: &ModelRecipe, net: &Sequential) {
        let artifact = StoredModel::from_network(
            recipe.arch.clone(),
            recipe.in_channels,
            recipe.height,
            recipe.width,
            recipe.classes,
            recipe.seed,
            net,
        );
        // Best effort: a full disk or read-only dir must not fail the run.
        let _ = save(&artifact, self.path_for(key));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepn_core::experiment::round_trip_set_cached;
    use deepn_core::CompressionScheme;
    use deepn_dataset::{DatasetSpec, ImageSet};

    #[test]
    fn cache_persists_across_handles() {
        let dir = std::env::temp_dir().join(format!("deepn-rtc-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let set = ImageSet::generate(&DatasetSpec::tiny(), 3);
        let scheme = CompressionScheme::SameQ(8);

        let mut cold = FsRoundTripCache::new(&dir).expect("open");
        let (a, na) = round_trip_set_cached(&scheme, set.images(), &mut cold).expect("cold");
        assert_eq!(cold.hits(), 0);
        assert_eq!(cold.misses(), 1);

        // A fresh handle (a "second figure run") hits the persisted set.
        let mut warm = FsRoundTripCache::new(&dir).expect("reopen");
        let (b, nb) = round_trip_set_cached(&scheme, set.images(), &mut warm).expect("warm");
        assert_eq!(warm.hits(), 1);
        assert_eq!(warm.misses(), 0);
        assert_eq!(a, b);
        assert_eq!(na, nb);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn model_cache_persists_trained_models_across_handles() {
        use deepn_core::experiment::{run_symmetric_cached_with_models, ExperimentConfig, NoCache};

        let dir = std::env::temp_dir().join(format!("deepn-mc-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = DatasetSpec::tiny();
        spec.train_per_class = 8;
        spec.test_per_class = 4;
        let set = ImageSet::generate(&spec, 17);
        let mut cfg = ExperimentConfig::alexnet(deepn_core::experiment::Scale::Fast);
        cfg.epochs = 2;
        let scheme = CompressionScheme::Jpeg(60);

        let mut cold = FsModelCache::new(&dir).expect("open");
        let first = run_symmetric_cached_with_models(&cfg, &set, &scheme, &mut NoCache, &mut cold)
            .expect("cold run");
        assert_eq!((cold.hits(), cold.misses()), (0, 1));

        // A fresh handle (a "second pipeline run") loads the stored model
        // and skips training; deterministic training makes the accuracy
        // identical.
        let mut warm = FsModelCache::new(&dir).expect("reopen");
        let second = run_symmetric_cached_with_models(&cfg, &set, &scheme, &mut NoCache, &mut warm)
            .expect("warm run");
        assert_eq!((warm.hits(), warm.misses()), (1, 0));
        assert_eq!(first.accuracy, second.accuracy);
        assert!(second.history.train_loss.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_keys_stay_inside_the_directory() {
        let dir = std::env::temp_dir().join(format!("deepn-rtc-key-{}", std::process::id()));
        let cache = FsRoundTripCache::new(&dir).expect("open");
        let p = cache.path_for("../../etc/passwd");
        assert!(p.starts_with(&dir), "{p:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
