use std::error::Error;
use std::fmt;
use std::io;

/// Errors from encoding, decoding, or filing artifacts.
///
/// Every failure mode of a hostile or damaged input — wrong magic, an
/// unknown version, a kind mismatch, a checksum failure, truncation, or a
/// payload that decodes to semantically invalid values — is a typed error;
/// the store never panics on bad bytes.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure while reading or writing an artifact.
    Io(io::Error),
    /// The file does not start with the `DEEPNART` magic.
    BadMagic,
    /// The container version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The artifact holds a different kind than the caller requested.
    WrongKind {
        /// Kind the caller asked to decode.
        expected: u16,
        /// Kind recorded in the header.
        found: u16,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// CRC recorded in the file.
        stored: u32,
        /// CRC computed over the payload read.
        computed: u32,
    },
    /// The byte stream ended before a complete structure was read.
    Truncated,
    /// The payload decoded structurally but violates a semantic invariant
    /// (zero quantization step, label out of range, shape mismatch, ...).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact io error: {e}"),
            StoreError::BadMagic => write!(f, "not a deepn artifact (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact format version {v}")
            }
            StoreError::WrongKind { expected, found } => {
                write!(
                    f,
                    "artifact kind mismatch: expected {expected}, found {found}"
                )
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Truncated => write!(f, "artifact truncated"),
            StoreError::Corrupt(m) => write!(f, "corrupt artifact payload: {m}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::Truncated.to_string().contains("truncated"));
        let e = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<StoreError>();
    }
}
