//! [`Artifact`] payload codecs for every persistable pipeline type.

use crate::{Artifact, ArtifactKind, ByteReader, ByteWriter, StoreError};
use deepn_codec::{QuantTable, QuantTablePair, RgbImage};
use deepn_core::BandStats;
use deepn_dataset::{ClassSpec, DatasetSpec, ImageSet, PlaneStats};
use deepn_nn::{zoo, ParamExport, Sequential};

/// Appends an image as `u32 width | u32 height | width·height·3` RGB
/// bytes — the encoding shared by artifact payloads and the `deepn-serve`
/// wire protocol.
pub fn encode_image(w: &mut ByteWriter, img: &RgbImage) {
    w.put_u32(img.width() as u32);
    w.put_u32(img.height() as u32);
    w.put_bytes(img.as_bytes());
}

/// Reads an image written by [`encode_image`], validating the dimensions
/// against the remaining bytes before any allocation.
///
/// # Errors
///
/// [`StoreError::Truncated`] or [`StoreError::Corrupt`].
pub fn decode_image(r: &mut ByteReader<'_>) -> Result<RgbImage, StoreError> {
    let width = r.u32()? as usize;
    let height = r.u32()? as usize;
    let n = width
        .checked_mul(height)
        .and_then(|p| p.checked_mul(3))
        .ok_or_else(|| StoreError::Corrupt("image dimensions overflow".into()))?;
    if n > r.remaining() {
        return Err(StoreError::Truncated);
    }
    let data = r.bytes(n)?.to_vec();
    RgbImage::from_bytes(width, height, data)
        .map_err(|e| StoreError::Corrupt(format!("invalid stored image: {e}")))
}

fn encode_images(w: &mut ByteWriter, images: &[RgbImage]) {
    w.put_len(images.len());
    for img in images {
        encode_image(w, img);
    }
}

fn decode_images(r: &mut ByteReader<'_>) -> Result<Vec<RgbImage>, StoreError> {
    // Each image needs at least its 8-byte dimension header.
    let count = r.len(8)?;
    let mut images = Vec::with_capacity(count);
    for _ in 0..count {
        images.push(decode_image(r)?);
    }
    Ok(images)
}

impl Artifact for QuantTable {
    const KIND: ArtifactKind = ArtifactKind::QuantTable;

    fn encode_payload(&self, w: &mut ByteWriter) {
        for &v in self.values() {
            w.put_u16(v);
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let mut values = [0u16; 64];
        for v in &mut values {
            *v = r.u16()?;
        }
        QuantTable::new(values)
            .map_err(|e| StoreError::Corrupt(format!("invalid quantization table: {e}")))
    }
}

impl Artifact for QuantTablePair {
    const KIND: ArtifactKind = ArtifactKind::QuantTablePair;

    fn encode_payload(&self, w: &mut ByteWriter) {
        self.luma.encode_payload(w);
        self.chroma.encode_payload(w);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        Ok(QuantTablePair {
            luma: QuantTable::decode_payload(r)?,
            chroma: QuantTable::decode_payload(r)?,
        })
    }
}

fn encode_plane_stats(w: &mut ByteWriter, stats: &[PlaneStats; 64]) {
    for s in stats {
        let (n, mean, m2) = s.raw_parts();
        w.put_u64(n);
        w.put_f64(mean);
        w.put_f64(m2);
    }
}

fn decode_plane_stats(r: &mut ByteReader<'_>) -> Result<[PlaneStats; 64], StoreError> {
    let mut out = [PlaneStats::new(); 64];
    for s in &mut out {
        let n = r.u64()?;
        let mean = r.f64()?;
        let m2 = r.f64()?;
        if !mean.is_finite() || !m2.is_finite() || m2 < 0.0 {
            return Err(StoreError::Corrupt("non-finite band statistic".into()));
        }
        *s = PlaneStats::from_parts(n, mean, m2);
    }
    Ok(out)
}

impl Artifact for BandStats {
    const KIND: ArtifactKind = ArtifactKind::BandStats;

    fn encode_payload(&self, w: &mut ByteWriter) {
        encode_plane_stats(w, self.luma_stats());
        encode_plane_stats(w, self.chroma_stats());
        w.put_u64(self.image_count() as u64);
        w.put_u64(self.block_count() as u64);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let luma = decode_plane_stats(r)?;
        let chroma = decode_plane_stats(r)?;
        let images = r.u64()? as usize;
        let blocks = r.u64()? as usize;
        Ok(BandStats::from_parts(luma, chroma, images, blocks))
    }
}

fn encode_class(w: &mut ByteWriter, c: &ClassSpec) {
    w.put_string(&c.name);
    for &b in &c.base {
        w.put_f32(b);
    }
    for v in [
        c.lf_amp,
        c.lf_angle,
        c.mf_amp,
        c.mf_freq,
        c.mf_angle,
        c.hf_amp,
        c.hf_sign,
        c.noise_amp,
    ] {
        w.put_f32(v);
    }
}

fn decode_class(r: &mut ByteReader<'_>) -> Result<ClassSpec, StoreError> {
    let name = r.string()?;
    let mut base = [0.0f32; 3];
    for b in &mut base {
        *b = r.f32()?;
    }
    let mut rest = [0.0f32; 8];
    for v in &mut rest {
        *v = r.f32()?;
    }
    if rest.iter().any(|v| !v.is_finite()) || base.iter().any(|v| !v.is_finite()) {
        return Err(StoreError::Corrupt("non-finite class parameter".into()));
    }
    let [lf_amp, lf_angle, mf_amp, mf_freq, mf_angle, hf_amp, hf_sign, noise_amp] = rest;
    Ok(ClassSpec {
        name,
        base,
        lf_amp,
        lf_angle,
        mf_amp,
        mf_freq,
        mf_angle,
        hf_amp,
        hf_sign,
        noise_amp,
    })
}

impl Artifact for DatasetSpec {
    const KIND: ArtifactKind = ArtifactKind::DatasetSpec;

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u32(self.width as u32);
        w.put_u32(self.height as u32);
        w.put_u32(self.train_per_class as u32);
        w.put_u32(self.test_per_class as u32);
        w.put_len(self.classes.len());
        for c in &self.classes {
            encode_class(w, c);
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let width = r.u32()? as usize;
        let height = r.u32()? as usize;
        let train_per_class = r.u32()? as usize;
        let test_per_class = r.u32()? as usize;
        if width == 0 || height == 0 {
            return Err(StoreError::Corrupt("zero-sized dataset images".into()));
        }
        // Each class carries at least its name length + 11 floats.
        let count = r.len(4 + 11 * 4)?;
        let mut classes = Vec::with_capacity(count);
        for _ in 0..count {
            classes.push(decode_class(r)?);
        }
        if classes.is_empty() {
            return Err(StoreError::Corrupt("dataset spec with no classes".into()));
        }
        Ok(DatasetSpec {
            width,
            height,
            classes,
            train_per_class,
            test_per_class,
        })
    }
}

impl Artifact for ImageSet {
    const KIND: ArtifactKind = ArtifactKind::ImageSet;

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u32(self.train_len() as u32);
        w.put_u32(self.class_count() as u32);
        w.put_len(self.labels().len());
        for &l in self.labels() {
            w.put_u32(l as u32);
        }
        encode_images(w, self.images());
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let train_len = r.u32()? as usize;
        let class_count = r.u32()? as usize;
        let label_count = r.len(4)?;
        let mut labels = Vec::with_capacity(label_count);
        for _ in 0..label_count {
            let l = r.u32()? as usize;
            if l >= class_count {
                return Err(StoreError::Corrupt(format!(
                    "label {l} outside class range {class_count}"
                )));
            }
            labels.push(l);
        }
        let images = decode_images(r)?;
        if images.len() != labels.len() {
            return Err(StoreError::Corrupt(format!(
                "{} images but {} labels",
                images.len(),
                labels.len()
            )));
        }
        if train_len > images.len() {
            return Err(StoreError::Corrupt(format!(
                "train split {train_len} exceeds {} images",
                images.len()
            )));
        }
        Ok(ImageSet::from_parts(images, labels, train_len, class_count))
    }
}

/// Trained [`Sequential`] weights plus the zoo architecture and geometry
/// needed to rebuild the network exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredModel {
    /// Zoo architecture name (one of [`zoo::MODEL_NAMES`]).
    pub arch: String,
    /// Input channels the network was built for.
    pub in_channels: usize,
    /// Input image height.
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Output class count.
    pub classes: usize,
    /// Weight-initialization seed the network was built with (structural
    /// metadata only; the stored parameters override the initial weights).
    pub seed: u64,
    /// Every parameter and inference-state buffer, in layer order.
    pub params: Vec<ParamExport>,
}

impl StoredModel {
    /// Captures a trained network's weights together with its build recipe.
    pub fn from_network(
        arch: impl Into<String>,
        in_channels: usize,
        height: usize,
        width: usize,
        classes: usize,
        seed: u64,
        net: &Sequential,
    ) -> Self {
        StoredModel {
            arch: arch.into(),
            in_channels,
            height,
            width,
            classes,
            seed,
            params: net.save_params(),
        }
    }

    /// Rebuilds the architecture and loads the stored weights into it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if the architecture name is unknown, the
    /// geometry is implausible, or the stored parameters do not match the
    /// rebuilt network.
    pub fn instantiate(&self) -> Result<Sequential, StoreError> {
        if !zoo::MODEL_NAMES.contains(&self.arch.as_str()) {
            return Err(StoreError::Corrupt(format!(
                "unknown model architecture {:?}",
                self.arch
            )));
        }
        if self.in_channels == 0
            || self.in_channels > 16
            || !self.height.is_multiple_of(8)
            || !self.width.is_multiple_of(8)
            || !(8..=1024).contains(&self.height)
            || !(8..=1024).contains(&self.width)
            || self.classes == 0
            || self.classes > 65_536
        {
            return Err(StoreError::Corrupt(format!(
                "implausible model geometry {}x{}x{} -> {} classes",
                self.in_channels, self.height, self.width, self.classes
            )));
        }
        let mut net = zoo::by_name(
            &self.arch,
            self.in_channels,
            self.height,
            self.width,
            self.classes,
            self.seed,
        );
        net.load_params(self.params.clone())
            .map_err(|e| StoreError::Corrupt(format!("stored weights reject: {e}")))?;
        Ok(net)
    }
}

impl Artifact for StoredModel {
    const KIND: ArtifactKind = ArtifactKind::Model;

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_string(&self.arch);
        w.put_u32(self.in_channels as u32);
        w.put_u32(self.height as u32);
        w.put_u32(self.width as u32);
        w.put_u32(self.classes as u32);
        w.put_u64(self.seed);
        w.put_len(self.params.len());
        for p in &self.params {
            w.put_string(&p.name);
            w.put_len(p.shape.len());
            for &d in &p.shape {
                w.put_u32(d as u32);
            }
            w.put_len(p.values.len());
            for &v in &p.values {
                w.put_f32(v);
            }
        }
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let arch = r.string()?;
        let in_channels = r.u32()? as usize;
        let height = r.u32()? as usize;
        let width = r.u32()? as usize;
        let classes = r.u32()? as usize;
        let seed = r.u64()?;
        // Each parameter carries at least a name length, a shape length,
        // and a value length.
        let count = r.len(12)?;
        let mut params = Vec::with_capacity(count);
        for _ in 0..count {
            let name = r.string()?;
            let rank = r.len(4)?;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(r.u32()? as usize);
            }
            let len = r.len(4)?;
            let expected: usize = shape.iter().product();
            if expected != len {
                return Err(StoreError::Corrupt(format!(
                    "parameter {name:?}: shape {shape:?} declares {expected} values, found {len}"
                )));
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(r.f32()?);
            }
            params.push(ParamExport {
                name,
                shape,
                values,
            });
        }
        Ok(StoredModel {
            arch,
            in_channels,
            height,
            width,
            classes,
            seed,
            params,
        })
    }
}

/// A decoded (round-tripped) image set cached for the figure pipeline,
/// together with the compressed byte total the round trip measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSet {
    /// The decoded images.
    pub images: Vec<RgbImage>,
    /// Total compressed size of the set under the originating scheme.
    pub compressed_bytes: u64,
}

impl Artifact for DecodedSet {
    const KIND: ArtifactKind = ArtifactKind::DecodedSet;

    fn encode_payload(&self, w: &mut ByteWriter) {
        w.put_u64(self.compressed_bytes);
        encode_images(w, &self.images);
    }

    fn decode_payload(r: &mut ByteReader<'_>) -> Result<Self, StoreError> {
        let compressed_bytes = r.u64()?;
        let images = decode_images(r)?;
        Ok(DecodedSet {
            images,
            compressed_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};
    use deepn_core::analyze_images;
    use deepn_nn::Layer;

    fn tiny_set() -> ImageSet {
        ImageSet::generate(&DatasetSpec::tiny(), 17)
    }

    #[test]
    fn quant_pair_round_trips() {
        let pair = QuantTablePair::standard(42);
        let back: QuantTablePair = from_bytes(&to_bytes(&pair)).expect("round trip");
        assert_eq!(pair, back);
    }

    #[test]
    fn zero_step_table_is_corrupt_not_panic() {
        let table = QuantTable::uniform(3);
        let mut bytes = to_bytes(&table);
        // Zero the first step and re-seal the container checksum, so the
        // semantic validation (not the CRC) is what trips.
        bytes[crate::HEADER_LEN] = 0;
        bytes[crate::HEADER_LEN + 1] = 0;
        let end = bytes.len() - 4;
        let crc = crate::crc32(&bytes[8..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&crc);
        assert!(matches!(
            from_bytes::<QuantTable>(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn band_stats_round_trip_preserves_sigmas() {
        let set = tiny_set();
        let stats = analyze_images(set.images().iter(), 1).expect("stats");
        let back: BandStats = from_bytes(&to_bytes(&stats)).expect("round trip");
        assert_eq!(back.image_count(), stats.image_count());
        assert_eq!(back.block_count(), stats.block_count());
        assert_eq!(back.luma_sigmas(), stats.luma_sigmas());
        assert_eq!(back.chroma_sigmas(), stats.chroma_sigmas());
    }

    #[test]
    fn dataset_spec_and_image_set_round_trip() {
        let spec = DatasetSpec::tiny();
        let back: DatasetSpec = from_bytes(&to_bytes(&spec)).expect("spec");
        assert_eq!(spec, back);
        // Regenerating from the reloaded spec is bit-identical.
        let a = ImageSet::generate(&spec, 5);
        let b = ImageSet::generate(&back, 5);
        assert_eq!(a.images(), b.images());

        let set = tiny_set();
        let back: ImageSet = from_bytes(&to_bytes(&set)).expect("set");
        assert_eq!(set.images(), back.images());
        assert_eq!(set.labels(), back.labels());
        assert_eq!(set.train_len(), back.train_len());
        assert_eq!(set.class_count(), back.class_count());
    }

    #[test]
    fn stored_model_rebuilds_identical_predictions() {
        let set = tiny_set();
        let img = &set.images()[0];
        let (h, w) = (img.height(), img.width());
        let net = zoo::by_name("MiniAlexNet", 3, h, w, set.class_count(), 7);
        let stored = StoredModel::from_network("MiniAlexNet", 3, h, w, set.class_count(), 7, &net);
        let back: StoredModel = from_bytes(&to_bytes(&stored)).expect("model");
        let rebuilt = back.instantiate().expect("instantiate");
        let x = deepn_tensor::Tensor::from_vec(img.to_chw_f32(), &[1, 3, h, w]);
        assert_eq!(net.predict(&x), rebuilt.predict(&x));
        assert_eq!(net.infer(&x).data(), rebuilt.infer(&x).data());
    }

    #[test]
    fn stored_model_rejects_unknown_arch_and_bad_geometry() {
        let net = zoo::mlp_probe(3, 16, 16, 4, 1);
        let mut stored = StoredModel::from_network("MiniAlexNet", 3, 16, 16, 4, 1, &net);
        stored.arch = "NotAModel".into();
        assert!(matches!(stored.instantiate(), Err(StoreError::Corrupt(_))));
        stored.arch = "MiniAlexNet".into();
        stored.height = 12; // not 8-divisible
        assert!(matches!(stored.instantiate(), Err(StoreError::Corrupt(_))));
        stored.height = 16;
        // Geometry fine, but the MLP params don't fit MiniAlexNet.
        assert!(matches!(stored.instantiate(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn decoded_set_round_trips() {
        let set = tiny_set();
        let cached = DecodedSet {
            images: set.images()[..4].to_vec(),
            compressed_bytes: 1234,
        };
        let back: DecodedSet = from_bytes(&to_bytes(&cached)).expect("decoded set");
        assert_eq!(cached, back);
    }
}
