//! # deepn-parallel
//!
//! A small work-stealing compute runtime for the DeepN-JPEG hot paths —
//! the workspace's stand-in for `rayon`, built from scratch because the
//! build environment has no crates.io access (the same way `deepn-store`
//! replaces serde).
//!
//! ## Model
//!
//! One process-global pool, lazily initialized on first use and sized from
//! the available cores, drives every data-parallel operation:
//!
//! - [`par_chunks`] / [`par_chunks_mut`] — disjoint slice pieces in
//!   parallel;
//! - [`par_map_collect`] — an indexed map collected in input order;
//! - [`par_map_into`] — the same map written into a caller-owned slice,
//!   so streaming loops with reusable workspaces allocate nothing;
//! - [`join`] — two-way fork/join;
//! - [`scope`] — structured spawning of borrowing tasks.
//!
//! Each worker owns a deque: owners push/pop at the back, idle siblings
//! steal from the front, so imbalanced workloads rebalance without a
//! central queue. A panicking task poisons only its own job — the panic
//! payload is rethrown on the thread that waits for that job, after every
//! task of the job has finished — and never takes down a pool thread.
//!
//! ## `DEEPN_THREADS` and determinism
//!
//! The pool size comes from the `DEEPN_THREADS` environment variable when
//! set to a positive integer, else from `std::thread::available_parallelism`.
//! `DEEPN_THREADS=1` degrades every operation to inline execution on the
//! calling thread — the scalar code path, bit for bit — which is the knob
//! for deterministic debugging and for CI's inline-executor leg.
//!
//! Results do **not** depend on the thread count: every operation computes
//! chunk outputs with the scalar loop's exact order and joins them in
//! chunk-index order (see `docs/PARALLELISM.md` for the full contract).
//! [`run_sequential`] additionally forces inline execution for one closure
//! on the current thread, which is how the parity tests and benchmarks
//! obtain the scalar baseline without restarting the process.
//!
//! ```
//! let squares = deepn_parallel::par_map_collect(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! let (a, b) = deepn_parallel::join(|| 2 + 2, || "together");
//! assert_eq!((a, b), (4, "together"));
//! ```

#![deny(missing_docs)]

mod ops;
mod pool;

pub use ops::{chunk_size_for, Scope};
pub use pool::Pool;

use std::sync::OnceLock;

/// Environment variable selecting the global pool's thread count.
pub const THREADS_ENV: &str = "DEEPN_THREADS";

/// Thread count the global pool will use: `DEEPN_THREADS` when it parses
/// as a positive integer (clamped to 256), else the machine's available
/// parallelism.
pub fn configured_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(256))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The process-global pool, created on first use.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::with_threads(configured_threads()))
}

/// Effective parallelism for a call made right now on this thread: 1
/// inside [`run_sequential`] (or with a one-thread pool), else the global
/// pool's thread count. Dispatch heuristics ("is this worth forking?")
/// should consult this, not `configured_threads`.
pub fn current_threads() -> usize {
    if pool::forced_sequential() {
        1
    } else {
        global().threads()
    }
}

/// Runs `f` with every parallel operation on this thread forced inline —
/// the scalar reference path. Nestable; unwinds correctly through panics.
///
/// This is how tests assert the bit-identity contract and how benchmarks
/// measure the scalar baseline inside one process:
///
/// ```
/// let par = deepn_parallel::par_map_collect(&[1.0f32, 2.0], |_, &x| x.sqrt());
/// let seq = deepn_parallel::run_sequential(|| {
///     deepn_parallel::par_map_collect(&[1.0f32, 2.0], |_, &x| x.sqrt())
/// });
/// assert_eq!(par, seq);
/// ```
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    let _guard = pool::SequentialGuard::new();
    f()
}

/// [`Pool::worker_busy_ns`] on the global pool: per-worker busy time in
/// nanoseconds, advancing only while tracing is enabled.
pub fn worker_busy_ns() -> Vec<u64> {
    global().worker_busy_ns()
}

/// [`Pool::join`] on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    global().join(a, b)
}

/// [`Pool::scope`] on the global pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    global().scope(f)
}

/// [`Pool::par_chunks`] on the global pool.
pub fn par_chunks<T, F>(data: &[T], chunk_size: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &[T]) + Sync,
{
    global().par_chunks(data, chunk_size, f);
}

/// [`Pool::par_chunks_mut`] on the global pool.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    global().par_chunks_mut(data, chunk_size, f);
}

/// [`Pool::par_map_collect`] on the global pool.
pub fn par_map_collect<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    global().par_map_collect(items, f)
}

/// [`Pool::par_map_into`] on the global pool.
pub fn par_map_into<T, U, F>(items: &[T], out: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    global().par_map_into(items, out, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pools() -> Vec<Pool> {
        vec![
            Pool::with_threads(1),
            Pool::with_threads(2),
            Pool::with_threads(8),
        ]
    }

    #[test]
    fn par_map_collect_matches_scalar_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * x + i as u64)
            .collect();
        for pool in pools() {
            let got = pool.par_map_collect(&items, |i, &x| x * x + i as u64);
            assert_eq!(got, expect, "pool with {} threads", pool.threads());
        }
    }

    #[test]
    fn par_map_into_matches_collect_across_thread_counts() {
        let items: Vec<u64> = (0..513).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 3 + i as u64)
            .collect();
        for pool in pools() {
            let mut out = vec![0u64; items.len()];
            pool.par_map_into(&items, &mut out, |i, &x| x * 3 + i as u64);
            assert_eq!(out, expect, "pool with {} threads", pool.threads());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_map_into_rejects_mismatched_lengths() {
        let mut out = vec![0u32; 3];
        Pool::with_threads(1).par_map_into(&[1u32, 2], &mut out, |_, &x| x);
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        for pool in pools() {
            let mut data = vec![0usize; 103];
            pool.par_chunks_mut(&mut data, 10, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 10 + j + 1;
                }
            });
            let expect: Vec<usize> = (1..=103).collect();
            assert_eq!(data, expect, "pool with {} threads", pool.threads());
        }
    }

    #[test]
    fn par_chunks_observes_disjoint_pieces() {
        let data: Vec<u32> = (0..57).collect();
        for pool in pools() {
            let seen = Mutex::new(vec![0u32; 57]);
            pool.par_chunks(&data, 8, |ci, chunk| {
                let mut seen = seen.lock().expect("lock");
                for (j, &v) in chunk.iter().enumerate() {
                    assert_eq!(v as usize, ci * 8 + j);
                    seen[v as usize] += 1;
                }
            });
            assert!(seen.into_inner().expect("lock").iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn join_returns_both_results() {
        for pool in pools() {
            let (a, b) = pool.join(|| 40 + 2, || "parallel".len());
            assert_eq!((a, b), (42, 8));
        }
    }

    #[test]
    fn scope_runs_all_spawned_tasks_with_borrows() {
        for pool in pools() {
            let counter = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..64 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 64);
        }
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = Pool::with_threads(2);
        let out = pool.par_map_collect(&[10usize, 20, 30, 40], |_, &n| {
            let inner: Vec<usize> =
                pool.par_map_collect(&(0..n).collect::<Vec<usize>>(), |_, &x| x + 1);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![55, 210, 465, 820]);
    }

    #[test]
    fn panic_poisons_only_its_job_and_propagates() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..64).collect();
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_collect(&items, |_, &x| {
                if x == 13 {
                    panic!("task 13 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload survives");
        assert_eq!(msg, "task 13 exploded");
        // The job is poisoned, the pool is not: later jobs run normally.
        let after = pool.par_map_collect(&items, |_, &x| x * 2);
        assert_eq!(after[63], 126);
        assert!(completed.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn scope_panic_waits_for_siblings_then_rethrows() {
        let pool = Pool::with_threads(4);
        let finished = AtomicUsize::new(0);
        let finished = &finished;
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    s.spawn(move || {
                        if i == 3 {
                            panic!("spawned task panicked");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn run_sequential_forces_inline_execution() {
        let outer = current_threads();
        let inner = run_sequential(current_threads);
        assert_eq!(inner, 1);
        assert_eq!(current_threads(), outer);
        // Nested sections unwind their depth correctly through panics.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            run_sequential(|| panic!("inside sequential"))
        }));
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn worker_busy_time_advances_only_under_tracing() {
        let pool = Pool::with_threads(2);
        let spin = |_: usize, &x: &u64| {
            let mut acc = x;
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            acc
        };
        let items: Vec<u64> = (0..64).collect();
        // Tracing disabled (the default): busy counters must not move.
        let before = pool.par_map_collect(&items, spin);
        assert_eq!(pool.worker_busy_ns().iter().sum::<u64>(), 0);
        deepn_trace::set_enabled(true);
        let after = pool.par_map_collect(&items, spin);
        deepn_trace::set_enabled(false);
        assert!(pool.worker_busy_ns().iter().sum::<u64>() > 0);
        // And instrumentation never changes results.
        assert_eq!(before, after);
    }

    #[test]
    fn global_helpers_agree_with_scalar() {
        let data: Vec<f32> = (0..257).map(|i| i as f32 * 0.37).collect();
        let par = par_map_collect(&data, |i, &x| x.sin() + i as f32);
        let seq = run_sequential(|| par_map_collect(&data, |i, &x| x.sin() + i as f32));
        assert_eq!(par, seq);
    }
}
