//! The data-parallel operations built on the pool's task batch primitive.
//!
//! Every operation here has the same determinism contract: outputs are
//! assembled from per-chunk results in chunk-index order, and the work
//! inside one chunk runs in exactly the order the scalar loop would use —
//! so results are bit-identical to inline execution no matter how chunks
//! interleave across threads.

use crate::pool::{JobTracker, Pool};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// A handle for spawning tasks that may borrow from the enclosing
/// environment (`'env`); see [`Pool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    job: Arc<JobTracker>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns a task into the scope. The task may borrow anything that
    /// outlives the [`Pool::scope`] call and may itself spawn further
    /// tasks through the scope it captures.
    ///
    /// Panics inside a task are captured and rethrown (first one wins)
    /// when the scope closes; they never kill a pool thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.inline_now() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                self.job.poison(payload);
            }
            return;
        }
        self.job.add_task();
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: `Pool::scope` waits for every spawned task (panic or
        // not) before returning, so the `'env` borrows outlive the task.
        let erased = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(boxed)
        };
        self.pool.submit(&self.job, vec![erased]);
    }
}

impl Pool {
    /// Structured fork/join: runs `f` with a [`Scope`] whose spawned tasks
    /// are all complete by the time `scope` returns.
    ///
    /// # Panics
    ///
    /// Rethrows a panic from the scope body, or the first captured task
    /// panic — in both cases only after every spawned task has finished.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            job: Arc::new(JobTracker::new(0)),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&scope.job);
        match result {
            Ok(value) => {
                scope.job.propagate_panic();
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Runs two closures, potentially in parallel, returning both results.
    /// `a` always runs on the calling thread; `b` is offered to the pool.
    ///
    /// # Panics
    ///
    /// Rethrows a panic from either closure (preferring `a`'s) after both
    /// have finished.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        if self.inline_now() {
            return (a(), b());
        }
        let slot: Mutex<Option<RB>> = Mutex::new(None);
        let job = Arc::new(JobTracker::new(1));
        {
            let slot = &slot;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                *slot.lock().expect("join slot never poisoned") = Some(b());
            });
            // SAFETY: `wait` below blocks until the task completed (even
            // when `a` panics), so the borrows of `slot` and `b` are live
            // for the task's whole execution.
            let erased = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send>>(task)
            };
            self.submit(&job, vec![erased]);
        }
        let ra = catch_unwind(AssertUnwindSafe(a));
        self.wait(&job);
        let ra = match ra {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        };
        job.propagate_panic();
        let rb = slot
            .into_inner()
            .expect("join slot never poisoned")
            .expect("join task completed without panicking");
        (ra, rb)
    }

    /// Calls `f(chunk_index, chunk)` for every `chunk_size`-sized piece of
    /// `data` (the last chunk may be shorter), in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; rethrows the first task panic.
    pub fn par_chunks<T, F>(&self, data: &[T], chunk_size: usize, f: F)
    where
        T: Sync,
        F: Fn(usize, &[T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, chunk)| Box::new(move || f(i, chunk)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.exec_batch(tasks);
    }

    /// Calls `f(chunk_index, chunk)` for every `chunk_size`-sized mutable
    /// piece of `data`, in parallel. Chunks are disjoint, so no
    /// synchronization is needed inside `f`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; rethrows the first task panic.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(i, chunk)| Box::new(move || f(i, chunk)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.exec_batch(tasks);
    }

    /// Maps `f(index, item)` over `items` into the caller-owned `out`
    /// slice — the allocation-free sibling of
    /// [`par_map_collect`](Self::par_map_collect), built for streaming hot
    /// loops that reuse workspace buffers. Each output element is written
    /// exactly once, by index, so the result is identical to the scalar
    /// loop at any thread count; the inline path performs no heap
    /// allocation at all.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != out.len()`; rethrows the first task panic.
    pub fn par_map_into<T, U, F>(&self, items: &[T], out: &mut [U], f: F)
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        assert_eq!(
            items.len(),
            out.len(),
            "par_map_into output length mismatch"
        );
        if self.inline_now() || items.len() <= 1 {
            for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                *slot = f(i, item);
            }
            return;
        }
        let chunk_size = chunk_size_for(self, items.len());
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let base = ci * chunk_size;
                Box::new(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = f(base + j, &items[base + j]);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.exec_batch(tasks);
    }

    /// Maps `f(index, item)` over `items` and collects the results in
    /// input order. Items are processed in contiguous chunks; the output
    /// is identical to `items.iter().enumerate().map(..).collect()`.
    ///
    /// # Panics
    ///
    /// Rethrows the first task panic.
    pub fn par_map_collect<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.inline_now() || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk_size = items.len().div_ceil(self.threads() * CHUNKS_PER_THREAD);
        let chunk_count = items.len().div_ceil(chunk_size);
        let slots: Vec<Mutex<Vec<U>>> = (0..chunk_count).map(|_| Mutex::new(Vec::new())).collect();
        {
            let f = &f;
            let slots = &slots;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks(chunk_size)
                .enumerate()
                .map(|(ci, chunk)| {
                    Box::new(move || {
                        let base = ci * chunk_size;
                        let out: Vec<U> = chunk
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(base + j, t))
                            .collect();
                        *slots[ci].lock().expect("slot never poisoned") = out;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.exec_batch(tasks);
        }
        slots
            .into_iter()
            .flat_map(|slot| slot.into_inner().expect("slot never poisoned"))
            .collect()
    }
}

/// Oversubscription factor: more chunks than threads smooths out uneven
/// per-item cost via stealing, at negligible queuing overhead.
const CHUNKS_PER_THREAD: usize = 4;

/// `ceil(len / (threads * CHUNKS_PER_THREAD))` — the chunk size the pool
/// would pick for a `len`-item workload; exposed so slice-splitting call
/// sites (e.g. row-parallel matmul) can mirror `par_map_collect`'s policy.
pub fn chunk_size_for(pool: &Pool, len: usize) -> usize {
    len.div_ceil(pool.threads() * CHUNKS_PER_THREAD).max(1)
}
