//! The work-stealing thread pool: per-worker deques, a round-robin
//! submitter, and sibling stealing, with panic containment per job.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::Duration;

/// The pool's process-wide instruments, registered once on the global
/// `deepn-trace` registry. Steal counts and the queue high-water mark are
/// always live (plain atomics, no clock); busy-time is recorded only
/// while tracing is enabled, because it needs two clock reads per task.
struct PoolMetrics {
    steals: Arc<deepn_trace::Counter>,
    queue_high_water: Arc<deepn_trace::Gauge>,
    busy_ns: Arc<deepn_trace::Counter>,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = deepn_trace::global();
        PoolMetrics {
            steals: registry.counter(
                "deepn_parallel_steals_total",
                "Tasks stolen from a sibling worker's deque",
            ),
            queue_high_water: registry.gauge(
                "deepn_parallel_queue_high_water",
                "Largest per-worker deque depth observed since process start",
            ),
            busy_ns: registry.counter(
                "deepn_parallel_worker_busy_ns_total",
                "Nanoseconds pool workers spent executing tasks (only advances while tracing is enabled)",
            ),
        }
    })
}

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// Every critical section in this module is a single queue push/pop,
/// counter read, or notify that cannot be left half-done: user-task
/// panics are caught in [`Task::execute`] *outside* these locks, so a
/// poisoned mutex here means a thread died between acquiring and
/// releasing a lock around an operation that either happened or did not.
/// The protected data is therefore always consistent, and recovering is
/// sound — while propagating the poison would escalate one caught panic
/// into a dead pool for every other worker.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// `(Shared address, worker index)` when the current thread is a pool
    /// worker — lets a nested parallel call help execute instead of
    /// blocking (which would deadlock a pool whose every worker waits).
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };

    /// Depth of [`crate::run_sequential`] sections on this thread. Any
    /// non-zero depth forces every parallel entry point to run inline.
    static FORCE_SEQUENTIAL: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard incrementing the force-sequential depth (decrements on drop,
/// so the flag unwinds correctly through panics).
pub(crate) struct SequentialGuard;

impl SequentialGuard {
    pub(crate) fn new() -> Self {
        FORCE_SEQUENTIAL.with(|d| d.set(d.get() + 1));
        SequentialGuard
    }
}

impl Drop for SequentialGuard {
    fn drop(&mut self) {
        FORCE_SEQUENTIAL.with(|d| d.set(d.get() - 1));
    }
}

pub(crate) fn forced_sequential() -> bool {
    FORCE_SEQUENTIAL.with(Cell::get) > 0
}

/// Tracks one logical job: a batch of tasks submitted together (one
/// `par_*` call, one `join`, or one `scope`). Completion is a counter;
/// the first panicking task poisons the job and the panic payload is
/// rethrown on the thread that waits for the job — a panic costs its job,
/// never a pool thread.
pub(crate) struct JobTracker {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    lock: Mutex<()>,
    cv: Condvar,
}

impl JobTracker {
    pub(crate) fn new(tasks: usize) -> Self {
        JobTracker {
            remaining: AtomicUsize::new(tasks),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn add_task(&self) {
        self.remaining.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    pub(crate) fn poison(&self, payload: Box<dyn Any + Send>) {
        let mut slot = lock_unpoisoned(&self.panic);
        slot.get_or_insert(payload);
    }

    fn complete_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock_unpoisoned(&self.lock);
            self.cv.notify_all();
        }
    }

    /// Rethrows the first panic recorded by this job, if any. Must only be
    /// called once the job is done.
    pub(crate) fn propagate_panic(&self) {
        let payload = lock_unpoisoned(&self.panic).take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// One unit of queued work, bound to its job.
struct Task {
    run: Box<dyn FnOnce() + Send + 'static>,
    job: Arc<JobTracker>,
}

impl Task {
    fn execute(self) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(self.run)) {
            self.job.poison(payload);
        }
        self.job.complete_one();
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker. Owners pop from the back (LIFO, cache-warm);
    /// thieves steal from the front (FIFO, oldest first).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Wakeup generation counter; bumped (under `sleep`) on every submit.
    sleep: Mutex<u64>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor so successive external submissions spread across
    /// workers.
    next_deque: AtomicUsize,
    /// Per-worker nanoseconds spent executing tasks; only advances while
    /// tracing is enabled (see [`Shared::execute_timed`]).
    busy_ns: Vec<AtomicU64>,
}

impl Shared {
    /// Finds a runnable task: own deque first, then steal from siblings in
    /// ring order.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(me) = me {
            if let Some(t) = lock_unpoisoned(&self.deques[me]).pop_back() {
                return Some(t);
            }
        }
        let n = self.deques.len();
        let start = me.map_or(0, |m| (m + 1) % n);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = lock_unpoisoned(&self.deques[victim]).pop_front() {
                metrics().steals.inc();
                return Some(t);
            }
        }
        None
    }

    /// Runs a task, charging its wall time to `worker`'s busy counter and
    /// the process-wide busy total when tracing is enabled. Disabled cost:
    /// one relaxed atomic load, no clock read.
    fn execute_timed(&self, worker: usize, task: Task) {
        if deepn_trace::enabled() {
            let start = deepn_trace::tick();
            task.execute();
            let dur = deepn_trace::tick().saturating_sub(start);
            self.busy_ns[worker].fetch_add(dur, Ordering::Relaxed);
            metrics().busy_ns.add(dur);
        } else {
            task.execute();
        }
    }

    fn wake_all(&self) {
        let mut generation = lock_unpoisoned(&self.sleep);
        *generation = generation.wrapping_add(1);
        self.cv.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>, index: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((Arc::as_ptr(shared) as usize, index))));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Busy path: no shared lock — dequeue and run.
        if let Some(task) = shared.find_task(Some(index)) {
            shared.execute_timed(index, task);
            continue;
        }
        // Miss path only: snapshot the wakeup generation, re-check for
        // work submitted in the window before the snapshot, then sleep.
        // A submit between re-check and wait bumps the generation, which
        // the check under the lock observes — no lost wakeup.
        let generation = *lock_unpoisoned(&shared.sleep);
        if let Some(task) = shared.find_task(Some(index)) {
            shared.execute_timed(index, task);
            continue;
        }
        let guard = lock_unpoisoned(&shared.sleep);
        if *guard == generation && !shared.shutdown.load(Ordering::Acquire) {
            // The timeout is belt-and-braces against a missed wakeup; the
            // generation check makes the common path race-free. A poisoned
            // result still returns the guard, which we drop either way.
            let _ = shared.cv.wait_timeout(guard, Duration::from_millis(50));
        }
    }
}

/// A work-stealing thread pool.
///
/// A pool of `n` threads runs `n` dedicated workers (callers block — or,
/// when the caller is itself a worker, help execute — while a job runs).
/// A pool of one thread spawns nothing and executes every parallel
/// operation inline on the caller, which is also the behavior under
/// [`crate::run_sequential`] — the degenerate pool *is* the scalar path.
///
/// Most code uses the process-global pool through the crate-level free
/// functions; explicit pools exist so tests can pin a thread count
/// independently of `DEEPN_THREADS`.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with exactly `threads` compute threads (clamped to at
    /// least 1). `threads == 1` spawns no workers: every operation runs
    /// inline.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            deques: (0..worker_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            sleep: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_deque: AtomicUsize::new(0),
            busy_ns: (0..worker_count).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("deepn-par-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // lint:allow(panic-policy): pool construction, not the
                    // request path — if the OS cannot spawn a thread at
                    // startup there is no pool to degrade to, and no work
                    // has been queued yet that could be lost.
                    .expect("spawning a pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            workers,
        }
    }

    /// The pool's compute-thread count (1 means inline execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Per-worker nanoseconds spent executing tasks. Advances only while
    /// tracing is enabled (`deepn_trace::set_enabled(true)` or
    /// `DEEPN_TRACE=1`); empty for a one-thread pool, which runs inline.
    pub fn worker_busy_ns(&self) -> Vec<u64> {
        self.shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Whether a parallel call entering now would run inline: a one-thread
    /// pool, or a [`crate::run_sequential`] section on this thread.
    pub fn inline_now(&self) -> bool {
        self.threads == 1 || forced_sequential()
    }

    /// `Some(index)` when the current thread is one of **this** pool's
    /// workers.
    fn current_worker_index(&self) -> Option<usize> {
        CURRENT_WORKER.with(|w| match w.get() {
            Some((pool, index)) if pool == Arc::as_ptr(&self.shared) as usize => Some(index),
            _ => None,
        })
    }

    /// Submits lifetime-erased tasks for `job` and wakes the workers.
    pub(crate) fn submit(
        &self,
        job: &Arc<JobTracker>,
        fns: Vec<Box<dyn FnOnce() + Send + 'static>>,
    ) {
        let n = self.shared.deques.len();
        debug_assert!(n > 0, "submit on an inline pool");
        if let Some(me) = self.current_worker_index() {
            // A worker fans out onto its own deque; siblings steal the
            // overflow from the front while the owner pops the back.
            let mut deque = lock_unpoisoned(&self.shared.deques[me]);
            for f in fns {
                deque.push_back(Task {
                    run: f,
                    job: Arc::clone(job),
                });
            }
            metrics().queue_high_water.set_max(deque.len() as u64);
        } else {
            let start = self.shared.next_deque.fetch_add(1, Ordering::Relaxed);
            for (i, f) in fns.into_iter().enumerate() {
                let mut deque = lock_unpoisoned(&self.shared.deques[(start + i) % n]);
                deque.push_back(Task {
                    run: f,
                    job: Arc::clone(job),
                });
                metrics().queue_high_water.set_max(deque.len() as u64);
            }
        }
        self.shared.wake_all();
    }

    /// Blocks until `job` completes. A worker waiting on a nested job
    /// helps execute queued tasks instead of sleeping, so nested
    /// parallelism cannot deadlock the pool.
    pub(crate) fn wait(&self, job: &JobTracker) {
        if let Some(me) = self.current_worker_index() {
            // Help-first, then back off: once nothing is stealable the job
            // is blocked on tasks already in flight elsewhere, and a hard
            // yield loop would burn the core those tasks need.
            let mut idle_spins = 0u32;
            while !job.done() {
                match self.shared.find_task(Some(me)) {
                    Some(task) => {
                        idle_spins = 0;
                        self.shared.execute_timed(me, task);
                    }
                    None if idle_spins < 64 => {
                        idle_spins += 1;
                        thread::yield_now();
                    }
                    None => thread::sleep(Duration::from_micros(200)),
                }
            }
            return;
        }
        while !job.done() {
            let guard = lock_unpoisoned(&job.lock);
            if job.done() {
                break;
            }
            let _ = job.cv.wait_timeout(guard, Duration::from_millis(50));
        }
    }

    /// Runs a batch of closures to completion — inline (in order) on the
    /// degenerate paths, otherwise distributed over the workers — and
    /// rethrows the first panic after **all** of them finished (borrowed
    /// data stays live for the full batch even when one task panics).
    pub(crate) fn exec_batch<'env>(&self, fns: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if fns.is_empty() {
            return;
        }
        if self.inline_now() || fns.len() == 1 {
            for f in fns {
                f();
            }
            return;
        }
        let job = Arc::new(JobTracker::new(fns.len()));
        // SAFETY: `exec_batch` does not return before `wait` observes every
        // task completed (even on the panic path), so the `'env` borrows
        // captured by the closures outlive every task execution.
        let erased: Vec<Box<dyn FnOnce() + Send + 'static>> = fns
            .into_iter()
            .map(|f| unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(f)
            })
            .collect();
        self.submit(&job, erased);
        self.wait(&job);
        job.propagate_panic();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}
