//! # deepn-serve
//!
//! A long-running, multi-threaded DeepN-JPEG compression service. The
//! server loads its quantization tables (and optionally a trained model)
//! from `deepn-store` artifacts at startup — nothing is recomputed per
//! process — and serves batch encode/decode/classify requests over a
//! length-prefixed localhost TCP protocol.
//!
//! Architecture: an acceptor thread hands each connection to a lightweight
//! reader thread; every image in a batch request becomes one job on a
//! **bounded** queue drained by a fixed worker pool, so a single large
//! batch parallelizes across cores and an overloaded service applies
//! backpressure (submission blocks) instead of growing without bound.
//!
//! Both wire directions stream: `CompressStream` feeds pixels to the
//! service one 8-row strip frame at a time, and `DecompressStream` frames
//! decoded strips back the same way, so neither side ever materializes a
//! whole image for the streamed ops. Request/response ops can additionally
//! be **pipelined** ([`Client::pipeline`]): a bounded window of requests
//! in flight on one connection, with ordered replies and reconnect+replay
//! of the whole unacknowledged window. `docs/PROTOCOL.md` is the complete
//! wire specification.
//!
//! ```no_run
//! use deepn_codec::QuantTablePair;
//! use deepn_serve::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind("127.0.0.1:0", QuantTablePair::standard(75), None,
//!                           ServerConfig::default())?;
//! let addr = server.local_addr()?;
//! let handle = server.spawn();
//! let mut client = Client::connect(addr)?;
//! client.ping()?;
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod client;
pub mod loadgen;
mod metrics;
pub mod protocol;
mod server;

pub use client::{Client, Pipeline, PipelineReply, StreamCompression, StreamDecompression};
pub use server::{Server, ServerConfig, ServerHandle, StatsSnapshot};

use std::error::Error;
use std::fmt;
use std::io;

/// Errors from the compression service or its client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer violated the wire protocol (bad opcode, truncated or
    /// oversized payload, ...).
    Protocol(String),
    /// The service reported a failure while handling the request.
    Remote(String),
    /// The service rejected the connection because it is at its configured
    /// connection limit — a typed signal to back off and reconnect, not a
    /// failure of the request itself.
    Busy(String),
    /// The request exceeded the service's per-request time budget and was
    /// rejected with a typed frame instead of being silently dropped.
    Timeout(String),
    /// Loading a startup artifact failed.
    Store(deepn_store::StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "service io error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::Remote(m) => write!(f, "service-side failure: {m}"),
            ServeError::Busy(m) => write!(f, "service over capacity: {m}"),
            ServeError::Timeout(m) => write!(f, "request deadline exceeded: {m}"),
            ServeError::Store(e) => write!(f, "artifact error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<deepn_store::StoreError> for ServeError {
    fn from(e: deepn_store::StoreError) -> Self {
        // Truncation inside a protocol payload is a peer fault, not a
        // filesystem one.
        match e {
            deepn_store::StoreError::Io(io) => ServeError::Io(io),
            other => ServeError::Protocol(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<ServeError>();
        assert!(ServeError::Protocol("x".into()).to_string().contains("x"));
    }
}
