//! Blocking client for the compression service.

use crate::protocol::{self, Opcode, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_TIMEOUT};
use crate::{ServeError, StatsSnapshot};
use deepn_codec::RgbImage;
use deepn_store::{ByteReader, ByteWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connection to a running [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to the service.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects, retrying until `timeout` elapses — for scripts that start
    /// the service as a separate process and must wait for the socket.
    ///
    /// # Errors
    ///
    /// The last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// One request/reply round trip; returns the ok-payload.
    fn call(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(op as u8);
        body.extend_from_slice(payload);
        protocol::write_frame(&mut self.stream, &body)?;
        let reply = protocol::read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("service closed the connection".into()))?;
        let (&status, payload) = reply
            .split_first()
            .ok_or_else(|| ServeError::Protocol("empty reply frame".into()))?;
        if status == STATUS_OK {
            return Ok(payload.to_vec());
        }
        let mut r = ByteReader::new(payload);
        let message = r.string()?;
        Err(match status {
            STATUS_BUSY => ServeError::Busy(message),
            STATUS_TIMEOUT => ServeError::Timeout(message),
            STATUS_ERR => ServeError::Remote(message),
            other => ServeError::Protocol(format!("unknown reply status {other}: {message}")),
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Ping, &[])?;
        Ok(())
    }

    /// Compresses a batch of images with the service's tables, returning
    /// one JFIF stream per image, in order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn encode_batch(&mut self, images: &[RgbImage]) -> Result<Vec<Vec<u8>>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(images.len());
        for img in images {
            protocol::put_image(&mut w, img);
        }
        let reply = self.call(Opcode::EncodeBatch, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(protocol::get_blob(&mut r)?);
        }
        Ok(out)
    }

    /// Decompresses a batch of JFIF streams, returning the images in
    /// order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn decode_batch(&mut self, streams: &[Vec<u8>]) -> Result<Vec<RgbImage>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(streams.len());
        for s in streams {
            protocol::put_blob(&mut w, s);
        }
        let reply = self.call(Opcode::DecodeBatch, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(protocol::get_image(&mut r)?);
        }
        Ok(out)
    }

    /// Classifies a batch of images with the service's model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] if the service has no model; socket or
    /// protocol errors otherwise.
    pub fn classify(&mut self, images: &[RgbImage]) -> Result<Vec<usize>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(images.len());
        for img in images {
            protocol::put_image(&mut w, img);
        }
        let reply = self.call(Opcode::Classify, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.u32()? as usize);
        }
        Ok(out)
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        let reply = self.call(Opcode::Stats, &[])?;
        let mut r = ByteReader::new(&reply);
        Ok(StatsSnapshot {
            requests: r.u64()?,
            images_encoded: r.u64()?,
            images_decoded: r.u64()?,
            images_classified: r.u64()?,
            connections_rejected: r.u64()?,
            requests_timed_out: r.u64()?,
            active_connections: r.u32()?,
            workers: r.u32()?,
            queue_depth: r.u32()?,
            max_connections: r.u32()?,
            request_timeout_ms: r.u64()?,
            has_model: r.u8()? != 0,
        })
    }

    /// Asks the service to exit after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Shutdown, &[])?;
        Ok(())
    }
}
