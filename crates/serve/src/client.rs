//! Blocking client for the compression service.
//!
//! A [`Client`] holds **one persistent TCP connection** and reuses it
//! across requests. When the pooled connection turns out to be dead at the
//! next request (service restart, an idle reap, the close that follows a
//! busy rejection), the client transparently reconnects once and replays
//! the request — safe because every service op is idempotent. A failure
//! *after* reply bytes started arriving is never replayed.

use crate::protocol::{self, Opcode, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_TIMEOUT};
use crate::{ServeError, StatsSnapshot};
use deepn_codec::stream::{strip_count_for, strip_rows_for};
use deepn_codec::RgbImage;
use deepn_store::{ByteReader, ByteWriter};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connection to a running [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl Client {
    /// Connects to the service. The connection persists across requests;
    /// see the module docs for the reconnect contract.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            addr,
            stream: Some(stream),
        })
    }

    /// Connects, retrying until `timeout` elapses — for scripts that start
    /// the service as a separate process and must wait for the socket.
    ///
    /// # Errors
    ///
    /// The last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// The connection, re-established first if a previous request tore it
    /// down.
    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ServeError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("connection just established"))
    }

    /// Whether an error means "the pooled connection was already dead" —
    /// the only case a request is transparently replayed on a fresh one.
    /// Deliberately excludes `UnexpectedEof`: a frame that ends mid-body
    /// means reply bytes already arrived, and a request whose reply
    /// started is never replayed.
    fn is_stale_connection(e: &ServeError) -> bool {
        match e {
            ServeError::Io(io) => matches!(
                io.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
            ),
            ServeError::Protocol(m) => m == CLOSED_BEFORE_REPLY,
            _ => false,
        }
    }

    /// One request/reply exchange on the current connection; tears the
    /// connection down on any transport failure so the next request starts
    /// clean.
    fn exchange(&mut self, body: &[u8]) -> Result<Vec<u8>, ServeError> {
        let result = self.exchange_inner(body);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn exchange_inner(&mut self, body: &[u8]) -> Result<Vec<u8>, ServeError> {
        let stream = self.ensure_connected()?;
        protocol::write_frame(stream, body)?;
        protocol::read_frame(stream)?
            .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))
    }

    /// One request/reply round trip with transparent one-shot reconnect;
    /// returns the ok-payload.
    fn call(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(op as u8);
        body.extend_from_slice(payload);
        let reply = match self.exchange(&body) {
            Err(e) if Self::is_stale_connection(&e) => self.exchange(&body)?,
            other => other?,
        };
        parse_reply(reply)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Ping, &[])?;
        Ok(())
    }

    /// Compresses a batch of images with the service's tables, returning
    /// one JFIF stream per image, in order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn encode_batch(&mut self, images: &[RgbImage]) -> Result<Vec<Vec<u8>>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(images.len());
        for img in images {
            protocol::put_image(&mut w, img);
        }
        let reply = self.call(Opcode::EncodeBatch, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(protocol::get_blob(&mut r)?);
        }
        Ok(out)
    }

    /// Decompresses a batch of JFIF streams, returning the images in
    /// order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn decode_batch(&mut self, streams: &[Vec<u8>]) -> Result<Vec<RgbImage>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(streams.len());
        for s in streams {
            protocol::put_blob(&mut w, s);
        }
        let reply = self.call(Opcode::DecodeBatch, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(protocol::get_image(&mut r)?);
        }
        Ok(out)
    }

    /// Classifies a batch of images with the service's model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] if the service has no model; socket or
    /// protocol errors otherwise.
    pub fn classify(&mut self, images: &[RgbImage]) -> Result<Vec<usize>, ServeError> {
        let mut w = ByteWriter::new();
        w.put_len(images.len());
        for img in images {
            protocol::put_image(&mut w, img);
        }
        let reply = self.call(Opcode::Classify, w.as_bytes())?;
        let mut r = ByteReader::new(&reply);
        let n = r.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(r.u32()? as usize);
        }
        Ok(out)
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        let reply = self.call(Opcode::Stats, &[])?;
        let mut r = ByteReader::new(&reply);
        Ok(StatsSnapshot {
            requests: r.u64()?,
            images_encoded: r.u64()?,
            images_decoded: r.u64()?,
            images_classified: r.u64()?,
            connections_rejected: r.u64()?,
            requests_timed_out: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            active_connections: r.u32()?,
            workers: r.u32()?,
            queue_depth: r.u32()?,
            max_connections: r.u32()?,
            request_timeout_ms: r.u64()?,
            has_model: r.u8()? != 0,
        })
    }

    /// Fetches the service counters as Prometheus text-format metrics.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let reply = self.call(Opcode::Metrics, &[])?;
        let mut r = ByteReader::new(&reply);
        Ok(r.string()?)
    }

    /// Begins a streaming compression of a `width` × `height` image: feed
    /// raw RGB rows with [`StreamCompression::send_strip`], then collect
    /// the JFIF stream from [`StreamCompression::finish`]. Neither side
    /// ever buffers more than a strip of pixels.
    ///
    /// # Errors
    ///
    /// Socket errors from sending the begin frame.
    pub fn begin_compress_stream(
        &mut self,
        width: usize,
        height: usize,
    ) -> Result<StreamCompression<'_>, ServeError> {
        // A dead pooled connection would not surface on the begin-frame
        // write (the first write to a closed socket usually lands in the
        // local buffer) but only once strips start failing — and a
        // mid-stream session is not replayable. Probe with a ping, which
        // carries the transparent reconnect, so the session opens on a
        // connection known to be live.
        self.ping()?;
        let mut w = ByteWriter::new();
        w.put_u8(Opcode::CompressStream as u8);
        w.put_u32(width as u32);
        w.put_u32(height as u32);
        self.send_frame(w.as_bytes())?;
        Ok(StreamCompression {
            client: self,
            width,
            height,
            sent: 0,
            strip_count: strip_count_for(height),
        })
    }

    /// Writes one frame on the current connection, tearing it down on
    /// failure.
    fn send_frame(&mut self, body: &[u8]) -> Result<(), ServeError> {
        let result = {
            let stream = self.ensure_connected()?;
            protocol::write_frame(stream, body)
        };
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Reads one reply frame on the current connection, tearing it down on
    /// failure.
    fn recv_reply(&mut self) -> Result<Vec<u8>, ServeError> {
        let result = self.recv_reply_inner();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn recv_reply_inner(&mut self) -> Result<Vec<u8>, ServeError> {
        let stream = self.ensure_connected()?;
        protocol::read_frame(stream)?
            .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))
    }

    /// Asks the service to exit after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Shutdown, &[])?;
        Ok(())
    }
}

const CLOSED_BEFORE_REPLY: &str = "service closed the connection";

/// Splits a reply frame into its status byte and payload, mapping non-ok
/// statuses to their typed errors.
fn parse_reply(reply: Vec<u8>) -> Result<Vec<u8>, ServeError> {
    let (&status, payload) = reply
        .split_first()
        .ok_or_else(|| ServeError::Protocol("empty reply frame".into()))?;
    if status == STATUS_OK {
        return Ok(payload.to_vec());
    }
    let mut r = ByteReader::new(payload);
    let message = r.string()?;
    Err(match status {
        STATUS_BUSY => ServeError::Busy(message),
        STATUS_TIMEOUT => ServeError::Timeout(message),
        STATUS_ERR => ServeError::Remote(message),
        other => ServeError::Protocol(format!("unknown reply status {other}: {message}")),
    })
}

/// An in-flight [`Client::begin_compress_stream`] session.
#[derive(Debug)]
pub struct StreamCompression<'c> {
    client: &'c mut Client,
    width: usize,
    height: usize,
    sent: usize,
    strip_count: usize,
}

impl StreamCompression<'_> {
    /// Number of strips the session must send.
    pub fn strip_count(&self) -> usize {
        self.strip_count
    }

    /// Rows the strip at `index` must carry (8, except a shorter final
    /// strip).
    ///
    /// # Panics
    ///
    /// Panics if `index >= strip_count()`.
    pub fn strip_rows(&self, index: usize) -> usize {
        strip_rows_for(self.height, index)
    }

    /// Sends the next strip's raw interleaved RGB rows, top to bottom.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a mis-sized strip or one past the last;
    /// socket errors otherwise (a service-side rejection frame, when one
    /// is pending, is surfaced in its place).
    pub fn send_strip(&mut self, rows_rgb: &[u8]) -> Result<(), ServeError> {
        if self.sent == self.strip_count {
            return Err(ServeError::Protocol(format!(
                "all {} strips already sent",
                self.strip_count
            )));
        }
        let expected = self.strip_rows(self.sent) * self.width * 3;
        if rows_rgb.len() != expected {
            return Err(ServeError::Protocol(format!(
                "strip {}: {} bytes, expected {expected}",
                self.sent,
                rows_rgb.len()
            )));
        }
        // Write on the held stream directly — not through `send_frame`,
        // whose teardown-on-error would discard the stream before any
        // pending rejection frame could be read back.
        let write_result = match self.client.stream.as_mut() {
            Some(stream) => protocol::write_frame(stream, rows_rgb),
            None => Err(ServeError::Protocol(
                "stream session's connection is gone".into(),
            )),
        };
        if let Err(e) = write_result {
            return Err(self.surface_pending_rejection(e));
        }
        self.sent += 1;
        Ok(())
    }

    /// Collects the complete JFIF stream after the last strip.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if strips are missing; socket, protocol,
    /// or service-side errors otherwise.
    pub fn finish(self) -> Result<Vec<u8>, ServeError> {
        if self.sent != self.strip_count {
            return Err(ServeError::Protocol(format!(
                "finish after {}/{} strips",
                self.sent, self.strip_count
            )));
        }
        let reply = self.client.recv_reply()?;
        let payload = parse_reply(reply)?;
        let mut r = ByteReader::new(&payload);
        protocol::get_blob(&mut r)
    }

    /// Whether every strip has been sent (the reply is ready to collect).
    pub fn is_complete(&self) -> bool {
        self.sent == self.strip_count
    }

    /// A send failure mid-stream usually means the service already wrote a
    /// typed rejection (timeout, shutdown) and closed; prefer surfacing
    /// that frame over the raw socket error.
    fn surface_pending_rejection(&mut self, send_error: ServeError) -> ServeError {
        if let Some(stream) = self.client.stream.as_mut() {
            // Bounded: a closed peer answers immediately; a wedged one
            // must not hang the error path.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            if let Ok(Some(reply)) = protocol::read_frame(stream) {
                if let Err(typed) = parse_reply(reply) {
                    self.client.stream = None;
                    return typed;
                }
            }
        }
        self.client.stream = None;
        send_error
    }
}

impl Drop for StreamCompression<'_> {
    fn drop(&mut self) {
        // An abandoned session leaves the service mid-stream, where it
        // would misread the client's next request frame as a strip. Tear
        // the connection down so the service unblocks (peer-closed) and
        // the client's next call transparently opens a fresh one.
        if self.sent != self.strip_count {
            self.client.stream = None;
        }
    }
}
