//! Blocking client for the compression service.
//!
//! A [`Client`] holds **one persistent TCP connection** and reuses it
//! across requests. When the pooled connection turns out to be dead at the
//! next request (service restart, an idle reap, the close that follows a
//! busy rejection), the client transparently reconnects once and replays
//! the request — safe because every service op is idempotent. A failure
//! *after* reply bytes started arriving is never replayed.
//!
//! Three request shapes share the connection:
//!
//! - **Request/response** ([`Client::ping`], [`Client::encode_batch`],
//!   ...): one frame out, one frame back.
//! - **Streamed exchanges** ([`Client::begin_compress_stream`],
//!   [`Client::begin_decompress_stream`]): pixel strips travel as
//!   individual frames so neither side materializes a whole image.
//! - **Pipelined requests** ([`Client::pipeline`]): a bounded window of
//!   request/response ops kept in flight at once. The service handles a
//!   connection's requests strictly in order, so replies sequence
//!   themselves; the [`Pipeline`] applies backpressure when the window is
//!   full and extends reconnect+replay to the whole unacknowledged window.

use crate::protocol::{self, Opcode, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_TIMEOUT};
use crate::{ServeError, StatsSnapshot};
use deepn_codec::stream::{strip_count_for, strip_rows_for};
use deepn_codec::{PixelStrip, RgbImage};
use deepn_store::{ByteReader, ByteWriter};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A connection to a running [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Whether the *current* connection negotiated tagged framing
    /// (protocol v2). Reset on every fresh connection, before the
    /// negotiation that may set it again.
    tagged: bool,
    /// Whether (re)connections should negotiate tagged framing. Sticky
    /// across reconnects — set by [`Client::upgrade_tagged`], cleared
    /// when the service denies the feature.
    want_tagged: bool,
    /// `Hello` negotiations performed, one per (re)connect in tagged
    /// mode; load generators fold these into server-side request
    /// reconciliation.
    hellos_sent: u64,
    /// Extra service-counted requests created by splitting batch
    /// requests across tags in pipelines (`parts − 1` per split batch);
    /// the reconciliation twin of [`Client::hellos_sent`].
    split_requests: u64,
    /// Request bodies re-sent by the reconnect+replay machinery (one per
    /// replayed frame, across the one-shot, v1-pipeline, and tagged
    /// paths). A front end counts the replayed copy as a fresh request,
    /// so load generators fold these into reconciliation like
    /// [`Client::hellos_sent`].
    replays: u64,
    /// Table fingerprint advertised in `Hello` (0 = none): a sharded
    /// front end routes the connection by it so per-backend caches stay
    /// hot. See `docs/SHARDING.md`.
    table_fingerprint: u64,
    /// Next request tag. Monotone, so tags are unique among in-flight
    /// requests by construction.
    next_tag: u32,
}

impl Client {
    /// Connects to the service. The connection persists across requests;
    /// see the module docs for the reconnect contract.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(Client {
            addr,
            stream: Some(stream),
            tagged: false,
            want_tagged: false,
            hellos_sent: 0,
            split_requests: 0,
            replays: 0,
            table_fingerprint: 0,
            next_tag: 0,
        })
    }

    /// Connects, retrying until `timeout` elapses — for scripts that start
    /// the service as a separate process and must wait for the socket.
    ///
    /// # Errors
    ///
    /// The last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> Result<Self, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// The connection, re-established first if a previous request tore it
    /// down. A fresh connection re-runs the `Hello` negotiation when
    /// tagged framing was requested, so the upgrade survives reconnects.
    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ServeError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.tagged = false;
            if self.want_tagged {
                self.negotiate_tagged()?;
            }
        }
        match self.stream.as_mut() {
            Some(stream) => Ok(stream),
            None => Err(ServeError::Protocol(
                "connection slot empty after connect".into(),
            )),
        }
    }

    /// Requests tagged framing (protocol v2) on this client: negotiates
    /// on the current connection immediately and on every reconnect
    /// after. Returns whether the service granted the feature — a denial
    /// (an old service answers `Hello` with a typed error) degrades the
    /// client to v1 cleanly and stops it from re-asking.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors from the negotiation exchange itself.
    pub fn upgrade_tagged(&mut self) -> Result<bool, ServeError> {
        self.want_tagged = true;
        if self.stream.is_none() {
            self.ensure_connected().map(|_| ())?;
        } else if !self.tagged {
            self.negotiate_tagged()?;
        }
        if !self.tagged {
            self.want_tagged = false;
        }
        Ok(self.tagged)
    }

    /// Whether the current connection operates in tagged framing.
    pub fn is_tagged(&self) -> bool {
        self.stream.is_some() && self.tagged
    }

    /// `Hello` negotiations this client has performed — one per
    /// (re)connect while tagged framing is requested. Load generators
    /// add these to the expected server-side request count.
    pub fn hellos_sent(&self) -> u64 {
        self.hellos_sent
    }

    /// Extra service-counted requests created by tag-splitting batch
    /// requests in pipelines — `parts − 1` per split batch, since the
    /// client tallies the whole batch as one outcome. Load generators
    /// add these to the expected server-side request count, like
    /// [`Client::hellos_sent`].
    pub fn split_requests(&self) -> u64 {
        self.split_requests
    }

    /// Request bodies re-sent by reconnect+replay — one per replayed
    /// frame across the one-shot, v1-pipeline, and tagged recovery
    /// paths. A sharded front end counts each replayed copy as a fresh
    /// forwarded request, so load generators add these to the expected
    /// fleet-side request count (see `docs/SHARDING.md`).
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Sets the table fingerprint advertised in every subsequent `Hello`
    /// negotiation (0 clears it). A sharded front end uses it as the
    /// consistent-hashing key so connections working one table land on
    /// the backend whose caches already hold it; a plain server ignores
    /// the trailing field.
    pub fn set_table_fingerprint(&mut self, fingerprint: u64) {
        self.table_fingerprint = fingerprint;
    }

    /// One `Hello` exchange on the live connection. Leaves `self.tagged`
    /// reflecting the grant; a typed service-side error (an old service
    /// that does not know the opcode) degrades to v1 instead of failing.
    fn negotiate_tagged(&mut self) -> Result<(), ServeError> {
        let result = (|| {
            let Some(stream) = self.stream.as_mut() else {
                return Err(ServeError::Protocol(
                    "negotiation needs a live connection".into(),
                ));
            };
            let mut w = ByteWriter::new();
            w.put_u8(Opcode::Hello as u8);
            w.put_u32(protocol::FEATURE_TAGGED);
            if self.table_fingerprint != 0 {
                // Optional trailing routing hint (append-only field): a
                // sharded front end reads it, a plain server ignores it.
                w.put_u64(self.table_fingerprint);
            }
            protocol::write_frame(stream, w.as_bytes())?;
            self.hellos_sent += 1;
            let reply = protocol::read_frame(stream)?
                .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
            match parse_reply(reply) {
                Ok(payload) => {
                    let granted = ByteReader::new(&payload).u32().unwrap_or(0);
                    self.tagged = granted & protocol::FEATURE_TAGGED != 0;
                    Ok(())
                }
                // An old service answers `Hello` with a typed error
                // (unknown opcode): degrade to v1 on the same, still
                // frame-aligned connection.
                Err(ServeError::Remote(_)) => {
                    self.tagged = false;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        })();
        if result.is_err() {
            self.stream = None;
            self.tagged = false;
        }
        result
    }

    /// Hands out the next request tag.
    fn take_tag(&mut self) -> u32 {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        tag
    }

    /// Whether an error means "the pooled connection was already dead" —
    /// the only case a request is transparently replayed on a fresh one.
    /// Deliberately excludes `UnexpectedEof`: a frame that ends mid-body
    /// means reply bytes already arrived, and a request whose reply
    /// started is never replayed.
    fn is_stale_connection(e: &ServeError) -> bool {
        match e {
            ServeError::Io(io) => matches!(
                io.kind(),
                io::ErrorKind::BrokenPipe
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::NotConnected
            ),
            ServeError::Protocol(m) => m == CLOSED_BEFORE_REPLY,
            _ => false,
        }
    }

    /// One request/reply exchange on the current connection; tears the
    /// connection down on any transport failure so the next request starts
    /// clean.
    fn exchange(&mut self, body: &[u8]) -> Result<Vec<u8>, ServeError> {
        let result = self.exchange_inner(body);
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn exchange_inner(&mut self, body: &[u8]) -> Result<Vec<u8>, ServeError> {
        self.ensure_connected().map(|_| ())?;
        if self.tagged {
            // One-shot call on a tagged connection: wrap the request in a
            // tag and verify the echo. (A lone request cannot come back
            // out of order, but the framing must still match the mode.)
            let tag = self.take_tag();
            let Some(stream) = self.stream.as_mut() else {
                return Err(ServeError::Protocol("connection slot empty".into()));
            };
            protocol::write_tagged_frame(stream, tag, body)?;
            let mut reply = protocol::read_frame(stream)?
                .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
            let (echoed, _) = protocol::split_tagged(&reply)?;
            if echoed != tag {
                return Err(ServeError::Protocol(format!(
                    "reply tag {echoed} does not match request tag {tag}"
                )));
            }
            reply.drain(..4);
            return Ok(reply);
        }
        let Some(stream) = self.stream.as_mut() else {
            return Err(ServeError::Protocol("connection slot empty".into()));
        };
        protocol::write_frame(stream, body)?;
        protocol::read_frame(stream)?
            .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))
    }

    /// One request/reply round trip with transparent one-shot reconnect;
    /// returns the ok-payload.
    fn call(&mut self, op: Opcode, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(op as u8);
        body.extend_from_slice(payload);
        let reply = match self.exchange(&body) {
            Err(e) if Self::is_stale_connection(&e) => {
                self.replays += 1;
                self.exchange(&body)?
            }
            other => other?,
        };
        parse_reply(reply)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Ping, &[])?;
        Ok(())
    }

    /// Compresses a batch of images with the service's tables, returning
    /// one JFIF stream per image, in order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn encode_batch(&mut self, images: &[RgbImage]) -> Result<Vec<Vec<u8>>, ServeError> {
        let reply = self.call(Opcode::EncodeBatch, &image_batch_payload(images))?;
        parse_blob_list(&mut ByteReader::new(&reply))
    }

    /// Decompresses a batch of JFIF streams, returning the images in
    /// order.
    ///
    /// # Errors
    ///
    /// Socket, protocol, or service-side codec errors.
    pub fn decode_batch(&mut self, streams: &[Vec<u8>]) -> Result<Vec<RgbImage>, ServeError> {
        let reply = self.call(Opcode::DecodeBatch, &blob_batch_payload(streams))?;
        parse_image_list(&mut ByteReader::new(&reply))
    }

    /// Classifies a batch of images with the service's model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] if the service has no model; socket or
    /// protocol errors otherwise.
    pub fn classify(&mut self, images: &[RgbImage]) -> Result<Vec<usize>, ServeError> {
        let reply = self.call(Opcode::Classify, &image_batch_payload(images))?;
        parse_label_list(&mut ByteReader::new(&reply))
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        let reply = self.call(Opcode::Stats, &[])?;
        parse_stats(&mut ByteReader::new(&reply))
    }

    /// Fetches the service counters as Prometheus text-format metrics.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let reply = self.call(Opcode::Metrics, &[])?;
        let mut r = ByteReader::new(&reply);
        Ok(r.string()?)
    }

    /// Begins a streaming compression of a `width` × `height` image: feed
    /// raw RGB rows with [`StreamCompression::send_strip`], then collect
    /// the JFIF stream from [`StreamCompression::finish`]. Neither side
    /// ever buffers more than a strip of pixels.
    ///
    /// # Errors
    ///
    /// Socket errors from sending the begin frame.
    pub fn begin_compress_stream(
        &mut self,
        width: usize,
        height: usize,
    ) -> Result<StreamCompression<'_>, ServeError> {
        // The streamed exchanges are defined only for v1 framing: the
        // service rejects them inside a tagged window with the same typed
        // error, so fail fast client-side rather than round-tripping.
        if self.want_tagged {
            return Err(ServeError::Protocol(
                "streaming ops are not available on a tagged connection; \
                 open an untagged (v1) connection"
                    .into(),
            ));
        }
        // A dead pooled connection would not surface on the begin-frame
        // write (the first write to a closed socket usually lands in the
        // local buffer) but only once strips start failing — and a
        // mid-stream session is not replayable. Probe with a ping, which
        // carries the transparent reconnect, so the session opens on a
        // connection known to be live.
        self.ping()?;
        let mut w = ByteWriter::new();
        w.put_u8(Opcode::CompressStream as u8);
        w.put_u32(width as u32);
        w.put_u32(height as u32);
        self.send_frame(w.as_bytes())?;
        Ok(StreamCompression {
            client: self,
            width,
            height,
            sent: 0,
            strip_count: strip_count_for(height),
        })
    }

    /// Begins a streaming decompression of a complete JFIF stream: the
    /// service decodes it and frames the pixels back one 8-row strip at a
    /// time, collected with [`StreamDecompression::next_strip`]. The
    /// decoded image is never materialized on either side.
    ///
    /// # Errors
    ///
    /// Socket errors; [`ServeError::Remote`] when the stream's headers do
    /// not parse service-side.
    pub fn begin_decompress_stream(
        &mut self,
        jfif: &[u8],
    ) -> Result<StreamDecompression<'_>, ServeError> {
        // Defined only for v1 framing — see `begin_compress_stream`.
        if self.want_tagged {
            return Err(ServeError::Protocol(
                "streaming ops are not available on a tagged connection; \
                 open an untagged (v1) connection"
                    .into(),
            ));
        }
        // Same liveness probe as `begin_compress_stream`: a mid-stream
        // session is not replayable, so open it on a connection known to
        // be live.
        self.ping()?;
        let mut w = ByteWriter::new();
        w.put_u8(Opcode::DecompressStream as u8);
        protocol::put_blob(&mut w, jfif);
        self.send_frame(w.as_bytes())?;
        let begin = parse_reply(self.recv_reply()?)?;
        let mut r = ByteReader::new(&begin);
        let width = r.u32()? as usize;
        let height = r.u32()? as usize;
        if width == 0 || height == 0 {
            self.stream = None;
            return Err(ServeError::Protocol(format!(
                "service announced an empty {width}x{height} image"
            )));
        }
        Ok(StreamDecompression {
            client: self,
            width,
            height,
            received: 0,
            strip_count: strip_count_for(height),
            failed: false,
        })
    }

    /// Opens a pipelined request window on this client's connection: up to
    /// `window` request/response ops stay in flight at once (a `window` of
    /// 0 is treated as 1, plain request/response). Submitting into a full
    /// window blocks until the oldest reply is read back — backpressure,
    /// not unbounded buffering.
    pub fn pipeline(&mut self, window: usize) -> Pipeline<'_> {
        // The pipeline's framing mode is fixed at open: tagged when the
        // upgrade is requested (every part-send re-verifies the grant
        // after a reconnect), v1 otherwise.
        let tagged = self.want_tagged;
        Pipeline {
            client: self,
            window: window.max(1),
            inflight: VecDeque::new(),
            prefetched: VecDeque::new(),
            ready: VecDeque::new(),
            replay_armed: true,
            tagged,
            entries: VecDeque::new(),
            unacked: 0,
        }
    }

    /// Writes one frame on the current connection, tearing it down on
    /// failure.
    fn send_frame(&mut self, body: &[u8]) -> Result<(), ServeError> {
        let result = {
            let stream = self.ensure_connected()?;
            protocol::write_frame(stream, body)
        };
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Reads one reply frame on the current connection, tearing it down on
    /// failure.
    fn recv_reply(&mut self) -> Result<Vec<u8>, ServeError> {
        let result = self.recv_reply_inner();
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    fn recv_reply_inner(&mut self) -> Result<Vec<u8>, ServeError> {
        let stream = self.ensure_connected()?;
        protocol::read_frame(stream)?
            .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))
    }

    /// Asks the service to exit after acknowledging.
    ///
    /// # Errors
    ///
    /// Socket or protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.call(Opcode::Shutdown, &[])?;
        Ok(())
    }
}

const CLOSED_BEFORE_REPLY: &str = "service closed the connection";

/// Splits a reply frame into its status byte and payload, mapping non-ok
/// statuses to their typed errors.
fn parse_reply(reply: Vec<u8>) -> Result<Vec<u8>, ServeError> {
    let (&status, payload) = reply
        .split_first()
        .ok_or_else(|| ServeError::Protocol("empty reply frame".into()))?;
    if status == STATUS_OK {
        return Ok(payload.to_vec());
    }
    let mut r = ByteReader::new(payload);
    let message = r.string()?;
    Err(match status {
        STATUS_BUSY => ServeError::Busy(message),
        STATUS_TIMEOUT => ServeError::Timeout(message),
        STATUS_ERR => ServeError::Remote(message),
        other => ServeError::Protocol(format!("unknown reply status {other}: {message}")),
    })
}

/// Marshals a request payload of counted images.
fn image_batch_payload(images: &[RgbImage]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(images.len());
    for img in images {
        protocol::put_image(&mut w, img);
    }
    w.into_bytes()
}

/// Marshals a request payload of counted byte blobs.
fn blob_batch_payload(blobs: &[Vec<u8>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_len(blobs.len());
    for b in blobs {
        protocol::put_blob(&mut w, b);
    }
    w.into_bytes()
}

/// Parses an `EncodeBatch` ok-payload: a counted list of blobs.
fn parse_blob_list(r: &mut ByteReader<'_>) -> Result<Vec<Vec<u8>>, ServeError> {
    let n = r.len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(protocol::get_blob(r)?);
    }
    Ok(out)
}

/// Parses a `DecodeBatch` ok-payload: a counted list of images.
fn parse_image_list(r: &mut ByteReader<'_>) -> Result<Vec<RgbImage>, ServeError> {
    let n = r.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(protocol::get_image(r)?);
    }
    Ok(out)
}

/// Parses a `Classify` ok-payload: a counted list of `u32` labels.
fn parse_label_list(r: &mut ByteReader<'_>) -> Result<Vec<usize>, ServeError> {
    let n = r.len(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()? as usize);
    }
    Ok(out)
}

/// Parses a `Stats` ok-payload.
fn parse_stats(r: &mut ByteReader<'_>) -> Result<StatsSnapshot, ServeError> {
    Ok(StatsSnapshot {
        requests: r.u64()?,
        images_encoded: r.u64()?,
        images_decoded: r.u64()?,
        images_classified: r.u64()?,
        connections_rejected: r.u64()?,
        requests_timed_out: r.u64()?,
        bytes_in: r.u64()?,
        bytes_out: r.u64()?,
        active_connections: r.u32()?,
        workers: r.u32()?,
        queue_depth: r.u32()?,
        max_connections: r.u32()?,
        request_timeout_ms: r.u64()?,
        has_model: r.u8()? != 0,
        // Trailing fields, absent (0) when the service predates them —
        // how the `Stats` payload grows without breaking old parsers.
        tagged_connections: if r.remaining() >= 8 { r.u64()? } else { 0 },
        tagged_requests: if r.remaining() >= 8 { r.u64()? } else { 0 },
    })
}

/// An in-flight [`Client::begin_compress_stream`] session.
#[derive(Debug)]
pub struct StreamCompression<'c> {
    client: &'c mut Client,
    width: usize,
    height: usize,
    sent: usize,
    strip_count: usize,
}

impl StreamCompression<'_> {
    /// Number of strips the session must send.
    pub fn strip_count(&self) -> usize {
        self.strip_count
    }

    /// Rows the strip at `index` must carry (8, except a shorter final
    /// strip).
    ///
    /// # Panics
    ///
    /// Panics if `index >= strip_count()`.
    pub fn strip_rows(&self, index: usize) -> usize {
        strip_rows_for(self.height, index)
    }

    /// Sends the next strip's raw interleaved RGB rows, top to bottom.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a mis-sized strip or one past the last;
    /// socket errors otherwise (a service-side rejection frame, when one
    /// is pending, is surfaced in its place).
    pub fn send_strip(&mut self, rows_rgb: &[u8]) -> Result<(), ServeError> {
        if self.sent == self.strip_count {
            return Err(ServeError::Protocol(format!(
                "all {} strips already sent",
                self.strip_count
            )));
        }
        let expected = self.strip_rows(self.sent) * self.width * 3;
        if rows_rgb.len() != expected {
            return Err(ServeError::Protocol(format!(
                "strip {}: {} bytes, expected {expected}",
                self.sent,
                rows_rgb.len()
            )));
        }
        // Write on the held stream directly — not through `send_frame`,
        // whose teardown-on-error would discard the stream before any
        // pending rejection frame could be read back.
        let write_result = match self.client.stream.as_mut() {
            Some(stream) => protocol::write_frame(stream, rows_rgb),
            None => Err(ServeError::Protocol(
                "stream session's connection is gone".into(),
            )),
        };
        if let Err(e) = write_result {
            return Err(self.surface_pending_rejection(e));
        }
        self.sent += 1;
        Ok(())
    }

    /// Collects the complete JFIF stream after the last strip.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if strips are missing; socket, protocol,
    /// or service-side errors otherwise.
    pub fn finish(self) -> Result<Vec<u8>, ServeError> {
        if self.sent != self.strip_count {
            return Err(ServeError::Protocol(format!(
                "finish after {}/{} strips",
                self.sent, self.strip_count
            )));
        }
        let reply = self.client.recv_reply()?;
        let payload = parse_reply(reply)?;
        let mut r = ByteReader::new(&payload);
        protocol::get_blob(&mut r)
    }

    /// Whether every strip has been sent (the reply is ready to collect).
    pub fn is_complete(&self) -> bool {
        self.sent == self.strip_count
    }

    /// A send failure mid-stream usually means the service already wrote a
    /// typed rejection (timeout, shutdown) and closed; prefer surfacing
    /// that frame over the raw socket error.
    fn surface_pending_rejection(&mut self, send_error: ServeError) -> ServeError {
        if let Some(stream) = self.client.stream.as_mut() {
            // Bounded: a closed peer answers immediately; a wedged one
            // must not hang the error path.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            if let Ok(Some(reply)) = protocol::read_frame(stream) {
                if let Err(typed) = parse_reply(reply) {
                    self.client.stream = None;
                    return typed;
                }
            }
        }
        self.client.stream = None;
        send_error
    }
}

impl Drop for StreamCompression<'_> {
    fn drop(&mut self) {
        // An abandoned session leaves the service mid-stream, where it
        // would misread the client's next request frame as a strip. Tear
        // the connection down so the service unblocks (peer-closed) and
        // the client's next call transparently opens a fresh one.
        if self.sent != self.strip_count {
            self.client.stream = None;
        }
    }
}

/// An in-flight [`Client::begin_decompress_stream`] session: the service
/// has announced the image geometry and is framing decoded pixel strips
/// back, top to bottom.
#[derive(Debug)]
pub struct StreamDecompression<'c> {
    client: &'c mut Client,
    width: usize,
    height: usize,
    received: usize,
    strip_count: usize,
    /// Set when a typed error frame ended the session early: the session
    /// is over but incomplete, and (unlike an abandonment) the connection
    /// ended on an intact frame boundary.
    failed: bool,
}

impl StreamDecompression<'_> {
    /// Decoded image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Decoded image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of strips the session will produce.
    pub fn strip_count(&self) -> usize {
        self.strip_count
    }

    /// Rows carried by the strip at `index` (8, except a shorter final
    /// strip).
    ///
    /// # Panics
    ///
    /// Panics if `index >= strip_count()`.
    pub fn strip_rows(&self, index: usize) -> usize {
        strip_rows_for(self.height, index)
    }

    /// Receives the next decoded strip into `strip`. Returns `Ok(false)`
    /// once every strip has arrived.
    ///
    /// # Errors
    ///
    /// Typed service-side errors (a mid-scan decode failure, a deadline
    /// overrun) surface as the strip they replace and end the session;
    /// socket or framing errors tear the connection down.
    pub fn next_strip(&mut self, strip: &mut PixelStrip) -> Result<bool, ServeError> {
        if self.failed || self.received == self.strip_count {
            return Ok(false);
        }
        let frame = self.client.recv_reply()?;
        let payload = match parse_reply(frame) {
            Ok(p) => p,
            Err(e) => {
                // A typed error frame replaces a strip frame on an intact
                // frame boundary: the session is over (and incomplete),
                // but the connection remains usable for the client's next
                // request.
                self.failed = true;
                return Err(e);
            }
        };
        let index = self.received;
        let rows = self.strip_rows(index);
        if let Err(e) = strip.set_rows(self.width, rows, &payload) {
            // A mis-sized strip frame breaks the exchange's contract; the
            // remaining frames can no longer be trusted, so start the next
            // request on a fresh connection.
            self.client.stream = None;
            self.failed = true;
            return Err(ServeError::Protocol(format!("strip {index}: {e}")));
        }
        self.received += 1;
        Ok(true)
    }

    /// Whether every strip has been received. `false` after a session
    /// ended early on a typed service-side error — a partially written
    /// output must not pass for a whole one.
    pub fn is_complete(&self) -> bool {
        !self.failed && self.received == self.strip_count
    }
}

impl Drop for StreamDecompression<'_> {
    fn drop(&mut self) {
        // An abandoned session leaves undelivered strip frames on the
        // wire, which the next request would misread as its reply. Tear
        // the connection down; the next call transparently reconnects. A
        // `failed` session needs no teardown: the typed error frame
        // already ended the exchange on an intact frame boundary.
        if !self.failed && self.received != self.strip_count {
            self.client.stream = None;
        }
    }
}

/// One parsed pipelined reply, tagged by the op that produced it. Replies
/// always come back in submission order.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineReply {
    /// Reply to [`Pipeline::submit_ping`].
    Pong,
    /// Reply to [`Pipeline::submit_encode_batch`]: one JFIF stream per
    /// image, in order.
    Encoded(Vec<Vec<u8>>),
    /// Reply to [`Pipeline::submit_decode_batch`]: the decoded images, in
    /// order.
    Decoded(Vec<RgbImage>),
    /// Reply to [`Pipeline::submit_classify`]: the predicted labels, in
    /// order.
    Labels(Vec<usize>),
    /// Reply to [`Pipeline::submit_stats`].
    Stats(StatsSnapshot),
    /// Reply to [`Pipeline::submit_metrics`].
    Metrics(String),
}

/// Parses a pipelined reply frame according to the op that requested it.
fn decode_pipeline_reply(op: Opcode, frame: Vec<u8>) -> Result<PipelineReply, ServeError> {
    let payload = parse_reply(frame)?;
    let mut r = ByteReader::new(&payload);
    Ok(match op {
        Opcode::Ping => PipelineReply::Pong,
        Opcode::EncodeBatch => PipelineReply::Encoded(parse_blob_list(&mut r)?),
        Opcode::DecodeBatch => PipelineReply::Decoded(parse_image_list(&mut r)?),
        Opcode::Classify => PipelineReply::Labels(parse_label_list(&mut r)?),
        Opcode::Stats => PipelineReply::Stats(parse_stats(&mut r)?),
        Opcode::Metrics => PipelineReply::Metrics(r.string()?),
        Opcode::Shutdown | Opcode::CompressStream | Opcode::DecompressStream | Opcode::Hello => {
            return Err(ServeError::Protocol(format!(
                "op {op:?} cannot be pipelined"
            )))
        }
    })
}

/// A bounded window of pipelined requests on a [`Client`]'s connection,
/// opened with [`Client::pipeline`].
///
/// Submitting is non-blocking while the window has room; once it is full,
/// the next submit first reads the oldest reply off the wire, so at most
/// `window` requests are ever outstanding on the connection
/// (backpressure against the *service*). Replies read ahead this way wait
/// in a client-side buffer until [`recv`](Pipeline::recv) — a caller that
/// submits many requests without receiving holds those parsed replies in
/// memory, so interleave `recv`/[`try_ready`](Pipeline::try_ready) with
/// submission when replies are large. `recv` returns replies strictly in
/// submission order — the service handles one connection's requests
/// serially, so no frame tagging is needed.
///
/// ## Failure semantics
///
/// Per-request failures ([`ServeError::Remote`], [`ServeError::Busy`],
/// [`ServeError::Timeout`]) are delivered by `recv` in that request's
/// position and do **not** end the pipeline. When the pooled connection
/// turns out to be dead (service restart, the close that follows a busy
/// rejection), the pipeline reconnects once and replays the *entire
/// unacknowledged window* in order — safe because every op is idempotent
/// and no reply frame of the replayed requests had started arriving. A
/// second consecutive stall without any reply in between, or any other
/// transport error ([`ServeError::Io`], [`ServeError::Protocol`]), is
/// fatal to the whole pipeline: drop it and start a fresh one.
///
/// Dropping a pipeline with requests still in flight tears the connection
/// down so their unread replies cannot poison the client's next request.
#[derive(Debug)]
pub struct Pipeline<'c> {
    client: &'c mut Client,
    window: usize,
    /// Submitted requests whose reply frame has not been consumed: the op
    /// (to parse the reply) and the full request body (to replay it).
    inflight: VecDeque<(Opcode, Vec<u8>)>,
    /// Raw reply frames read ahead of [`Pipeline::pump`] — drained off
    /// the socket while a request write was blocked on a full send
    /// buffer, so a window of large requests and large replies cannot
    /// write-write deadlock with the server (which has no write timeout
    /// either). Frame `i` here answers `inflight[i]`.
    prefetched: VecDeque<Vec<u8>>,
    /// Replies drained by backpressure before the caller asked for them.
    ready: VecDeque<Result<PipelineReply, ServeError>>,
    /// One reconnect+replay is allowed per stall; re-armed every time a
    /// reply lands (progress), so a dead service cannot loop forever.
    replay_armed: bool,
    /// Tagged (protocol v2) mode: requests carry tags, the service may
    /// answer out of order, and batches are split across tags. Fixed at
    /// [`Client::pipeline`] time.
    tagged: bool,
    /// Tagged mode's submission-order queue. Each entry is one logical
    /// request, possibly split into several tagged parts; completed
    /// entries leave from the front into `ready`.
    entries: VecDeque<TaggedEntry>,
    /// Tagged parts sent whose reply has not arrived — the quantity the
    /// window bounds.
    unacked: usize,
}

/// A tagged pipeline splits a multi-item batch across tags only above
/// this cost (pixels for encode, compressed bytes for decode). Giant
/// batches stream item replies back as they complete instead of
/// materializing the whole reply; small batches stay one frame, whose
/// single round trip is cheaper than per-item framing.
const SPLIT_BATCH_BUDGET: usize = 4096;

/// One logical tagged request: a single part for most ops, one part per
/// item for split batches (so replies stream out as items complete).
#[derive(Debug)]
struct TaggedEntry {
    op: Opcode,
    parts: Vec<TaggedPart>,
    /// Parts this entry will have once fully submitted; an entry is
    /// complete (and deliverable) only when `parts.len() == expected`
    /// and every part holds its reply.
    expected: usize,
}

impl TaggedEntry {
    fn is_complete(&self) -> bool {
        self.parts.len() == self.expected && self.parts.iter().all(|p| p.reply.is_some())
    }
}

/// One tagged request frame: its tag, the v1-shaped body kept for
/// replay-after-reconnect, and the v1-shaped reply once it arrived.
#[derive(Debug)]
struct TaggedPart {
    tag: u32,
    body: Vec<u8>,
    reply: Option<Vec<u8>>,
}

impl Pipeline<'_> {
    /// The window bound this pipeline was opened with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests whose reply has not been returned by
    /// [`recv`](Pipeline::recv) yet — drain with that many `recv` calls.
    pub fn pending(&self) -> usize {
        self.inflight.len() + self.entries.len() + self.ready.len()
    }

    /// Submits a liveness probe.
    ///
    /// # Errors
    ///
    /// Fatal transport errors (see the type docs; a full window receives
    /// the oldest reply first, which can surface its transport failure
    /// here).
    pub fn submit_ping(&mut self) -> Result<(), ServeError> {
        self.submit(Opcode::Ping, &[])
    }

    /// Submits a batch compression; answered by
    /// [`PipelineReply::Encoded`].
    ///
    /// Under tagged framing a multi-image batch over the split budget
    /// is split into one tagged request per image, so the service
    /// streams compressed items back as they complete instead of
    /// materializing the whole batch reply; smaller batches stay one
    /// frame. The split is invisible here: the reply still arrives as
    /// one [`PipelineReply::Encoded`] in submission order.
    ///
    /// # Errors
    ///
    /// Fatal transport errors.
    pub fn submit_encode_batch(&mut self, images: &[RgbImage]) -> Result<(), ServeError> {
        let cost: usize = images.iter().map(|i| i.width() * i.height()).sum();
        if self.tagged && images.len() > 1 && cost > SPLIT_BATCH_BUDGET {
            let bodies = images
                .iter()
                .map(|img| {
                    let mut w = ByteWriter::new();
                    w.put_u8(Opcode::EncodeBatch as u8);
                    w.put_len(1);
                    protocol::put_image(&mut w, img);
                    w.into_bytes()
                })
                .collect();
            return self.submit_tagged_parts(Opcode::EncodeBatch, bodies);
        }
        self.submit(Opcode::EncodeBatch, &image_batch_payload(images))
    }

    /// Submits a batch decompression; answered by
    /// [`PipelineReply::Decoded`].
    ///
    /// Under tagged framing a multi-stream batch over the split budget
    /// is split into one tagged request per stream — see
    /// [`submit_encode_batch`](Pipeline::submit_encode_batch).
    ///
    /// # Errors
    ///
    /// Fatal transport errors.
    pub fn submit_decode_batch(&mut self, streams: &[Vec<u8>]) -> Result<(), ServeError> {
        let cost: usize = streams.iter().map(Vec::len).sum();
        if self.tagged && streams.len() > 1 && cost > SPLIT_BATCH_BUDGET {
            let bodies = streams
                .iter()
                .map(|blob| {
                    let mut w = ByteWriter::new();
                    w.put_u8(Opcode::DecodeBatch as u8);
                    w.put_len(1);
                    protocol::put_blob(&mut w, blob);
                    w.into_bytes()
                })
                .collect();
            return self.submit_tagged_parts(Opcode::DecodeBatch, bodies);
        }
        self.submit(Opcode::DecodeBatch, &blob_batch_payload(streams))
    }

    /// Submits a batch classification; answered by
    /// [`PipelineReply::Labels`].
    ///
    /// # Errors
    ///
    /// Fatal transport errors.
    pub fn submit_classify(&mut self, images: &[RgbImage]) -> Result<(), ServeError> {
        self.submit(Opcode::Classify, &image_batch_payload(images))
    }

    /// Submits a counters request; answered by [`PipelineReply::Stats`].
    ///
    /// # Errors
    ///
    /// Fatal transport errors.
    pub fn submit_stats(&mut self) -> Result<(), ServeError> {
        self.submit(Opcode::Stats, &[])
    }

    /// Submits a metrics request; answered by [`PipelineReply::Metrics`].
    ///
    /// # Errors
    ///
    /// Fatal transport errors.
    pub fn submit_metrics(&mut self) -> Result<(), ServeError> {
        self.submit(Opcode::Metrics, &[])
    }

    /// Pops a reply that backpressure already read off the wire, without
    /// blocking. `None` when none is buffered — more replies may still be
    /// in flight; [`recv`](Pipeline::recv) waits for those.
    pub fn try_ready(&mut self) -> Option<Result<PipelineReply, ServeError>> {
        self.ready.pop_front()
    }

    /// Returns the oldest outstanding reply, in submission order, reading
    /// it off the wire if backpressure has not already buffered it.
    ///
    /// # Errors
    ///
    /// The submitted request's own typed failure
    /// ([`ServeError::Remote`] / [`Busy`](ServeError::Busy) /
    /// [`Timeout`](ServeError::Timeout) — the pipeline continues), or a
    /// fatal transport error (see the type docs).
    pub fn recv(&mut self) -> Result<PipelineReply, ServeError> {
        if let Some(reply) = self.ready.pop_front() {
            return reply;
        }
        if self.tagged {
            if self.entries.is_empty() {
                return Err(ServeError::Protocol("no requests in flight".into()));
            }
            // Each pump consumes at least one reply frame; the front
            // entry has finitely many outstanding parts, so this
            // terminates (or surfaces a transport error).
            while self.ready.is_empty() {
                self.pump_tagged()?;
            }
            return match self.ready.pop_front() {
                Some(reply) => reply,
                None => Err(ServeError::Protocol("pipeline pumped no reply".into())),
            };
        }
        if self.inflight.is_empty() {
            return Err(ServeError::Protocol("no requests in flight".into()));
        }
        self.pump()?;
        match self.ready.pop_front() {
            Some(reply) => reply,
            None => Err(ServeError::Protocol("pipeline pumped no reply".into())),
        }
    }

    /// Submits one request, applying backpressure first when the window is
    /// full.
    fn submit(&mut self, op: Opcode, payload: &[u8]) -> Result<(), ServeError> {
        let mut body = Vec::with_capacity(1 + payload.len());
        body.push(op as u8);
        body.extend_from_slice(payload);
        if self.tagged {
            return self.submit_tagged_parts(op, vec![body]);
        }
        while self.inflight.len() >= self.window {
            self.pump()?;
        }
        if self.client.stream.is_none() && !self.inflight.is_empty() {
            // The connection died after earlier submissions: those must be
            // replayed onto the fresh connection *before* this one, or the
            // reply order no longer matches the submission order.
            self.recover(ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
        }
        match self.send_request(&body) {
            Ok(()) => {}
            Err(e) if Client::is_stale_connection(&e) => {
                self.recover(e)?;
                // The failed first write may or may not have delivered a
                // complete frame; the resend is a replay either way.
                self.client.replays += 1;
                self.send_request(&body)?;
            }
            Err(e) => return Err(e),
        }
        self.inflight.push_back((op, body));
        Ok(())
    }

    /// Writes one request frame on the current connection, draining reply
    /// frames into `prefetched` whenever the send buffer is full. Tears
    /// the connection down on failure; a partially written frame dies
    /// with it (the retry rewrites from byte 0 on a fresh connection).
    fn send_request(&mut self, body: &[u8]) -> Result<(), ServeError> {
        let outstanding = self.inflight.len() - self.prefetched.len();
        let result =
            Self::write_frame_draining(self.client, &mut self.prefetched, outstanding, None, body);
        if result.is_err() {
            self.client.stream = None;
        }
        result
    }

    /// The deadlock-free frame writer the pipeline uses: the socket is
    /// written in non-blocking chunks, and whenever the send buffer is
    /// full while `outstanding` replies may be in flight, an available
    /// reply frame is read into `prefetched` instead of blocking. Without
    /// this, a window whose requests and replies both exceed the kernel
    /// socket buffers would write-write deadlock with the server: the
    /// server blocked writing an earlier reply nobody is reading, the
    /// client blocked writing a request nobody is reading.
    fn write_frame_draining(
        client: &mut Client,
        prefetched: &mut VecDeque<Vec<u8>>,
        outstanding: usize,
        tag: Option<u32>,
        body: &[u8],
    ) -> Result<(), ServeError> {
        // A `Some` tag is framed in place (`u32 tag` prepended to the
        // body), sparing the caller an intermediate tagged-body copy.
        let tag_len = if tag.is_some() { 4 } else { 0 };
        let body_len = body.len() + tag_len;
        if body_len > protocol::MAX_FRAME {
            return Err(ServeError::Protocol(format!(
                "frame of {body_len} bytes exceeds the {} byte limit",
                protocol::MAX_FRAME
            )));
        }
        let mut frame = Vec::with_capacity(4 + body_len);
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        if let Some(tag) = tag {
            frame.extend_from_slice(&tag.to_le_bytes());
        }
        frame.extend_from_slice(body);
        // One connection for the whole frame: reconnecting mid-frame
        // would splice garbage into the new stream, so any failure below
        // surfaces instead and the caller rewrites from scratch.
        let stream = client.ensure_connected()?;
        // One nonblocking window per frame (not per chunk): the socket
        // flips back to blocking only around a drain read and before
        // returning, so callers that keep the connection never see it
        // nonblocking — even on failure, where `restored` matters because
        // `recover`'s write errors leave the stream in place for the
        // pipeline's Drop to discard.
        stream.set_nonblocking(true)?;
        let result = Self::write_draining_nonblocking(stream, prefetched, outstanding, &frame);
        let restored = stream.set_nonblocking(false);
        result?;
        restored?;
        Ok(())
    }

    /// The write loop of [`write_frame_draining`](Self::write_frame_draining);
    /// entered and left with `stream` in nonblocking mode.
    fn write_draining_nonblocking(
        stream: &mut TcpStream,
        prefetched: &mut VecDeque<Vec<u8>>,
        mut outstanding: usize,
        frame: &[u8],
    ) -> Result<(), ServeError> {
        let mut written = 0usize;
        while written < frame.len() {
            match std::io::Write::write(stream, &frame[written..]) {
                Ok(0) => {
                    return Err(ServeError::Io(io::ErrorKind::WriteZero.into()));
                }
                Ok(n) => written += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    // Send buffer full: the server may be blocked writing
                    // a reply. Drain one if it has arrived (a peek spots
                    // data or EOF; either resolves promptly); otherwise
                    // yield briefly and retry the write.
                    let available = outstanding > 0
                        && match stream.peek(&mut [0u8]) {
                            Ok(_) => true,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
                            Err(e) => return Err(e.into()),
                        };
                    if available {
                        stream.set_nonblocking(false)?;
                        let reply = protocol::read_frame(stream)?
                            .ok_or_else(|| ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
                        stream.set_nonblocking(true)?;
                        prefetched.push_back(reply);
                        outstanding -= 1;
                    } else {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reads the oldest in-flight request's reply into the ready queue,
    /// reconnecting and replaying the unacknowledged window when the
    /// pooled connection turns out to be dead.
    fn pump(&mut self) -> Result<(), ServeError> {
        debug_assert!(!self.inflight.is_empty(), "pump with requests in flight");
        if self.prefetched.is_empty() && self.client.stream.is_none() {
            // A previous failure already tore the connection down (e.g.
            // the close that follows a busy rejection): replay before
            // reading anything.
            self.recover(ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
        }
        if self.prefetched.is_empty() {
            match self.client.recv_reply() {
                Ok(frame) => self.prefetched.push_back(frame),
                Err(e) if Client::is_stale_connection(&e) => {
                    self.recover(e)?;
                    // The replay itself may have prefetched the frame.
                    if self.prefetched.is_empty() {
                        let frame = self.client.recv_reply()?;
                        self.prefetched.push_back(frame);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let Some(frame) = self.prefetched.pop_front() else {
            return Err(ServeError::Protocol("pump buffered no reply frame".into()));
        };
        // A reply landed: progress, so a future stall gets a fresh replay.
        self.replay_armed = true;
        let Some((op, _)) = self.inflight.pop_front() else {
            return Err(ServeError::Protocol(
                "pump ran with no requests in flight".into(),
            ));
        };
        self.ready.push_back(decode_pipeline_reply(op, frame));
        Ok(())
    }

    /// One-shot reconnect+replay of the unacknowledged window, in
    /// submission order. Requests whose reply frame was already prefetched
    /// are acknowledged and are **not** resent — a duplicate would earn a
    /// duplicate reply and desynchronize every later request. `cause` is
    /// surfaced unchanged when the replay budget for this stall is
    /// already spent.
    fn recover(&mut self, cause: ServeError) -> Result<(), ServeError> {
        if !self.replay_armed {
            return Err(cause);
        }
        self.replay_armed = false;
        self.client.stream = None;
        let client = &mut *self.client;
        let prefetched = &mut self.prefetched;
        let acknowledged = prefetched.len();
        for (resent, (_, body)) in self.inflight.iter().skip(acknowledged).enumerate() {
            // Replies to already-resent requests may arrive while later
            // bodies are still being written; the draining writer absorbs
            // them.
            let outstanding = resent - (prefetched.len() - acknowledged);
            Self::write_frame_draining(client, prefetched, outstanding, None, body)?;
            client.replays += 1;
        }
        Ok(())
    }
}

impl Pipeline<'_> {
    /// Submits one logical tagged request as `bodies.len()` tagged parts,
    /// applying window backpressure per part. The entry is queued first
    /// so replies to early parts can land while later parts are still
    /// being written.
    fn submit_tagged_parts(&mut self, op: Opcode, bodies: Vec<Vec<u8>>) -> Result<(), ServeError> {
        self.entries.push_back(TaggedEntry {
            op,
            parts: Vec::with_capacity(bodies.len()),
            expected: bodies.len(),
        });
        self.client.split_requests += bodies.len() as u64 - 1;
        for body in bodies {
            while self.unacked >= self.window {
                self.pump_tagged()?;
            }
            if self.client.stream.is_none() && self.unacked > 0 {
                // The connection died after earlier parts: replay them
                // onto the fresh connection before sending this one.
                self.recover_tagged(ServeError::Protocol(CLOSED_BEFORE_REPLY.into()))?;
            }
            // (Re)connect before framing, so the grant is known: a
            // service that stopped granting tagged framing must fail the
            // pipeline typed, not receive misframed bytes.
            self.client.ensure_connected().map(|_| ())?;
            if !self.client.tagged {
                return Err(ServeError::Protocol(
                    "service did not grant tagged framing; open an untagged pipeline".into(),
                ));
            }
            let tag = self.client.take_tag();
            let outstanding = self.unacked;
            let sent = Self::write_frame_draining(
                self.client,
                &mut self.prefetched,
                outstanding,
                Some(tag),
                &body,
            );
            match sent {
                Ok(()) => {
                    if let Some(entry) = self.entries.back_mut() {
                        entry.parts.push(TaggedPart {
                            tag,
                            body,
                            reply: None,
                        });
                    }
                    self.unacked += 1;
                }
                Err(e) if Client::is_stale_connection(&e) => {
                    self.client.stream = None;
                    // Park the part unacknowledged, then replay the whole
                    // unacked window (this part included) keyed by tag.
                    if let Some(entry) = self.entries.back_mut() {
                        entry.parts.push(TaggedPart {
                            tag,
                            body,
                            reply: None,
                        });
                    }
                    self.unacked += 1;
                    self.recover_tagged(e)?;
                }
                Err(e) => {
                    self.client.stream = None;
                    return Err(e);
                }
            }
            self.drain_prefetched()?;
        }
        self.finalize_ready();
        Ok(())
    }

    /// Blocks for at least one tagged reply frame (unless some are
    /// already prefetched), assigns every buffered frame to its part, and
    /// moves completed front entries into the ready queue.
    fn pump_tagged(&mut self) -> Result<(), ServeError> {
        if self.prefetched.is_empty() {
            match self.client.recv_reply() {
                Ok(frame) => self.prefetched.push_back(frame),
                Err(e) if Client::is_stale_connection(&e) => {
                    self.recover_tagged(e)?;
                    // The replay itself may have prefetched frames.
                    if self.prefetched.is_empty() {
                        let frame = self.client.recv_reply()?;
                        self.prefetched.push_back(frame);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.drain_prefetched()?;
        self.finalize_ready();
        Ok(())
    }

    /// Assigns every prefetched reply frame to its tagged part.
    fn drain_prefetched(&mut self) -> Result<(), ServeError> {
        while let Some(frame) = self.prefetched.pop_front() {
            self.accept_tagged_frame(frame)?;
        }
        Ok(())
    }

    /// Matches one tagged reply frame to the in-flight part carrying its
    /// tag. A reply with an unknown (or already-answered) tag means the
    /// framing contract broke: fatal, and the connection is discarded so
    /// the poison cannot spread to the next request.
    fn accept_tagged_frame(&mut self, mut frame: Vec<u8>) -> Result<(), ServeError> {
        let tag = match protocol::split_tagged(&frame) {
            Ok((tag, _)) => tag,
            Err(e) => {
                self.client.stream = None;
                return Err(e);
            }
        };
        // Strip the tag prefix in place; the body keeps its allocation.
        frame.drain(..4);
        let rest = frame;
        let slot = self
            .entries
            .iter_mut()
            .flat_map(|e| e.parts.iter_mut())
            .find(|p| p.tag == tag && p.reply.is_none());
        match slot {
            Some(part) => {
                part.reply = Some(rest);
                self.unacked -= 1;
                // A reply landed: progress, so a future stall gets a
                // fresh replay.
                self.replay_armed = true;
                Ok(())
            }
            None => {
                self.client.stream = None;
                Err(ServeError::Protocol(format!(
                    "reply carries unknown tag {tag}"
                )))
            }
        }
    }

    /// Delivers completed entries from the submission-order front into
    /// the ready queue. Later entries may already be complete; they wait
    /// so `recv` stays strictly in submission order.
    fn finalize_ready(&mut self) {
        while self.entries.front().is_some_and(TaggedEntry::is_complete) {
            let Some(entry) = self.entries.pop_front() else {
                return;
            };
            self.ready.push_back(assemble_entry(entry));
        }
    }

    /// Tagged-mode reconnect+replay: re-establishes the connection
    /// (which re-runs the `Hello` negotiation), then resends every part
    /// whose reply had not arrived, in submission order, keyed by its
    /// original tag. Parts already answered are not resent — a duplicate
    /// would earn a duplicate-tag error reply. Same one-replay-per-stall
    /// budget as the v1 path.
    fn recover_tagged(&mut self, cause: ServeError) -> Result<(), ServeError> {
        if !self.replay_armed {
            return Err(cause);
        }
        self.replay_armed = false;
        self.client.stream = None;
        self.client.ensure_connected().map(|_| ())?;
        if !self.client.tagged {
            return Err(ServeError::Protocol(
                "service stopped granting tagged framing; the window cannot be replayed".into(),
            ));
        }
        let unacked: Vec<Vec<u8>> = self
            .entries
            .iter()
            .flat_map(|e| e.parts.iter())
            .filter(|p| p.reply.is_none())
            .map(|p| protocol::tagged_body(p.tag, &p.body))
            .collect();
        let drained_at_start = self.prefetched.len();
        for (resent, framed) in unacked.iter().enumerate() {
            // Replies to already-resent parts may arrive while later
            // parts are still being written; the draining writer absorbs
            // them.
            let outstanding = resent - (self.prefetched.len() - drained_at_start);
            Self::write_frame_draining(
                self.client,
                &mut self.prefetched,
                outstanding,
                None,
                framed,
            )?;
            self.client.replays += 1;
        }
        Ok(())
    }
}

/// Reassembles one completed tagged entry into its logical reply. An
/// unsplit entry decodes exactly like a v1 reply; a split batch
/// concatenates its per-item replies in item order, and the first failed
/// item's typed error (in item order) fails the whole entry — delivered
/// in the entry's position, like any per-request failure.
fn assemble_entry(entry: TaggedEntry) -> Result<PipelineReply, ServeError> {
    let missing = || ServeError::Protocol("completed entry missing a part reply".into());
    if entry.expected == 1 {
        let frame = entry
            .parts
            .into_iter()
            .next()
            .and_then(|p| p.reply)
            .ok_or_else(missing)?;
        return decode_pipeline_reply(entry.op, frame);
    }
    match entry.op {
        Opcode::EncodeBatch => {
            let mut all = Vec::with_capacity(entry.parts.len());
            for part in entry.parts {
                let payload = parse_reply(part.reply.ok_or_else(missing)?)?;
                all.extend(parse_blob_list(&mut ByteReader::new(&payload))?);
            }
            Ok(PipelineReply::Encoded(all))
        }
        Opcode::DecodeBatch => {
            let mut all = Vec::with_capacity(entry.parts.len());
            for part in entry.parts {
                let payload = parse_reply(part.reply.ok_or_else(missing)?)?;
                all.extend(parse_image_list(&mut ByteReader::new(&payload))?);
            }
            Ok(PipelineReply::Decoded(all))
        }
        other => Err(ServeError::Protocol(format!(
            "op {other:?} is never split across tags"
        ))),
    }
}

impl Drop for Pipeline<'_> {
    fn drop(&mut self) {
        // Unread replies of abandoned requests would be misread as the
        // next request's reply; a fresh connection cannot have any.
        if !self.inflight.is_empty() || !self.entries.is_empty() {
            self.client.stream = None;
        }
    }
}
