//! The wire protocol: length-prefixed frames over a (localhost) TCP
//! stream, with payloads encoded by the same little-endian primitives the
//! artifact store uses.
//!
//! ```text
//! frame   := u32 body_len (LE) | body
//! request := u8 opcode | payload
//! reply   := u8 status (0 = ok, 1 = error, 2 = busy, 3 = timeout) | payload
//! ```
//!
//! Every non-ok reply's payload is a length-prefixed UTF-8 message. Batch
//! payloads carry a `u32` count followed by the items; images travel as
//! `u32 width | u32 height | width*height*3` RGB bytes, compressed
//! streams as `u32 len | bytes`.
//!
//! Requests on one connection are handled strictly in arrival order and
//! replies come back in the same order, which is what lets
//! [`crate::Pipeline`] keep a window of requests in flight without tagging
//! frames. The complete wire specification — every opcode, status byte,
//! streamed exchange, and the reconnect/replay and pipelining contracts —
//! lives in `docs/PROTOCOL.md` and is checked against this module's
//! constants by `tests/protocol_doc.rs`.

use crate::ServeError;
use deepn_codec::RgbImage;
use deepn_store::{ByteReader, ByteWriter};
use std::io::{Read, Write};

/// Upper bound on a frame body, bounding a hostile or corrupt length
/// prefix before any allocation (64 MiB fits thousands of the synthetic
/// dataset's images per batch).
pub const MAX_FRAME: usize = 64 << 20;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; echoes an empty ok.
    Ping = 0,
    /// Compress a batch of RGB images with the service's tables.
    EncodeBatch = 1,
    /// Decompress a batch of JFIF streams.
    DecodeBatch = 2,
    /// Classify a batch of RGB images with the service's model.
    Classify = 3,
    /// Report service counters.
    Stats = 4,
    /// Ask the service to stop accepting connections and exit.
    Shutdown = 5,
    /// Compress one image streamed as 8-row pixel strips: the request
    /// frame carries `u32 width | u32 height`, then one frame of raw RGB
    /// rows per strip follows (top to bottom), and the reply carries the
    /// complete JFIF stream as a blob. The service never buffers more than
    /// a strip of pixels per connection.
    CompressStream = 6,
    /// Report Prometheus-style metrics text.
    Metrics = 7,
    /// Decompress one JFIF stream with the reply streamed as 8-row pixel
    /// strips — the [`CompressStream`](Opcode::CompressStream) twin. The
    /// request frame carries the complete stream as a blob; the service
    /// answers with a begin frame (`status | u32 width | u32 height`),
    /// then one frame per strip (`status | raw RGB rows`, top to bottom).
    /// The service never materializes the decoded image: peak reply-side
    /// memory is one strip.
    DecompressStream = 8,
    /// Negotiate optional protocol features for this connection. The
    /// request payload is a `u32` bitmask of requested features; the
    /// ok-reply payload is the `u32` bitmask the service granted (always a
    /// subset). Granting [`FEATURE_TAGGED`] switches **every subsequent
    /// frame on the connection, both directions,** to tagged framing
    /// (`u32 tag` prefixed to the request/reply byte). An old server
    /// answers `Hello` with a typed error, so a new client degrades to v1
    /// cleanly.
    Hello = 9,
}

impl Opcode {
    /// Parses a request opcode byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Opcode::Ping),
            1 => Some(Opcode::EncodeBatch),
            2 => Some(Opcode::DecodeBatch),
            3 => Some(Opcode::Classify),
            4 => Some(Opcode::Stats),
            5 => Some(Opcode::Shutdown),
            6 => Some(Opcode::CompressStream),
            7 => Some(Opcode::Metrics),
            8 => Some(Opcode::DecompressStream),
            9 => Some(Opcode::Hello),
            _ => None,
        }
    }
}

/// [`Opcode::Hello`] feature bit: tagged framing (protocol v2). Once
/// granted, every subsequent frame on the connection carries a client-
/// chosen `u32 tag` before the opcode/status byte; the service may
/// execute a connection's in-flight requests **concurrently** and
/// deliver replies out of order, tag-matched. See `docs/PROTOCOL.md`
/// § Protocol v2.
pub const FEATURE_TAGGED: u32 = 1;

/// Prefixes a v1 request/reply body with its `u32 tag`, producing a
/// tagged (protocol v2) frame body.
pub fn tagged_body(tag: u32, inner: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + inner.len());
    body.extend_from_slice(&tag.to_le_bytes());
    body.extend_from_slice(inner);
    body
}

/// Writes one tagged (protocol v2) frame — `u32 len | u32 tag | inner` —
/// without materializing the tagged body. Small frames coalesce header
/// and body into a single stack-buffered write, so the per-frame cost of
/// tagged framing stays below v1's two-write path instead of adding an
/// allocation on top of it.
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized bodies.
pub fn write_tagged_frame(w: &mut impl Write, tag: u32, inner: &[u8]) -> Result<(), ServeError> {
    let body_len = inner.len() + 4;
    if body_len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame of {body_len} bytes exceeds the {MAX_FRAME} byte limit"
        )));
    }
    let mut hdr = [0u8; 8];
    hdr[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    hdr[4..].copy_from_slice(&tag.to_le_bytes());
    if inner.len() <= 120 {
        let mut buf = [0u8; 128];
        buf[..8].copy_from_slice(&hdr);
        buf[8..8 + inner.len()].copy_from_slice(inner);
        w.write_all(&buf[..8 + inner.len()])?;
    } else {
        w.write_all(&hdr)?;
        w.write_all(inner)?;
    }
    w.flush()?;
    Ok(())
}

/// Splits a tagged (protocol v2) frame body into its `u32 tag` and the
/// v1-shaped rest (`opcode | payload` or `status | payload`).
///
/// # Errors
///
/// [`ServeError::Protocol`] when the body is too short to carry a tag.
pub fn split_tagged(body: &[u8]) -> Result<(u32, &[u8]), ServeError> {
    if body.len() < 4 {
        return Err(ServeError::Protocol(format!(
            "tagged frame of {} bytes cannot carry a u32 tag",
            body.len()
        )));
    }
    let tag = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
    Ok((tag, &body[4..]))
}

/// Reply status byte.
pub const STATUS_OK: u8 = 0;
/// Reply status byte for a service-side failure (payload = message).
pub const STATUS_ERR: u8 = 1;
/// Reply status byte for a typed over-capacity rejection: the service is
/// at its connection limit and this connection is not being served
/// (payload = message). Clients should back off and reconnect.
pub const STATUS_BUSY: u8 = 2;
/// Reply status byte for a typed deadline rejection: the request exceeded
/// the service's per-request time budget (payload = message).
pub const STATUS_TIMEOUT: u8 = 3;

/// Writes one frame (length prefix + body).
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized bodies.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ServeError> {
    if body.len() > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {} byte limit",
            body.len(),
            MAX_FRAME
        )));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Like `read_exact`, but once any frame byte has been consumed a read
/// timeout is a **fatal** protocol error: the stream can no longer be
/// retried from a frame boundary, so treating it as "no request yet"
/// would reinterpret mid-body bytes as a new frame length.
fn read_exact_mid_frame(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ServeError> {
    r.read_exact(buf).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ServeError::Protocol("peer stalled mid-frame; connection desynchronized".into())
        } else {
            ServeError::Io(e)
        }
    })
}

/// Reads one frame body. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection). A read timeout *before* the
/// first byte of a frame surfaces as a retryable [`ServeError::Io`]; a
/// timeout after that is a fatal protocol error (see
/// `read_exact_mid_frame`).
///
/// # Errors
///
/// Propagates I/O errors; rejects bodies over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte means "no more requests"; a
    // timeout here consumed nothing and is safe to retry.
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => read_exact_mid_frame(r, &mut len[n..])?,
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "peer announced a {n} byte frame (limit {MAX_FRAME})"
        )));
    }
    let mut body = vec![0u8; n];
    read_exact_mid_frame(r, &mut body)?;
    Ok(Some(body))
}

/// Appends an image (dimensions + raw RGB) to a payload — the same
/// encoding artifact payloads use ([`deepn_store::encode_image`]).
pub fn put_image(w: &mut ByteWriter, img: &RgbImage) {
    deepn_store::encode_image(w, img);
}

/// Reads an image written by [`put_image`].
///
/// # Errors
///
/// [`ServeError::Protocol`] on truncation or invalid dimensions.
pub fn get_image(r: &mut ByteReader<'_>) -> Result<RgbImage, ServeError> {
    Ok(deepn_store::decode_image(r)?)
}

/// Appends a length-prefixed byte blob.
pub fn put_blob(w: &mut ByteWriter, blob: &[u8]) {
    w.put_len(blob.len());
    w.put_bytes(blob);
}

/// Reads a length-prefixed byte blob.
///
/// # Errors
///
/// [`ServeError::Protocol`] on truncation.
pub fn get_blob(r: &mut ByteReader<'_>) -> Result<Vec<u8>, ServeError> {
    let n = r.len(1)?;
    Ok(r.bytes(n)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let body = vec![1u8, 2, 3, 4, 5];
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).expect("read"), Some(body));
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn tagged_bodies_round_trip_and_reject_runts() {
        let body = tagged_body(0xDEAD_BEEF, &[7, 8, 9]);
        let (tag, rest) = split_tagged(&body).expect("split");
        assert_eq!(tag, 0xDEAD_BEEF);
        assert_eq!(rest, &[7, 8, 9]);
        // An empty v1 rest is legal (Ping carries no payload) ...
        assert!(split_tagged(&tagged_body(1, &[])).is_ok());
        // ... but a body shorter than the tag itself is not.
        assert!(matches!(
            split_tagged(&[1, 2, 3]),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn image_payloads_round_trip() {
        let img = RgbImage::gradient(9, 5);
        let mut w = ByteWriter::new();
        put_image(&mut w, &img);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_image(&mut r).expect("image"), img);
    }
}
