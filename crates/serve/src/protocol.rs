//! The wire protocol: length-prefixed frames over a (localhost) TCP
//! stream, with payloads encoded by the same little-endian primitives the
//! artifact store uses.
//!
//! ```text
//! frame   := u32 body_len (LE) | body
//! request := u8 opcode | payload
//! reply   := u8 status (0 = ok, 1 = error, 2 = busy, 3 = timeout) | payload
//! ```
//!
//! Every non-ok reply's payload is a length-prefixed UTF-8 message. Batch
//! payloads carry a `u32` count followed by the items; images travel as
//! `u32 width | u32 height | width*height*3` RGB bytes, compressed
//! streams as `u32 len | bytes`.
//!
//! Requests on one connection are handled strictly in arrival order and
//! replies come back in the same order, which is what lets
//! [`crate::Pipeline`] keep a window of requests in flight without tagging
//! frames. The complete wire specification — every opcode, status byte,
//! streamed exchange, and the reconnect/replay and pipelining contracts —
//! lives in `docs/PROTOCOL.md` and is checked against this module's
//! constants by `tests/protocol_doc.rs`.

use crate::ServeError;
use deepn_codec::RgbImage;
use deepn_store::{ByteReader, ByteWriter};
use std::io::{Read, Write};

/// Upper bound on a frame body, bounding a hostile or corrupt length
/// prefix before any allocation (64 MiB fits thousands of the synthetic
/// dataset's images per batch).
pub const MAX_FRAME: usize = 64 << 20;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; echoes an empty ok.
    Ping = 0,
    /// Compress a batch of RGB images with the service's tables.
    EncodeBatch = 1,
    /// Decompress a batch of JFIF streams.
    DecodeBatch = 2,
    /// Classify a batch of RGB images with the service's model.
    Classify = 3,
    /// Report service counters.
    Stats = 4,
    /// Ask the service to stop accepting connections and exit.
    Shutdown = 5,
    /// Compress one image streamed as 8-row pixel strips: the request
    /// frame carries `u32 width | u32 height`, then one frame of raw RGB
    /// rows per strip follows (top to bottom), and the reply carries the
    /// complete JFIF stream as a blob. The service never buffers more than
    /// a strip of pixels per connection.
    CompressStream = 6,
    /// Report Prometheus-style metrics text.
    Metrics = 7,
    /// Decompress one JFIF stream with the reply streamed as 8-row pixel
    /// strips — the [`CompressStream`](Opcode::CompressStream) twin. The
    /// request frame carries the complete stream as a blob; the service
    /// answers with a begin frame (`status | u32 width | u32 height`),
    /// then one frame per strip (`status | raw RGB rows`, top to bottom).
    /// The service never materializes the decoded image: peak reply-side
    /// memory is one strip.
    DecompressStream = 8,
}

impl Opcode {
    /// Parses a request opcode byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Opcode::Ping),
            1 => Some(Opcode::EncodeBatch),
            2 => Some(Opcode::DecodeBatch),
            3 => Some(Opcode::Classify),
            4 => Some(Opcode::Stats),
            5 => Some(Opcode::Shutdown),
            6 => Some(Opcode::CompressStream),
            7 => Some(Opcode::Metrics),
            8 => Some(Opcode::DecompressStream),
            _ => None,
        }
    }
}

/// Reply status byte.
pub const STATUS_OK: u8 = 0;
/// Reply status byte for a service-side failure (payload = message).
pub const STATUS_ERR: u8 = 1;
/// Reply status byte for a typed over-capacity rejection: the service is
/// at its connection limit and this connection is not being served
/// (payload = message). Clients should back off and reconnect.
pub const STATUS_BUSY: u8 = 2;
/// Reply status byte for a typed deadline rejection: the request exceeded
/// the service's per-request time budget (payload = message).
pub const STATUS_TIMEOUT: u8 = 3;

/// Writes one frame (length prefix + body).
///
/// # Errors
///
/// Propagates I/O errors; rejects oversized bodies.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), ServeError> {
    if body.len() > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame of {} bytes exceeds the {} byte limit",
            body.len(),
            MAX_FRAME
        )));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Like `read_exact`, but once any frame byte has been consumed a read
/// timeout is a **fatal** protocol error: the stream can no longer be
/// retried from a frame boundary, so treating it as "no request yet"
/// would reinterpret mid-body bytes as a new frame length.
fn read_exact_mid_frame(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ServeError> {
    r.read_exact(buf).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ServeError::Protocol("peer stalled mid-frame; connection desynchronized".into())
        } else {
            ServeError::Io(e)
        }
    })
}

/// Reads one frame body. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection). A read timeout *before* the
/// first byte of a frame surfaces as a retryable [`ServeError::Io`]; a
/// timeout after that is a fatal protocol error (see
/// `read_exact_mid_frame`).
///
/// # Errors
///
/// Propagates I/O errors; rejects bodies over [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ServeError> {
    let mut len = [0u8; 4];
    // A clean EOF before any length byte means "no more requests"; a
    // timeout here consumed nothing and is safe to retry.
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => read_exact_mid_frame(r, &mut len[n..])?,
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "peer announced a {n} byte frame (limit {MAX_FRAME})"
        )));
    }
    let mut body = vec![0u8; n];
    read_exact_mid_frame(r, &mut body)?;
    Ok(Some(body))
}

/// Appends an image (dimensions + raw RGB) to a payload — the same
/// encoding artifact payloads use ([`deepn_store::encode_image`]).
pub fn put_image(w: &mut ByteWriter, img: &RgbImage) {
    deepn_store::encode_image(w, img);
}

/// Reads an image written by [`put_image`].
///
/// # Errors
///
/// [`ServeError::Protocol`] on truncation or invalid dimensions.
pub fn get_image(r: &mut ByteReader<'_>) -> Result<RgbImage, ServeError> {
    Ok(deepn_store::decode_image(r)?)
}

/// Appends a length-prefixed byte blob.
pub fn put_blob(w: &mut ByteWriter, blob: &[u8]) {
    w.put_len(blob.len());
    w.put_bytes(blob);
}

/// Reads a length-prefixed byte blob.
///
/// # Errors
///
/// [`ServeError::Protocol`] on truncation.
pub fn get_blob(r: &mut ByteReader<'_>) -> Result<Vec<u8>, ServeError> {
    let n = r.len(1)?;
    Ok(r.bytes(n)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let body = vec![1u8, 2, 3, 4, 5];
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).expect("read"), Some(body));
        assert_eq!(read_frame(&mut cursor).expect("eof"), None);
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn image_payloads_round_trip() {
        let img = RgbImage::gradient(9, 5);
        let mut w = ByteWriter::new();
        put_image(&mut w, &img);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_image(&mut r).expect("image"), img);
    }
}
