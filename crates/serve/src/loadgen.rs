//! The load/soak harness behind `deepn loadgen`: N concurrent clients
//! driving a live server with mixed serial/pipelined traffic, a
//! concurrent scraper thread polling the `Metrics` op into a
//! [`MetricsSeries`], and a reconciliation pass that cross-checks
//! client-side totals against server-side counter deltas.
//!
//! Library code (not CLI glue) so the scripted-server integration tests
//! can drive a whole storm in-process. The report it produces is
//! `BENCH_*.json`-compatible: client latency distributions land as
//! bench-shaped entries (`mean_ns`/`median_ns`/... per entry), and the
//! soak-specific accounting lands under `loadgen_summary` in the same
//! document.
//!
//! Accounting contract (what "reconciles" means): busy rejections happen
//! at connection admission and increment only
//! `deepn_serve_connections_rejected_total`; every other client-visible
//! outcome (ok, timeout, server-side error) corresponds to exactly one
//! `deepn_serve_requests_total` increment. The scraper's own `Metrics`
//! requests are counted by the server too, so the window's request delta
//! must equal `ok + timeout + error + (scrapes − 1)` — the first scrape
//! predates the window. Tagged (protocol v2) runs add two more
//! server-counted-but-not-client-tallied categories: one `Hello` per
//! (re)connect negotiation, and `parts − 1` per batch a tagged pipeline
//! splits across tags; both fold into the expected delta. Transport
//! (`io`) errors make a request's fate unknowable client-side, so the
//! reconciliation tolerance is exactly the transport-error count:
//! anything beyond that is flagged.

use crate::{Client, PipelineReply, ServeError};
use deepn_codec::{EncodeWorkspace, Encoder, QuantTablePair, RgbImage};
use deepn_trace::export::escape_json;
use deepn_trace::log;
use deepn_trace::prom::MetricsSeries;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How a loadgen run is shaped: how many clients, for how long, with
/// which traffic mix and which anomaly thresholds.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target server address.
    pub addr: SocketAddr,
    /// Number of concurrent load clients.
    pub clients: usize,
    /// How long the load phase runs.
    pub duration: Duration,
    /// Pipelined-client window. `0` makes every client serial; otherwise
    /// odd-indexed clients pipeline this many requests.
    pub pipeline_window: usize,
    /// When set, clients drop and re-establish their connection
    /// periodically — the churn that exercises accept/admission paths.
    pub churn: bool,
    /// When set, every load client negotiates tagged framing (protocol
    /// v2) after each connect and drives the v2 path. The scraper stays
    /// v1 — it is the compatibility witness. Each negotiation is one
    /// server-counted `Hello` request, folded into reconciliation via
    /// [`ClientTotals::negotiations`].
    pub tagged: bool,
    /// Side length of the synthetic square test images.
    pub image_side: usize,
    /// Images per batch request.
    pub batch: usize,
    /// Interval between metrics scrapes.
    pub scrape_interval: Duration,
    /// Anomaly threshold: flagged when hard errors (server-side failures
    /// plus transport errors) exceed this fraction of attempts.
    pub max_error_rate: f64,
    /// Anomaly threshold: flagged when typed rejections (busy + timeout)
    /// exceed this fraction of attempts. Storm tests raise it on
    /// purpose; a clean soak should stay near zero.
    pub max_reject_rate: f64,
}

impl LoadgenConfig {
    /// A moderate default shape against `addr`: 4 clients, 10 s, window
    /// of 4 on the pipelined half, no churn, 32×32 images in pairs, 1 s
    /// scrapes, 1% error and 5% rejection budgets.
    pub fn new(addr: SocketAddr) -> Self {
        LoadgenConfig {
            addr,
            clients: 4,
            duration: Duration::from_secs(10),
            pipeline_window: 4,
            churn: false,
            tagged: false,
            image_side: 32,
            batch: 2,
            scrape_interval: Duration::from_secs(1),
            max_error_rate: 0.01,
            max_reject_rate: 0.05,
        }
    }
}

/// One client's (or the merged fleet's) outcome tally.
#[derive(Debug, Default, Clone)]
pub struct ClientTotals {
    /// Requests that completed successfully.
    pub ok: u64,
    /// Typed busy rejections (connection admission).
    pub busy: u64,
    /// Typed deadline rejections.
    pub timeout: u64,
    /// Server-side failures delivered as typed error frames.
    pub error: u64,
    /// Transport/protocol failures — requests whose fate is unknowable.
    pub io_error: u64,
    /// Deliberate reconnects performed (churn).
    pub reconnects: u64,
    /// `Hello` negotiations performed (tagged mode). Each one is a
    /// server-counted request that is not a client-tallied outcome, so
    /// reconciliation adds these to the expected request delta.
    pub negotiations: u64,
    /// Extra server-counted requests from batches split across tags in
    /// tagged pipelines (`parts − 1` per split batch; the client tallies
    /// the whole batch as one outcome). Reconciled like `negotiations`.
    pub split_parts: u64,
    /// Request bodies re-sent by reconnect+replay. Against a sharded
    /// front end each replayed copy is counted as a fresh forwarded
    /// request, so reconciliation adds these to the expected delta —
    /// and widens the slack band by the same amount, because the
    /// *original* copy of a replayed frame may or may not have been
    /// read before the connection died (see `docs/SHARDING.md`).
    pub replays: u64,
    /// Serial clients' per-request wall latencies, nanoseconds.
    pub latency_ns: Vec<u64>,
}

impl ClientTotals {
    /// Requests attempted, however they ended.
    pub fn attempts(&self) -> u64 {
        self.ok + self.busy + self.timeout + self.error + self.io_error
    }

    fn absorb(&mut self, other: ClientTotals) {
        self.ok += other.ok;
        self.busy += other.busy;
        self.timeout += other.timeout;
        self.error += other.error;
        self.io_error += other.io_error;
        self.reconnects += other.reconnects;
        self.negotiations += other.negotiations;
        self.split_parts += other.split_parts;
        self.replays += other.replays;
        self.latency_ns.extend(other.latency_ns);
    }

    fn tally(&mut self, outcome: Result<(), ServeError>, elapsed_ns: u64) {
        match outcome {
            Ok(()) => {
                self.ok += 1;
                self.latency_ns.push(elapsed_ns);
            }
            Err(e) => self.tally_err(&e),
        }
    }

    fn tally_err(&mut self, e: &ServeError) {
        match e {
            ServeError::Busy(_) => self.busy += 1,
            ServeError::Timeout(_) => self.timeout += 1,
            ServeError::Remote(_) => self.error += 1,
            _ => self.io_error += 1,
        }
    }
}

/// The server-side view of the run, distilled from the scrape series.
#[derive(Debug, Default, Clone)]
pub struct ServerWindow {
    /// `deepn_serve_requests_total` growth across the window.
    pub requests_delta: Option<f64>,
    /// `deepn_serve_connections_rejected_total` growth.
    pub rejected_delta: Option<f64>,
    /// `deepn_serve_requests_timed_out_total` growth.
    pub timed_out_delta: Option<f64>,
    /// `deepn_serve_bytes_in_total` growth.
    pub bytes_in_delta: Option<f64>,
    /// `deepn_serve_bytes_out_total` growth.
    pub bytes_out_delta: Option<f64>,
    /// `(min, max)` of `deepn_serve_active_connections` across scrapes.
    pub active_envelope: Option<(f64, f64)>,
    /// Window mean of `deepn_serve_request_seconds`, seconds.
    pub request_mean_s: Option<f64>,
    /// Window p50 of `deepn_serve_request_seconds`, seconds.
    pub request_p50_s: Option<f64>,
    /// Window p90 of `deepn_serve_request_seconds`, seconds.
    pub request_p90_s: Option<f64>,
    /// Window p99 of `deepn_serve_request_seconds`, seconds.
    pub request_p99_s: Option<f64>,
    /// Per-interval request deltas — the stall detector's input.
    pub interval_requests: Vec<f64>,
}

/// Everything a loadgen run produced: fleet totals, the server-side
/// window summary, anomaly flags, and the JSON report writer.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The shape the run was configured with.
    pub clients: usize,
    /// Pipelined-client window (0 = all serial).
    pub pipeline_window: usize,
    /// Whether churn was enabled.
    pub churn: bool,
    /// Whether load clients drove tagged framing (protocol v2).
    pub tagged: bool,
    /// Measured load-phase wall time, seconds.
    pub duration_secs: f64,
    /// Merged client-side outcome tally.
    pub totals: ClientTotals,
    /// Successful requests per second over the load phase.
    pub rps: f64,
    /// Load clients that died to a panic (always an anomaly).
    pub worker_panics: u64,
    /// Successful metrics scrapes (including the pre/post fences).
    pub scrapes: usize,
    /// Scrapes rejected busy.
    pub scraper_busy: u64,
    /// Scrapes that failed outright.
    pub scrape_failures: u64,
    /// Server-side counter deltas and window percentiles.
    pub server: ServerWindow,
    /// Human-readable anomaly flags; empty means the run was clean.
    pub anomalies: Vec<String>,
}

impl LoadReport {
    /// Whether the run violated any anomaly threshold — the CLI's exit
    /// status.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// Renders the report as a `BENCH_*.json`-compatible document: the
    /// client latency distribution as a bench-shaped entry plus the
    /// soak accounting under `loadgen_summary`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut sorted = self.totals.latency_ns.clone();
        sorted.sort_unstable();
        out.push_str("  \"loadgen/serial_request\": ");
        out.push_str(&bench_entry(&sorted));
        out.push_str(",\n  \"loadgen_summary\": {\n");
        out.push_str(&format!("    \"clients\": {},\n", self.clients));
        out.push_str(&format!(
            "    \"pipeline_window\": {},\n",
            self.pipeline_window
        ));
        out.push_str(&format!("    \"churn\": {},\n", self.churn));
        out.push_str(&format!("    \"tagged\": {},\n", self.tagged));
        out.push_str(&format!(
            "    \"duration_secs\": {},\n",
            json_f64(self.duration_secs)
        ));
        out.push_str(&format!("    \"requests_ok\": {},\n", self.totals.ok));
        out.push_str(&format!("    \"requests_busy\": {},\n", self.totals.busy));
        out.push_str(&format!(
            "    \"requests_timeout\": {},\n",
            self.totals.timeout
        ));
        out.push_str(&format!("    \"requests_error\": {},\n", self.totals.error));
        out.push_str(&format!(
            "    \"requests_io_error\": {},\n",
            self.totals.io_error
        ));
        out.push_str(&format!(
            "    \"reconnects\": {},\n",
            self.totals.reconnects
        ));
        out.push_str(&format!(
            "    \"negotiations\": {},\n",
            self.totals.negotiations
        ));
        out.push_str(&format!(
            "    \"split_parts\": {},\n",
            self.totals.split_parts
        ));
        out.push_str(&format!("    \"replays\": {},\n", self.totals.replays));
        out.push_str(&format!("    \"worker_panics\": {},\n", self.worker_panics));
        out.push_str(&format!("    \"rps\": {},\n", json_f64(self.rps)));
        out.push_str(&format!("    \"scrapes\": {},\n", self.scrapes));
        out.push_str(&format!("    \"scraper_busy\": {},\n", self.scraper_busy));
        out.push_str(&format!(
            "    \"scrape_failures\": {},\n",
            self.scrape_failures
        ));
        out.push_str("    \"server\": {\n");
        let s = &self.server;
        out.push_str(&format!(
            "      \"requests_delta\": {},\n",
            json_opt(s.requests_delta)
        ));
        out.push_str(&format!(
            "      \"rejected_delta\": {},\n",
            json_opt(s.rejected_delta)
        ));
        out.push_str(&format!(
            "      \"timed_out_delta\": {},\n",
            json_opt(s.timed_out_delta)
        ));
        out.push_str(&format!(
            "      \"bytes_in_delta\": {},\n",
            json_opt(s.bytes_in_delta)
        ));
        out.push_str(&format!(
            "      \"bytes_out_delta\": {},\n",
            json_opt(s.bytes_out_delta)
        ));
        out.push_str(&format!(
            "      \"active_connections_min\": {},\n",
            json_opt(s.active_envelope.map(|(lo, _)| lo))
        ));
        out.push_str(&format!(
            "      \"active_connections_max\": {},\n",
            json_opt(s.active_envelope.map(|(_, hi)| hi))
        ));
        out.push_str(&format!(
            "      \"request_mean_s\": {},\n",
            json_opt(s.request_mean_s)
        ));
        out.push_str(&format!(
            "      \"request_p50_s\": {},\n",
            json_opt(s.request_p50_s)
        ));
        out.push_str(&format!(
            "      \"request_p90_s\": {},\n",
            json_opt(s.request_p90_s)
        ));
        out.push_str(&format!(
            "      \"request_p99_s\": {},\n",
            json_opt(s.request_p99_s)
        ));
        out.push_str("      \"interval_requests\": [");
        for (i, d) in s.interval_requests.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_f64(*d));
        }
        out.push_str("]\n    },\n");
        out.push_str("    \"anomalies\": [");
        for (i, a) in self.anomalies.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&escape_json(a));
            out.push('"');
        }
        out.push_str("]\n  }\n}\n");
        out
    }
}

/// Renders one bench-shaped JSON entry from sorted latency samples.
fn bench_entry(sorted_ns: &[u64]) -> String {
    let n = sorted_ns.len();
    if n == 0 {
        return "{\"mean_ns\": 0.0, \"std_dev_ns\": 0.0, \"ci95_ns\": 0.0, \
                \"median_ns\": 0.0, \"min_ns\": 0.0, \"max_ns\": 0.0, \
                \"samples\": 0, \"retained\": 0}"
            .to_string();
    }
    let mean = sorted_ns.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let var = sorted_ns
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    let std_dev = var.sqrt();
    let ci95 = 1.96 * std_dev / (n as f64).sqrt();
    let median = if n % 2 == 1 {
        sorted_ns[n / 2] as f64
    } else {
        (sorted_ns[n / 2 - 1] as f64 + sorted_ns[n / 2] as f64) / 2.0
    };
    format!(
        "{{\"mean_ns\": {}, \"std_dev_ns\": {}, \"ci95_ns\": {}, \
         \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
         \"samples\": {n}, \"retained\": {n}}}",
        json_f64(mean),
        json_f64(std_dev),
        json_f64(ci95),
        json_f64(median),
        json_f64(sorted_ns[0] as f64),
        json_f64(sorted_ns[n - 1] as f64),
    )
}

/// JSON number formatting: finite, with a decimal point so the value
/// reads back as a float.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

/// What the scraper thread brings home.
struct ScrapeLog {
    scrapes: Vec<(u64, String)>,
    busy: u64,
    failures: u64,
}

/// Runs a whole load/soak session against a live server: a fenced first
/// scrape, `config.clients` concurrent load clients for
/// `config.duration`, periodic scrapes throughout, a fenced final
/// scrape, then reconciliation and anomaly analysis.
///
/// # Errors
///
/// Setup failures only — an unreachable server or an un-encodable test
/// image. Load-phase failures are *data* (counted per category in the
/// report), never errors.
pub fn run(config: &LoadgenConfig) -> Result<LoadReport, ServeError> {
    let clients = config.clients.max(1);
    let images: Vec<RgbImage> = (0..config.batch.max(1))
        .map(|_| RgbImage::gradient(config.image_side.max(8), config.image_side.max(8)))
        .collect();
    // Encode the decode-op payloads locally so the warm-up never skews
    // the server-side accounting window.
    let encoder = Encoder::with_tables(QuantTablePair::standard(75));
    let mut ws = EncodeWorkspace::new();
    let mut blobs = Vec::with_capacity(images.len());
    for img in &images {
        blobs.push(
            encoder
                .encode_with(img, &mut ws)
                .map_err(|e| ServeError::Remote(format!("test image encode failed: {e}")))?,
        );
    }

    // The first scrape is a fence: it happens before any load request,
    // so the series' first sample is the window's "before" state.
    let mut scrape_client = Client::connect_retry(config.addr, Duration::from_secs(5))?;
    let first_scrape = (deepn_trace::tick(), scrape_client.metrics()?);
    log::info("loadgen_start")
        .field("addr", config.addr)
        .field("clients", clients)
        .field("duration_secs", config.duration.as_secs_f64())
        .field("pipeline_window", config.pipeline_window)
        .field("churn", config.churn)
        .field("tagged", config.tagged)
        .emit();

    let done = Arc::new(AtomicBool::new(false));
    let scraper = {
        let done = Arc::clone(&done);
        let interval = config.scrape_interval.max(Duration::from_millis(50));
        thread::spawn(move || scraper_loop(scrape_client, first_scrape, &done, interval))
    };

    let start_ns = deepn_trace::tick();
    let deadline_ns = start_ns + config.duration.as_nanos() as u64;
    let mut workers = Vec::with_capacity(clients);
    for index in 0..clients {
        let cfg = config.clone();
        let images = images.clone();
        let blobs = blobs.clone();
        workers.push(thread::spawn(move || {
            let pipelined = cfg.pipeline_window > 0 && index % 2 == 1;
            // Distinct per-client routing keys so a tagged storm against
            // a sharded front end spreads across every backend instead
            // of pinning the whole fleet's load to one table's shard.
            let routing_key = splitmix64(index as u64 + 1);
            if pipelined {
                pipelined_worker(&cfg, &images, &blobs, deadline_ns, routing_key)
            } else {
                serial_worker(&cfg, &images, &blobs, deadline_ns, routing_key)
            }
        }));
    }

    let mut totals = ClientTotals::default();
    let mut worker_panics = 0u64;
    for w in workers {
        match w.join() {
            Ok(t) => totals.absorb(t),
            Err(_) => worker_panics += 1,
        }
    }
    let measured_secs = (deepn_trace::tick().saturating_sub(start_ns)) as f64 / 1e9;
    // Workers are all done: the scraper takes its fenced final scrape
    // and exits.
    done.store(true, Ordering::SeqCst);
    let scrape_log = match scraper.join() {
        Ok(log) => log,
        Err(_) => ScrapeLog {
            scrapes: Vec::new(),
            busy: 0,
            failures: 1,
        },
    };

    let mut series = MetricsSeries::new();
    let mut scrape_failures = scrape_log.failures;
    for (at, text) in &scrape_log.scrapes {
        if series.push(*at, text).is_err() {
            scrape_failures += 1;
        }
    }

    let report = analyze(
        config,
        clients,
        measured_secs,
        totals,
        worker_panics,
        &series,
        scrape_log.busy,
        scrape_failures,
    );
    log::info("loadgen_done")
        .field("ok", report.totals.ok)
        .field("busy", report.totals.busy)
        .field("timeout", report.totals.timeout)
        .field("error", report.totals.error + report.totals.io_error)
        .field("rps", format!("{:.1}", report.rps))
        .field("anomalies", report.anomalies.len())
        .emit();
    Ok(report)
}

/// Builds the report: server window distillation, reconciliation, and
/// anomaly flags.
#[allow(clippy::too_many_arguments)]
fn analyze(
    config: &LoadgenConfig,
    clients: usize,
    duration_secs: f64,
    totals: ClientTotals,
    worker_panics: u64,
    series: &MetricsSeries,
    scraper_busy: u64,
    scrape_failures: u64,
) -> LoadReport {
    let server = ServerWindow {
        requests_delta: series.counter_delta("deepn_serve_requests_total"),
        rejected_delta: series.counter_delta("deepn_serve_connections_rejected_total"),
        timed_out_delta: series.counter_delta("deepn_serve_requests_timed_out_total"),
        bytes_in_delta: series.counter_delta("deepn_serve_bytes_in_total"),
        bytes_out_delta: series.counter_delta("deepn_serve_bytes_out_total"),
        active_envelope: series.gauge_envelope("deepn_serve_active_connections"),
        request_mean_s: series.histogram_delta_mean("deepn_serve_request_seconds"),
        request_p50_s: series.histogram_delta_quantile("deepn_serve_request_seconds", 0.5),
        request_p90_s: series.histogram_delta_quantile("deepn_serve_request_seconds", 0.9),
        request_p99_s: series.histogram_delta_quantile("deepn_serve_request_seconds", 0.99),
        interval_requests: series.counter_interval_deltas("deepn_serve_requests_total"),
    };

    let mut anomalies = Vec::new();
    let attempts = totals.attempts();
    if totals.ok == 0 {
        anomalies.push("zero_throughput: no request completed successfully".to_string());
    }
    if worker_panics > 0 {
        anomalies.push(format!(
            "worker_panics: {worker_panics} load client(s) died"
        ));
    }
    if attempts > 0 {
        let hard = (totals.error + totals.io_error) as f64 / attempts as f64;
        if hard > config.max_error_rate {
            anomalies.push(format!(
                "error_rate: {:.4} of {attempts} attempts failed hard (budget {:.4})",
                hard, config.max_error_rate
            ));
        }
        let rejected = (totals.busy + totals.timeout) as f64 / attempts as f64;
        if rejected > config.max_reject_rate {
            anomalies.push(format!(
                "reject_rate: {:.4} of {attempts} attempts were rejected busy/timeout \
                 (budget {:.4})",
                rejected, config.max_reject_rate
            ));
        }
    }
    // Throughput stall: an interior scrape interval in which the server
    // counted nothing at all while load clients were live.
    let interior = server.interval_requests.len().saturating_sub(1);
    if interior >= 2 {
        let stalled = server.interval_requests[..interior]
            .iter()
            .filter(|&&d| d <= 0.0)
            .count();
        if stalled > 0 {
            anomalies.push(format!(
                "throughput_stall: {stalled} of {interior} scrape interval(s) saw zero requests"
            ));
        }
    }
    if series.len() >= 2 {
        // Reconciliation: every non-busy client outcome, every replayed
        // frame, and every mid-window scrape is one server-counted
        // request. `value_at` sums across label sets, so against a
        // sharded front end `requests_delta` is already the fleet-wide
        // total. Honest slack: transport errors (fate unknowable), plus
        // one per replay — the *original* copy of a replayed frame may
        // or may not have been read before its connection died (see
        // `docs/SHARDING.md`; both terms are 0 in a clean run, keeping
        // single-server reconciliation exact).
        if let Some(requests_delta) = server.requests_delta {
            let expected = (totals.ok
                + totals.timeout
                + totals.error
                + totals.negotiations
                + totals.split_parts
                + totals.replays) as f64
                + (series.len() as f64 - 1.0);
            let slack = (totals.io_error + totals.replays) as f64;
            if (requests_delta - expected).abs() > slack {
                anomalies.push(format!(
                    "reconcile_mismatch: server counted {requests_delta} requests in the \
                     window but clients account for {expected} (± {} io, ± {} replay)",
                    totals.io_error, totals.replays
                ));
            }
        }
        if let Some(rejected_delta) = server.rejected_delta {
            let client_busy = (totals.busy + scraper_busy) as f64;
            if rejected_delta < client_busy {
                anomalies.push(format!(
                    "reconcile_mismatch: clients saw {client_busy} busy rejections but the \
                     server counted only {rejected_delta}"
                ));
            }
        }
    } else {
        anomalies.push(format!(
            "scrape_starvation: only {} scrape(s) landed; no server-side window",
            series.len()
        ));
    }
    if scrape_failures > 0 {
        anomalies.push(format!(
            "scrape_failures: {scrape_failures} scrape(s) failed outright"
        ));
    }

    let rps = if duration_secs > 0.0 {
        totals.ok as f64 / duration_secs
    } else {
        0.0
    };
    LoadReport {
        clients,
        pipeline_window: config.pipeline_window,
        churn: config.churn,
        tagged: config.tagged,
        duration_secs,
        totals,
        rps,
        worker_panics,
        scrapes: series.len(),
        scraper_busy,
        scrape_failures,
        server,
        anomalies,
    }
}

/// The scraper thread: periodic mid-window scrapes, then one fenced
/// final scrape (retried through a storm) once the load phase is done.
fn scraper_loop(
    mut client: Client,
    first: (u64, String),
    done: &AtomicBool,
    interval: Duration,
) -> ScrapeLog {
    let mut log = ScrapeLog {
        scrapes: vec![first],
        busy: 0,
        failures: 0,
    };
    const SLICE: Duration = Duration::from_millis(20);
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval && !done.load(Ordering::SeqCst) {
            thread::sleep(SLICE);
            waited += SLICE;
        }
        if done.load(Ordering::SeqCst) {
            // The final fence: workers have joined, so this scrape must
            // see every load request. Retry through lingering busyness.
            for attempt in 0..20 {
                match client.metrics() {
                    Ok(text) => {
                        log.scrapes.push((deepn_trace::tick(), text));
                        return log;
                    }
                    Err(ServeError::Busy(_)) => log.busy += 1,
                    Err(_) if attempt + 1 < 20 => {}
                    Err(_) => log.failures += 1,
                }
                thread::sleep(Duration::from_millis(50));
            }
            return log;
        }
        match client.metrics() {
            Ok(text) => log.scrapes.push((deepn_trace::tick(), text)),
            Err(ServeError::Busy(_)) => log.busy += 1,
            Err(_) => log.failures += 1,
        }
    }
}

/// How often churning clients tear their connection down, in requests.
const CHURN_EVERY: u64 = 32;

/// Folds a retiring (or finished) client's cumulative reconciliation
/// counters — `Hello` negotiations and tag-split extras — into the
/// worker's totals. Must run exactly once per client, before it is
/// replaced or dropped.
fn harvest(client: &Client, t: &mut ClientTotals) {
    t.negotiations += client.hellos_sent();
    t.split_parts += client.split_requests();
    t.replays += client.replays();
}

/// SplitMix64 — the statelessly seedable mixer used for per-client
/// routing keys (the hash-ring in `deepn-front` uses the same finalizer,
/// so key spread is uniform on its point space).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Negotiates tagged framing on a freshly connected load client when the
/// run asks for it, advertising the worker's routing key in the `Hello`.
/// A negotiation failure is tallied (the transport-error slack covers the
/// `Hello`'s unknowable fate); `want_tagged` stays sticky, so the client
/// re-negotiates on its next reconnect.
fn upgrade_if_tagged(cfg: &LoadgenConfig, client: &mut Client, t: &mut ClientTotals, key: u64) {
    if cfg.tagged {
        client.set_table_fingerprint(key);
        if let Err(e) = client.upgrade_tagged() {
            t.tally_err(&e);
        }
    }
}

/// A serial load client: one request at a time, mixed ops, per-request
/// latency recorded on success.
fn serial_worker(
    cfg: &LoadgenConfig,
    images: &[RgbImage],
    blobs: &[Vec<u8>],
    deadline_ns: u64,
    routing_key: u64,
) -> ClientTotals {
    let mut t = ClientTotals::default();
    let mut client = match Client::connect_retry(cfg.addr, Duration::from_secs(2)) {
        Ok(c) => c,
        Err(e) => {
            t.tally_err(&e);
            return t;
        }
    };
    upgrade_if_tagged(cfg, &mut client, &mut t, routing_key);
    let mut i = 0u64;
    while deepn_trace::tick() < deadline_ns {
        if cfg.churn && i > 0 && i.is_multiple_of(CHURN_EVERY) {
            if let Ok(fresh) = Client::connect(cfg.addr) {
                harvest(&client, &mut t);
                client = fresh;
                t.reconnects += 1;
                upgrade_if_tagged(cfg, &mut client, &mut t, routing_key);
            }
        }
        let t0 = deepn_trace::tick();
        let outcome = match i % 4 {
            0 => client.ping(),
            1 => client.encode_batch(images).map(|_| ()),
            2 => client.decode_batch(blobs).map(|_| ()),
            _ => client.stats().map(|_| ()),
        };
        let rejected = matches!(outcome, Err(ServeError::Busy(_) | ServeError::Io(_)));
        t.tally(outcome, deepn_trace::tick().saturating_sub(t0));
        if rejected {
            // Back off a beat so a storm rejects at a bounded rate
            // instead of hammering the accept queue in a tight loop.
            thread::sleep(Duration::from_millis(2));
        }
        i += 1;
    }
    harvest(&client, &mut t);
    t
}

/// A pipelined load client: submits a full window of mixed ops, then
/// drains it, reconnecting when the pipeline dies.
fn pipelined_worker(
    cfg: &LoadgenConfig,
    images: &[RgbImage],
    blobs: &[Vec<u8>],
    deadline_ns: u64,
    routing_key: u64,
) -> ClientTotals {
    let mut t = ClientTotals::default();
    let mut client = match Client::connect_retry(cfg.addr, Duration::from_secs(2)) {
        Ok(c) => c,
        Err(e) => {
            t.tally_err(&e);
            return t;
        }
    };
    upgrade_if_tagged(cfg, &mut client, &mut t, routing_key);
    let window = cfg.pipeline_window.max(1);
    let mut round = 0u64;
    while deepn_trace::tick() < deadline_ns {
        if cfg.churn && round > 0 && (round * window as u64).is_multiple_of(CHURN_EVERY) {
            if let Ok(fresh) = Client::connect(cfg.addr) {
                harvest(&client, &mut t);
                client = fresh;
                t.reconnects += 1;
                upgrade_if_tagged(cfg, &mut client, &mut t, routing_key);
            }
        }
        let mut fatal = false;
        {
            let mut p = client.pipeline(window);
            let mut submitted = 0usize;
            for j in 0..window {
                let sub = match j % 4 {
                    0 => p.submit_ping(),
                    1 => p.submit_encode_batch(images),
                    2 => p.submit_decode_batch(blobs),
                    _ => p.submit_stats(),
                };
                match sub {
                    Ok(()) => submitted += 1,
                    Err(e) => {
                        t.tally_err(&e);
                        fatal = true;
                        break;
                    }
                }
            }
            // Drain every submitted request; a fatal transport error
            // strands the rest of the window as unknowable io errors.
            let mut drained = 0usize;
            while drained < submitted && p.pending() > 0 {
                match p.recv() {
                    Ok(PipelineReply::Pong)
                    | Ok(PipelineReply::Encoded(_))
                    | Ok(PipelineReply::Decoded(_))
                    | Ok(PipelineReply::Labels(_))
                    | Ok(PipelineReply::Stats(_))
                    | Ok(PipelineReply::Metrics(_)) => {
                        t.ok += 1;
                        drained += 1;
                    }
                    Err(e @ (ServeError::Io(_) | ServeError::Protocol(_))) => {
                        t.tally_err(&e);
                        t.io_error += (submitted - drained - 1) as u64;
                        fatal = true;
                        break;
                    }
                    Err(e) => {
                        t.tally_err(&e);
                        drained += 1;
                    }
                }
            }
        }
        if fatal {
            // The pipeline died; its connection is torn down. Start
            // fresh, pacing the retry like the serial rejection path.
            thread::sleep(Duration::from_millis(2));
            if let Ok(fresh) = Client::connect(cfg.addr) {
                harvest(&client, &mut t);
                client = fresh;
                upgrade_if_tagged(cfg, &mut client, &mut t, routing_key);
            }
        }
        round += 1;
    }
    harvest(&client, &mut t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_merge_and_classify() {
        let mut a = ClientTotals::default();
        a.tally(Ok(()), 1_000);
        a.tally(Err(ServeError::Busy("b".into())), 0);
        a.tally(Err(ServeError::Timeout("t".into())), 0);
        a.tally(Err(ServeError::Remote("r".into())), 0);
        a.tally(
            Err(ServeError::Io(std::io::ErrorKind::BrokenPipe.into())),
            0,
        );
        assert_eq!(
            (a.ok, a.busy, a.timeout, a.error, a.io_error),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(a.attempts(), 5);
        let mut b = ClientTotals::default();
        b.tally(Ok(()), 2_000);
        b.absorb(a);
        assert_eq!(b.ok, 2);
        assert_eq!(b.latency_ns, vec![2_000, 1_000]);
    }

    #[test]
    fn bench_entry_matches_bench_shape() {
        let entry = bench_entry(&[100, 200, 300, 400]);
        deepn_trace::export::validate_json(&entry).expect("bench entry is JSON");
        assert!(entry.contains("\"mean_ns\": 250.0"), "{entry}");
        assert!(entry.contains("\"median_ns\": 250.0"), "{entry}");
        assert!(entry.contains("\"min_ns\": 100.0"), "{entry}");
        assert!(entry.contains("\"max_ns\": 400.0"), "{entry}");
        assert!(entry.contains("\"samples\": 4"), "{entry}");
        deepn_trace::export::validate_json(&bench_entry(&[])).expect("empty entry is JSON");
    }

    #[test]
    fn error_rate_breach_is_flagged() {
        let config = LoadgenConfig::new("127.0.0.1:1".parse().map_err(|_| ()).expect("addr"));
        let report = analyze(
            &config,
            1,
            1.0,
            ClientTotals {
                ok: 90,
                error: 6,
                io_error: 4,
                latency_ns: vec![1_000; 90],
                ..ClientTotals::default()
            },
            0,
            &MetricsSeries::new(),
            0,
            0,
        );
        // 10 hard failures out of 100 attempts blows the 1% budget.
        assert!(
            report.anomalies.iter().any(|a| a.contains("error_rate")),
            "{:?}",
            report.anomalies
        );
    }

    #[test]
    fn report_json_validates_and_carries_anomalies() {
        let config = LoadgenConfig::new("127.0.0.1:1".parse().map_err(|_| ()).expect("addr"));
        let report = analyze(
            &config,
            2,
            1.5,
            ClientTotals {
                ok: 10,
                busy: 1,
                latency_ns: vec![1_000, 2_000, 3_000],
                ..ClientTotals::default()
            },
            0,
            &MetricsSeries::new(),
            0,
            0,
        );
        // No scrapes landed: that is itself an anomaly, and busy at 1/11
        // attempts breaches the 5% budget.
        assert!(!report.is_clean());
        let json = report.to_json();
        deepn_trace::export::validate_json(&json).expect("report is well-formed JSON");
        assert!(json.contains("\"loadgen/serial_request\""));
        assert!(json.contains("scrape_starvation"), "{json}");
        let parsed = deepn_trace::export::parse_json(&json).expect("parses");
        let summary = parsed.get("loadgen_summary").expect("summary present");
        assert_eq!(
            summary.get("requests_ok").and_then(|v| v.as_f64()),
            Some(10.0)
        );
    }
}
