//! The service: acceptor + per-connection readers + a bounded job queue
//! drained by a fixed worker pool.

use crate::metrics::{Ctr, ServeMetrics};
use crate::protocol::{self, Opcode, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_TIMEOUT};
use crate::ServeError;
use deepn_codec::{
    DecodeWorkspace, Decoder, EncodeWorkspace, Encoder, PixelStrip, QuantTablePair, RgbImage,
};
use deepn_nn::Sequential;
use deepn_store::{ByteReader, ByteWriter};
use deepn_tensor::Tensor;
use deepn_trace::log;
use std::cell::Cell;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Worker-pool sizing and admission control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Number of codec worker threads. Each worker additionally gets
    /// intra-image parallelism for free: the codec's block loops fan out
    /// on the shared `deepn-parallel` pool (sized by `DEEPN_THREADS`), so
    /// a single large image no longer serializes on one worker.
    pub workers: usize,
    /// Bound of the job queue; submissions block when it is full, so an
    /// overloaded service applies backpressure instead of buffering
    /// without limit.
    pub queue_depth: usize,
    /// Maximum concurrently served connections. Connections over the
    /// limit receive a typed [`STATUS_BUSY`] rejection frame (surfacing
    /// client-side as [`ServeError::Busy`]) instead of a silent drop;
    /// `Shutdown` is honored even over the limit so a saturated service
    /// stays stoppable.
    pub max_connections: usize,
    /// Per-request time budget, measured from request dispatch. A request
    /// that exceeds it receives a typed [`STATUS_TIMEOUT`] rejection
    /// frame ([`ServeError::Timeout`] client-side). `None` disables the
    /// deadline.
    pub request_timeout: Option<Duration>,
    /// Slow-request log threshold: a request whose whole-frame handling
    /// takes at least this long is logged to stderr with its opcode and
    /// wall time (`deepn serve --slow-ms`). `None` disables the log.
    pub slow_threshold: Option<Duration>,
    /// Per-connection in-flight window under tagged framing (protocol
    /// v2): how many of one connection's requests may execute
    /// concurrently before the reader stops admitting new frames. The
    /// cap is what bounds the completed-reply buffer — workers never
    /// block on a slow client's writer.
    pub tagged_window: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16);
        ServerConfig {
            workers,
            queue_depth: 256,
            max_connections: 64,
            request_timeout: Some(Duration::from_secs(30)),
            slow_threshold: None,
            tagged_window: 16,
        }
    }
}

/// A point-in-time copy of the service counters and configuration,
/// as returned by [`crate::Client::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests handled (all opcodes).
    pub requests: u64,
    /// Images compressed.
    pub images_encoded: u64,
    /// Streams decompressed.
    pub images_decoded: u64,
    /// Images classified.
    pub images_classified: u64,
    /// Connections rejected with a typed busy frame.
    pub connections_rejected: u64,
    /// Requests rejected with a typed timeout frame.
    pub requests_timed_out: u64,
    /// Total request-frame bytes received (length prefixes included).
    pub bytes_in: u64,
    /// Total reply-frame bytes sent (length prefixes included).
    pub bytes_out: u64,
    /// Connections currently being served.
    pub active_connections: u32,
    /// Configured worker count.
    pub workers: u32,
    /// Configured queue bound.
    pub queue_depth: u32,
    /// Configured connection limit.
    pub max_connections: u32,
    /// Configured per-request budget in milliseconds (0 = disabled).
    pub request_timeout_ms: u64,
    /// Whether a model artifact was loaded for `Classify`.
    pub has_model: bool,
    /// Connections that negotiated tagged framing (protocol v2). A
    /// trailing `Stats` field: 0 when the service predates it.
    pub tagged_connections: u64,
    /// Requests executed under tagged framing. A trailing `Stats` field:
    /// 0 when the service predates it.
    pub tagged_requests: u64,
}

/// One unit of work: a single image (or stream) from a batch request.
enum JobRequest {
    Encode(RgbImage),
    Decode(Vec<u8>),
    Classify(RgbImage),
}

enum JobResult {
    Bytes(Vec<u8>),
    Image(RgbImage),
    Label(usize),
}

/// One queued unit of pool work: a v1 fan-out item, or a whole tagged
/// (protocol v2) request executed inline by one worker — intra-image
/// parallelism still fans out on the shared `deepn-parallel` pool, but
/// the request occupies a single queue slot and a single worker, so a
/// tagged connection's window can run *across* workers without nested
/// fan-out ever deadlocking the bounded queue.
enum Job {
    Item(ItemJob),
    Whole(WholeJob),
}

struct ItemJob {
    index: usize,
    req: JobRequest,
    reply: mpsc::Sender<(usize, Result<JobResult, String>)>,
    /// Set when the submitting request gave up (deadline); workers skip
    /// cancelled jobs instead of computing results nobody collects.
    cancelled: Arc<AtomicBool>,
    /// Trace timestamp of the (last) submission attempt, for the
    /// queue-wait histogram and span.
    submitted_ns: u64,
}

/// A whole tagged request: the worker loops the batch items inline,
/// builds the complete reply body (status byte included), and hands it
/// to the connection's writer thread.
struct WholeJob {
    work: WholeWork,
    tag: u32,
    reply: ReplySink,
    deadline: Option<(Duration, Instant)>,
    submitted_ns: u64,
    /// Frame-read timestamp — the whole-request clock the writer closes.
    start_ns: u64,
    req_id: u64,
    span: &'static str,
}

enum WholeWork {
    Encode(Vec<RgbImage>),
    Decode(Vec<Vec<u8>>),
    Classify(Vec<RgbImage>),
}

/// Requests at or under this cost (pixels for encode, compressed bytes
/// for decode) may run inline on a quiet tagged connection's reader
/// instead of the pool: small enough that holding the reader off the
/// socket costs less than two thread hand-offs, while anything larger
/// keeps the window's out-of-order concurrency.
const INLINE_WORK_BUDGET: usize = 4096;

impl WholeWork {
    /// A unit-less size proxy for the inline-execution decision.
    /// `Classify` never inlines: model inference is the heaviest op and
    /// the reader does not hold the model anyway.
    fn inline_cost(&self) -> usize {
        match self {
            WholeWork::Encode(images) => images.iter().map(|i| i.width() * i.height()).sum(),
            WholeWork::Decode(blobs) => blobs.iter().map(Vec::len).sum(),
            WholeWork::Classify(_) => usize::MAX,
        }
    }
}

/// The compression service. [`bind`](Server::bind) it, then either
/// [`run`](Server::run) on the current thread or [`spawn`](Server::spawn)
/// it onto a background one.
pub struct Server {
    listener: TcpListener,
    tables: Arc<QuantTablePair>,
    model: Option<Arc<Sequential>>,
    config: ServerConfig,
    counters: Arc<ServeMetrics>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    rejecting: Arc<AtomicUsize>,
}

/// Upper bound on concurrent polite-rejection threads. Beyond it an
/// over-limit connection is closed immediately instead of waiting for a
/// request frame — a connect flood must not be able to pin an unbounded
/// number of threads (and sockets) in the rejection path.
const REJECTION_THREAD_CAP: usize = 32;

/// A handle to a [`spawn`](Server::spawn)ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to stop without a client round trip.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the server thread to exit.
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

impl Server {
    /// Binds the service to `addr` with the given quantization tables and
    /// optional classification model.
    ///
    /// # Errors
    ///
    /// Socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        tables: QuantTablePair,
        model: Option<Sequential>,
        mut config: ServerConfig,
    ) -> io::Result<Self> {
        // Zero workers would park every job forever; zero queue depth
        // would make sync_channel a rendezvous that deadlocks single
        // submitters; zero connections would reject everything including
        // the shutdown request. Clamp rather than error: there is no
        // useful interpretation of any of the zeros.
        config.workers = config.workers.max(1);
        config.queue_depth = config.queue_depth.max(1);
        config.max_connections = config.max_connections.max(1);
        // A zero tagged window would admit nothing after negotiation.
        config.tagged_window = config.tagged_window.max(1);
        // Honor DEEPN_TRACE=1 and DEEPN_LOG for servers embedded in other
        // binaries; never disables tracing a host process enabled
        // explicitly.
        deepn_trace::enable_from_env();
        log::init_from_env();
        let counters = Arc::new(ServeMetrics::new(&config));
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            tables: Arc::new(tables),
            model: model.map(Arc::new),
            config,
            counters,
            shutdown: Arc::new(AtomicBool::new(false)),
            active: Arc::new(AtomicUsize::new(0)),
            rejecting: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until a shutdown request
    /// arrives, then drains the worker pool and returns.
    ///
    /// # Errors
    ///
    /// Fatal socket errors from the accept loop.
    pub fn run(self) -> io::Result<()> {
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.config.queue_depth);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers {
            let rx = Arc::clone(&job_rx);
            let tables = Arc::clone(&self.tables);
            let model = self.model.clone();
            let metrics = Arc::clone(&self.counters);
            workers.push(thread::spawn(move || {
                worker_loop(&rx, &tables, model, &metrics)
            }));
        }
        let addr = self
            .listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string());
        log::info("server_listening")
            .field("addr", &addr)
            .field("workers", self.config.workers)
            .field("queue_depth", self.config.queue_depth)
            .field("max_connections", self.config.max_connections)
            .emit();

        // Monotone connection ids, assigned at accept: the correlation
        // key every per-connection and per-request event carries.
        let conn_seq = AtomicU64::new(0);
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Admission decision happens here, before the next
                    // accept, so the active count is exact. The guard
                    // decrements when the connection thread exits.
                    let guard = ConnGuard {
                        active: Arc::clone(&self.active),
                    };
                    let limited =
                        guard.active.fetch_add(1, Ordering::SeqCst) >= self.config.max_connections;
                    let ctx = ConnCtx {
                        job_tx: job_tx.clone(),
                        tables: Arc::clone(&self.tables),
                        counters: Arc::clone(&self.counters),
                        shutdown: Arc::clone(&self.shutdown),
                        config: self.config.clone(),
                        has_model: self.model.is_some(),
                        active: Arc::clone(&self.active),
                        rejecting: Arc::clone(&self.rejecting),
                        limited,
                        conn_id: conn_seq.fetch_add(1, Ordering::Relaxed) + 1,
                    };
                    thread::spawn(move || ctx.serve(stream, guard));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // Workers exit once every sender is gone: ours now, the
        // connection threads' as they notice the flag (bounded by their
        // read timeout) or hit EOF.
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        log::info("server_stopped")
            .field("addr", &addr)
            .field("connections", conn_seq.load(Ordering::Relaxed))
            .emit();
        Ok(())
    }

    /// Runs the server on a background thread, returning a handle with the
    /// bound address.
    ///
    /// # Panics
    ///
    /// Panics if the bound address cannot be read back (the listener is
    /// already live, so this cannot happen in practice).
    pub fn spawn(self) -> ServerHandle {
        // lint:allow(panic-policy): startup, not request handling — the
        // listener is already bound, so `local_addr` failing here means
        // the socket itself is broken and there is no service to run.
        let addr = self.local_addr().expect("listener has an address");
        let shutdown = Arc::clone(&self.shutdown);
        let thread = thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shutdown,
            thread,
        }
    }
}

/// Decrements the active-connection gauge when a connection thread exits,
/// however it exits.
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Everything a connection reader needs.
struct ConnCtx {
    job_tx: SyncSender<Job>,
    tables: Arc<QuantTablePair>,
    counters: Arc<ServeMetrics>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
    has_model: bool,
    active: Arc<AtomicUsize>,
    rejecting: Arc<AtomicUsize>,
    limited: bool,
    /// Monotone per-server connection id — the correlation key on every
    /// event this connection emits.
    conn_id: u64,
}

/// Emits `conn_close` when the reader thread exits, however it exits, so
/// every accepted connection's event stream is closed by construction.
struct CloseLogger {
    conn_id: u64,
    requests: Cell<u64>,
}

impl Drop for CloseLogger {
    fn drop(&mut self) {
        log::debug("conn_close")
            .field("conn_id", self.conn_id)
            .field("requests", self.requests.get())
            .emit();
    }
}

/// One completed tagged reply on its way to the connection's writer
/// thread: the v1-shaped reply body plus everything the writer needs to
/// close out the request's observability (the tagged path's equivalent
/// of [`RequestTimer`], which cannot be used because the request no
/// longer completes within the reader's scope).
struct TaggedReply {
    tag: u32,
    /// `status | payload` — the writer prefixes the tag on the wire.
    body: Vec<u8>,
    /// Whether writing this reply retires `tag` from the in-flight
    /// window. `false` for duplicate-tag error replies, whose tag still
    /// belongs to the original in-flight request.
    release: bool,
    req_id: u64,
    span: &'static str,
    /// Frame-read timestamp (whole-request clock).
    start_ns: u64,
    /// Execution-complete timestamp (start of the reply-buffer wait).
    done_ns: u64,
    status: &'static str,
}

/// The producer half of a tagged connection's reply queue. Unbounded so
/// pool workers never block on one connection's slow writer; occupancy
/// is bounded anyway because the reader admits at most `tagged_window`
/// requests into flight.
#[derive(Clone)]
struct ReplySink {
    tx: mpsc::Sender<TaggedReply>,
    /// Completed-but-unwritten replies queued for the writer.
    pending: Arc<AtomicUsize>,
    /// Replies ever handed to the writer; paired with
    /// [`ReplySink::written`] to detect a fully idle writer (see
    /// `serve_tagged`'s quiet-connection fast path).
    enqueued: Arc<AtomicUsize>,
    /// Replies the writer has fully delivered (socket write, metrics,
    /// and tag release all done).
    written: Arc<AtomicUsize>,
    metrics: Arc<ServeMetrics>,
}

impl ReplySink {
    fn send(&self, reply: TaggedReply) {
        let occupancy = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics
            .reply_buffer_high_water
            .set_max(occupancy as u64);
        self.enqueued.fetch_add(1, Ordering::SeqCst);
        // A dropped receiver means the connection died; nothing to do.
        let _ = self.tx.send(reply);
    }

    /// True when every reply ever enqueued has been fully delivered —
    /// the writer thread is parked in `recv` and owns no socket write.
    /// Only the reader enqueues new cheap replies, and workers can only
    /// enqueue while their tag is in the window, so the caller can
    /// combine this with a window check to claim the socket briefly.
    fn writer_idle(&self) -> bool {
        let enqueued = self.enqueued.load(Ordering::SeqCst);
        self.written.load(Ordering::SeqCst) >= enqueued
    }
}

/// A tagged connection's in-flight window: the set of admitted tags,
/// bounded by `tagged_window`. The reader blocks admission while the
/// window is full; the writer releases a tag after its reply is written.
struct TagWindow {
    limit: usize,
    tags: Mutex<std::collections::HashSet<u32>>,
    freed: Condvar,
}

enum Admit {
    /// Admitted; `sole` is true when the tag is the window's only
    /// occupant, i.e. nothing else of this connection is in flight
    /// anywhere (pool queue, worker, or reply queue, since all of those
    /// hold their tag until written).
    Admitted { sole: bool },
    /// The tag is already in flight on this connection.
    Duplicate,
    /// The service shut down while waiting for window room.
    Shutdown,
}

impl TagWindow {
    fn new(limit: usize) -> Self {
        TagWindow {
            limit: limit.max(1),
            tags: Mutex::new(std::collections::HashSet::new()),
            freed: Condvar::new(),
        }
    }

    /// Admits `tag` into the window, waiting for room when it is full.
    fn admit(&self, tag: u32, shutdown: &AtomicBool) -> Admit {
        let Ok(mut tags) = self.tags.lock() else {
            return Admit::Shutdown;
        };
        loop {
            if tags.contains(&tag) {
                return Admit::Duplicate;
            }
            if tags.len() < self.limit {
                tags.insert(tag);
                return Admit::Admitted {
                    sole: tags.len() == 1,
                };
            }
            if shutdown.load(Ordering::SeqCst) {
                return Admit::Shutdown;
            }
            match self.freed.wait_timeout(tags, Duration::from_millis(100)) {
                Ok((guard, _)) => tags = guard,
                Err(_) => return Admit::Shutdown,
            }
        }
    }

    fn release(&self, tag: u32) {
        if let Ok(mut tags) = self.tags.lock() {
            tags.remove(&tag);
            self.freed.notify_all();
        }
    }
}

/// Writes one tagged reply to the socket and closes out the request's
/// metrics, spans, and structured events. Shared by the writer thread
/// and the reader's quiet-connection fast path, so both deliver
/// byte-identical frames with identical observability. Returns `true`
/// if the socket write failed (the peer is gone).
fn deliver_tagged_reply(
    stream: &mut TcpStream,
    reply: &TaggedReply,
    metrics: &ServeMetrics,
    conn_id: u64,
    slow: Option<Duration>,
) -> bool {
    let write_start = deepn_trace::tick();
    metrics.add(Ctr::BytesOut, 8 + reply.body.len() as u64);
    let dead = protocol::write_tagged_frame(stream, reply.tag, &reply.body).is_err();
    let end = deepn_trace::tick();
    metrics
        .reply_write_seconds
        .record_ns(end.saturating_sub(write_start));
    deepn_trace::record_span("serve.reply_write", write_start, end);
    metrics
        .request_seconds
        .record_ns(end.saturating_sub(reply.start_ns));
    deepn_trace::record_span(reply.span, reply.start_ns, end);
    let op = reply
        .span
        .strip_prefix("serve.request.")
        .unwrap_or(reply.span);
    let ms = format!("{:.3}", end.saturating_sub(reply.start_ns) as f64 / 1e6);
    log::trace("request")
        .field("conn_id", conn_id)
        .field("req_id", reply.req_id)
        .field("tag", reply.tag)
        .field("op", op)
        .field("status", reply.status)
        .field("ms", &ms)
        .emit();
    if matches!(reply.status, "timeout" | "error") {
        let name = if reply.status == "timeout" {
            "request_timeout"
        } else {
            "request_error"
        };
        log::warn(name)
            .field("conn_id", conn_id)
            .field("req_id", reply.req_id)
            .field("tag", reply.tag)
            .field("op", op)
            .field("ms", &ms)
            .emit();
    }
    if let Some(t) = slow {
        if end.saturating_sub(reply.start_ns) >= t.as_nanos() as u64 {
            log::warn("slow_request")
                .field("conn_id", conn_id)
                .field("req_id", reply.req_id)
                .field("tag", reply.tag)
                .field("op", op)
                .field("ms", &ms)
                .field("threshold_ms", format!("{:.3}", t.as_nanos() as f64 / 1e6))
                .emit();
        }
    }
    dead
}

/// The writer half of a tagged connection: drains the reply queue onto
/// the socket in completion order, closing out each request's metrics,
/// span, and structured events, and releasing its tag from the window.
/// Exits once every [`ReplySink`] clone (reader + queued jobs) is gone.
#[allow(clippy::too_many_arguments)]
fn tagged_writer_loop(
    mut stream: TcpStream,
    rx: &Receiver<TaggedReply>,
    window: &TagWindow,
    pending: &AtomicUsize,
    written: &AtomicUsize,
    metrics: &ServeMetrics,
    conn_id: u64,
    slow: Option<Duration>,
) {
    // After a write failure the peer is gone; later replies are drained
    // (tags released, accounting closed) without touching the socket.
    let mut dead = false;
    while let Ok(reply) = rx.recv() {
        pending.fetch_sub(1, Ordering::SeqCst);
        let write_start = deepn_trace::tick();
        metrics
            .reply_wait_seconds
            .record_ns(write_start.saturating_sub(reply.done_ns));
        deepn_trace::record_span("serve.reply_wait", reply.done_ns, write_start);
        if !dead {
            dead = deliver_tagged_reply(&mut stream, &reply, metrics, conn_id, slow);
        }
        if reply.release {
            window.release(reply.tag);
        }
        // Advanced only after release: once `written` catches up with
        // `enqueued`, this thread is provably back in `recv` with no
        // socket write or window bookkeeping outstanding.
        written.fetch_add(1, Ordering::SeqCst);
    }
}

/// A tagged connection's writer thread, spawned on first use: a serial
/// client whose every request takes the reader's quiet fast path never
/// pays the thread spawn at all — which matters under connection churn,
/// where the spawn would otherwise tax every reconnect. The reader must
/// call [`ensure`](LazyWriter::ensure) before the first reply (its own
/// or a pool job's) can reach the queue.
struct LazyWriter {
    parts: Option<(TcpStream, Receiver<TaggedReply>)>,
    window: Arc<TagWindow>,
    pending: Arc<AtomicUsize>,
    written: Arc<AtomicUsize>,
    metrics: Arc<ServeMetrics>,
    conn_id: u64,
    slow: Option<Duration>,
}

impl LazyWriter {
    fn ensure(&mut self) {
        let Some((stream, rx)) = self.parts.take() else {
            return;
        };
        let window = Arc::clone(&self.window);
        let pending = Arc::clone(&self.pending);
        let written = Arc::clone(&self.written);
        let metrics = Arc::clone(&self.metrics);
        let conn_id = self.conn_id;
        let slow = self.slow;
        // Detached on purpose: queued jobs hold `ReplySink` clones, so
        // the writer outlives the reader exactly until the last
        // in-flight reply is delivered (or drained to a dead socket).
        thread::spawn(move || {
            tagged_writer_loop(
                stream, &rx, &window, &pending, &written, &metrics, conn_id, slow,
            )
        });
    }
}

impl ConnCtx {
    fn serve(self, mut stream: TcpStream, guard: ConnGuard) {
        let _ = stream.set_nodelay(true);
        if self.limited {
            // Over the connection limit: this connection is not being
            // *served*, so free its slot immediately — a burst of
            // rejected peers must not crowd out admittable ones.
            drop(guard);
            self.counters.inc(Ctr::ConnectionsRejected);
            // The polite reply itself is bounded: past the cap, close
            // immediately so a connect flood cannot pin unbounded threads
            // here.
            let hard_drop = self.rejecting.fetch_add(1, Ordering::SeqCst) >= REJECTION_THREAD_CAP;
            log::warn("conn_busy")
                .field("conn_id", self.conn_id)
                .field("limit", self.config.max_connections)
                .field("replied", !hard_drop)
                .emit();
            if hard_drop {
                self.rejecting.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            let _reject_guard = ConnGuard {
                active: Arc::clone(&self.rejecting),
            };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            // Consume one request so the peer's write is not met with a
            // reset, answer with a typed busy frame, and close. Never a
            // silent drop.
            if let Ok(Some(request)) = protocol::read_frame(&mut stream) {
                // Carve-out: a saturated service must still be stoppable.
                // Shutdown carries no payload and runs no jobs, so honor
                // it even over the limit.
                if request.first() == Some(&(Opcode::Shutdown as u8)) {
                    self.shutdown.store(true, Ordering::SeqCst);
                    let mut w = ByteWriter::new();
                    w.put_u8(STATUS_OK);
                    let _ = protocol::write_frame(&mut stream, w.as_bytes());
                    return;
                }
                let mut w = ByteWriter::new();
                w.put_u8(STATUS_BUSY);
                w.put_string(&format!(
                    "service at its {}-connection limit; retry later",
                    self.config.max_connections
                ));
                let _ = protocol::write_frame(&mut stream, w.as_bytes());
            }
            return;
        }
        // The guard holds this connection's slot until the reader exits.
        let _guard = guard;
        log::debug("conn_accept")
            .field("conn_id", self.conn_id)
            .field(
                "peer",
                stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?".to_string()),
            )
            .emit();
        let closer = CloseLogger {
            conn_id: self.conn_id,
            requests: Cell::new(0),
        };
        // The timeout bounds how long a dead-idle connection pins this
        // thread after shutdown; it is not a per-request deadline.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        // Per-connection codec state for the streaming ops: the standard-
        // Huffman encoder (single-pass streaming cannot rewind the peer
        // for an optimized-table analysis pass) and the strip workspaces,
        // all reused across every streamed image on this connection.
        let stream_encoder = Encoder::with_tables((*self.tables).clone()).optimize_huffman(false);
        let mut stream_ws = EncodeWorkspace::new();
        let mut stream_strip = PixelStrip::new();
        let stream_decoder = Decoder::new();
        let mut stream_dec_ws = DecodeWorkspace::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match protocol::read_frame(&mut stream) {
                Ok(None) => return,
                Ok(Some(body)) => {
                    self.counters.inc(Ctr::Requests);
                    self.counters.add(Ctr::BytesIn, 4 + body.len() as u64);
                    let req_id = closer.requests.get() + 1;
                    closer.requests.set(req_id);
                    // One whole-request observation per frame, whichever of
                    // the three handling paths it takes: the timer fires on
                    // scope exit (including early returns), recording the
                    // request histogram, the per-opcode span, and the
                    // structured request/slow-request events.
                    let op_name = opcode_span_name(body.first().copied());
                    let req_timer = RequestTimer {
                        metrics: &self.counters,
                        slow: self.config.slow_threshold,
                        name: op_name,
                        start_ns: deepn_trace::tick(),
                        conn_id: self.conn_id,
                        req_id,
                        status: Cell::new("ok"),
                    };
                    if body.first() == Some(&(Opcode::Hello as u8)) {
                        // Feature negotiation. Granting FEATURE_TAGGED
                        // switches the rest of the connection — both
                        // directions — to tagged framing, so it cannot go
                        // through the one-frame `handle` path either.
                        let requested = ByteReader::new(&body[1..]).u32().unwrap_or(0);
                        let granted = requested & protocol::FEATURE_TAGGED;
                        let mut w = ByteWriter::new();
                        w.put_u8(STATUS_OK);
                        w.put_u32(granted);
                        if !self.write_reply(&mut stream, w.as_bytes()) {
                            return;
                        }
                        if granted & protocol::FEATURE_TAGGED != 0 {
                            self.counters.inc(Ctr::TaggedConnections);
                            log::debug("conn_tagged")
                                .field("conn_id", self.conn_id)
                                .field("window", self.config.tagged_window)
                                .emit();
                            // Close the Hello's own observability before
                            // the tagged loop takes over the connection.
                            drop(req_timer);
                            self.serve_tagged(&mut stream, &closer);
                            return;
                        }
                        continue;
                    }
                    if body.first() == Some(&(Opcode::CompressStream as u8)) {
                        // The streaming op owns the connection until its
                        // last strip frame: it cannot go through the
                        // one-frame `handle` path.
                        let reply = match self.compress_stream(
                            &mut stream,
                            &body[1..],
                            &stream_encoder,
                            &mut stream_ws,
                            &mut stream_strip,
                        ) {
                            Ok(payload) => {
                                let mut reply = Vec::with_capacity(1 + payload.len());
                                reply.push(STATUS_OK);
                                reply.extend_from_slice(&payload);
                                reply
                            }
                            Err(e) => {
                                // After a mid-stream failure the frame
                                // boundary with the peer is unknown:
                                // answer with a typed frame, then close.
                                req_timer.fail(&e);
                                let reply = error_reply(e);
                                self.write_reply(&mut stream, &reply);
                                return;
                            }
                        };
                        if !self.write_reply(&mut stream, &reply) {
                            return;
                        }
                        continue;
                    }
                    if body.first() == Some(&(Opcode::DecompressStream as u8)) {
                        // The streaming reply owns the connection until its
                        // last strip frame. Unlike `CompressStream`, every
                        // failure here still lands on a frame boundary (the
                        // request was one frame, and error frames replace
                        // strip frames), so the connection stays usable.
                        if !self.decompress_stream(
                            &mut stream,
                            &body[1..],
                            &stream_decoder,
                            &mut stream_dec_ws,
                            &mut stream_strip,
                            &req_timer,
                        ) {
                            return;
                        }
                        continue;
                    }
                    let (reply, stop) = self.handle(&body);
                    match reply.first().copied() {
                        Some(STATUS_ERR) => req_timer.set_status("error"),
                        Some(STATUS_BUSY) => req_timer.set_status("busy"),
                        Some(STATUS_TIMEOUT) => req_timer.set_status("timeout"),
                        _ => {}
                    }
                    if !self.write_reply(&mut stream, &reply) {
                        return;
                    }
                    if stop {
                        self.shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Err(ServeError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }

    /// Writes a reply frame, counting its bytes and timing the write;
    /// returns false when the connection is gone.
    fn write_reply(&self, stream: &mut TcpStream, reply: &[u8]) -> bool {
        self.counters.add(Ctr::BytesOut, 4 + reply.len() as u64);
        let start = deepn_trace::tick();
        let ok = protocol::write_frame(stream, reply).is_ok();
        let end = deepn_trace::tick();
        self.counters
            .reply_write_seconds
            .record_ns(end.saturating_sub(start));
        deepn_trace::record_span("serve.reply_write", start, end);
        ok
    }

    /// The tagged (protocol v2) serve loop, entered after a `Hello`
    /// granted [`protocol::FEATURE_TAGGED`]. The reader admits up to
    /// `tagged_window` of this connection's requests into flight at
    /// once: work ops run **whole** on the shared worker pool (one
    /// queue slot, one worker each), cheap ops are answered inline, and
    /// a dedicated writer thread delivers replies tag-matched in
    /// completion order — out of order relative to submission. The
    /// window admission is the backpressure: the reply queue is
    /// unbounded so workers never block on a slow client, but it can
    /// never hold more than `tagged_window` replies.
    fn serve_tagged(&self, stream: &mut TcpStream, closer: &CloseLogger) {
        let write_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                log::warn("conn_tagged_split_failed")
                    .field("conn_id", self.conn_id)
                    .field("error", e.to_string())
                    .emit();
                return;
            }
        };
        let (reply_tx, reply_rx) = mpsc::channel();
        let pending = Arc::new(AtomicUsize::new(0));
        let written = Arc::new(AtomicUsize::new(0));
        let window = Arc::new(TagWindow::new(self.config.tagged_window));
        let replies = ReplySink {
            tx: reply_tx,
            pending: Arc::clone(&pending),
            enqueued: Arc::new(AtomicUsize::new(0)),
            written: Arc::clone(&written),
            metrics: Arc::clone(&self.counters),
        };
        let mut writer = LazyWriter {
            parts: Some((write_stream, reply_rx)),
            window: Arc::clone(&window),
            pending,
            written,
            metrics: Arc::clone(&self.counters),
            conn_id: self.conn_id,
            slow: self.config.slow_threshold,
        };
        // Codec state for the quiet-connection inline path, mirroring
        // the pool workers' setup so inline replies are byte-identical.
        let inline_encoder = Encoder::with_tables((*self.tables).clone());
        let inline_decoder = Decoder::new();
        let mut inline_enc_ws = EncodeWorkspace::new();
        let mut inline_dec_ws = DecodeWorkspace::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let body = match protocol::read_frame(stream) {
                Ok(Some(body)) => body,
                Ok(None) => return,
                Err(ServeError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            };
            self.counters.inc(Ctr::Requests);
            self.counters.inc(Ctr::TaggedRequests);
            self.counters.add(Ctr::BytesIn, 4 + body.len() as u64);
            let req_id = closer.requests.get() + 1;
            closer.requests.set(req_id);
            let start_ns = deepn_trace::tick();
            let Ok((tag, rest)) = protocol::split_tagged(&body) else {
                // A frame too short to carry a tag cannot be answered
                // tag-matched: the framing contract is broken, so close
                // on this (still intact) frame boundary.
                log::warn("tagged_runt_frame")
                    .field("conn_id", self.conn_id)
                    .field("req_id", req_id)
                    .field("bytes", body.len())
                    .emit();
                return;
            };
            let span = opcode_span_name(rest.first().copied());
            let (op, payload) = match rest.split_first() {
                Some((&b, payload)) => match Opcode::from_u8(b) {
                    Some(op) => (op, payload),
                    None => {
                        writer.ensure();
                        reject_tagged(
                            &replies,
                            tag,
                            req_id,
                            span,
                            start_ns,
                            ServeError::Protocol(format!("unknown opcode {b}")),
                            false,
                        );
                        continue;
                    }
                },
                None => {
                    writer.ensure();
                    reject_tagged(
                        &replies,
                        tag,
                        req_id,
                        span,
                        start_ns,
                        ServeError::Protocol("empty request frame".into()),
                        false,
                    );
                    continue;
                }
            };
            // Ops that cannot run inside a tagged window are rejected
            // with a typed frame *before* admission — never silently
            // corrupted, and the connection stays usable.
            match op {
                Opcode::Hello => {
                    writer.ensure();
                    reject_tagged(
                        &replies,
                        tag,
                        req_id,
                        span,
                        start_ns,
                        ServeError::Protocol(
                            "tagged framing is already negotiated on this connection".into(),
                        ),
                        false,
                    );
                    continue;
                }
                Opcode::CompressStream | Opcode::DecompressStream => {
                    writer.ensure();
                    reject_tagged(
                        &replies,
                        tag,
                        req_id,
                        span,
                        start_ns,
                        ServeError::Protocol(
                            "streaming ops are not available on a tagged connection; \
                             open an untagged (v1) connection"
                                .into(),
                        ),
                        false,
                    );
                    continue;
                }
                _ => {}
            }
            let sole = match window.admit(tag, &self.shutdown) {
                Admit::Shutdown => return,
                Admit::Duplicate => {
                    // `release: false`: this tag still belongs to the
                    // original in-flight request, whose reply must not
                    // be forgotten because of the client's reuse.
                    writer.ensure();
                    reject_tagged(
                        &replies,
                        tag,
                        req_id,
                        span,
                        start_ns,
                        ServeError::Protocol(format!(
                            "tag {tag} is already in flight on this connection"
                        )),
                        false,
                    );
                    continue;
                }
                Admit::Admitted { sole } => sole,
            };
            match op {
                Opcode::Ping => {
                    self.answer_cheap(
                        stream,
                        &replies,
                        &window,
                        &mut writer,
                        sole,
                        tag,
                        vec![STATUS_OK],
                        req_id,
                        span,
                        start_ns,
                    );
                }
                Opcode::Stats => {
                    let mut w = ByteWriter::new();
                    w.put_u8(STATUS_OK);
                    w.put_bytes(&self.stats_payload());
                    self.answer_cheap(
                        stream,
                        &replies,
                        &window,
                        &mut writer,
                        sole,
                        tag,
                        w.into_bytes(),
                        req_id,
                        span,
                        start_ns,
                    );
                }
                Opcode::Metrics => {
                    let mut w = ByteWriter::new();
                    w.put_u8(STATUS_OK);
                    let active = self.active.load(Ordering::SeqCst) as u64;
                    w.put_string(&self.counters.render(active));
                    self.answer_cheap(
                        stream,
                        &replies,
                        &window,
                        &mut writer,
                        sole,
                        tag,
                        w.into_bytes(),
                        req_id,
                        span,
                        start_ns,
                    );
                }
                Opcode::Shutdown => {
                    writer.ensure();
                    replies.send(TaggedReply {
                        tag,
                        body: vec![STATUS_OK],
                        release: true,
                        req_id,
                        span,
                        start_ns,
                        done_ns: deepn_trace::tick(),
                        status: "ok",
                    });
                    self.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
                Opcode::EncodeBatch | Opcode::DecodeBatch | Opcode::Classify => {
                    match self.parse_work(op, payload) {
                        Err(e) => {
                            writer.ensure();
                            reject_tagged(&replies, tag, req_id, span, start_ns, e, true);
                        }
                        Ok(work)
                            if work.inline_cost() <= INLINE_WORK_BUDGET
                                && sole
                                && replies.writer_idle() =>
                        {
                            // Quiet-connection inline execution: nothing
                            // else is in flight, so blocking the reader
                            // for this small request trades no window
                            // concurrency away and skips both thread
                            // hand-offs (pool submit, writer wake).
                            let deadline =
                                self.config.request_timeout.map(|t| (t, Instant::now() + t));
                            let reply = run_whole(
                                work,
                                tag,
                                deadline,
                                deepn_trace::tick(),
                                start_ns,
                                req_id,
                                span,
                                &inline_encoder,
                                &inline_decoder,
                                None,
                                &mut inline_enc_ws,
                                &mut inline_dec_ws,
                                &self.counters,
                            );
                            self.fast_deliver(stream, &window, reply);
                        }
                        Ok(work) => {
                            writer.ensure();
                            self.submit_whole(work, tag, &replies, req_id, span, start_ns);
                        }
                    }
                }
                // Rejected before admission; the match stays total
                // without a panicking arm (panic-policy).
                Opcode::Hello | Opcode::CompressStream | Opcode::DecompressStream => {}
            }
        }
    }

    /// Answers a cheap tagged op (Ping/Stats/Metrics), preferring the
    /// quiet-connection fast path: when `tag` is the window's only
    /// occupant and the writer has fully drained, no other reply can
    /// exist or appear (workers need an admitted tag, and only this
    /// reader admits), so the reader may claim the socket and write the
    /// reply itself — byte-identical, but without the writer-thread
    /// hand-off that costs two context switches per request on a busy
    /// single-core host. Serial tagged clients hit this path on every
    /// cheap request, matching v1's inline-answer cost.
    #[allow(clippy::too_many_arguments)]
    fn answer_cheap(
        &self,
        stream: &mut TcpStream,
        replies: &ReplySink,
        window: &TagWindow,
        writer: &mut LazyWriter,
        sole: bool,
        tag: u32,
        body: Vec<u8>,
        req_id: u64,
        span: &'static str,
        start_ns: u64,
    ) {
        let reply = TaggedReply {
            tag,
            body,
            release: true,
            req_id,
            span,
            start_ns,
            done_ns: deepn_trace::tick(),
            status: "ok",
        };
        if sole && replies.writer_idle() {
            self.fast_deliver(stream, window, reply);
            return;
        }
        writer.ensure();
        replies.send(reply);
    }

    /// Writes a reply on the reader thread, with the writer's exact
    /// observability (one `reply_wait` sample per request either way),
    /// then retires the tag. Only callable while the quiet-connection
    /// invariant holds: the tag is the window's sole occupant and the
    /// writer has fully drained, so nobody else can touch the socket.
    fn fast_deliver(&self, stream: &mut TcpStream, window: &TagWindow, reply: TaggedReply) {
        let write_start = deepn_trace::tick();
        self.counters
            .reply_wait_seconds
            .record_ns(write_start.saturating_sub(reply.done_ns));
        deepn_trace::record_span("serve.reply_wait", reply.done_ns, write_start);
        // A failed write surfaces on the next read as EOF/error.
        let _ = deliver_tagged_reply(
            stream,
            &reply,
            &self.counters,
            self.conn_id,
            self.config.slow_threshold,
        );
        window.release(reply.tag);
    }

    /// Parses a tagged work op's payload into its whole-request job.
    fn parse_work(&self, op: Opcode, payload: &[u8]) -> Result<WholeWork, ServeError> {
        let mut r = ByteReader::new(payload);
        match op {
            Opcode::EncodeBatch => {
                let count = r.len(8)?;
                let mut images = Vec::with_capacity(count);
                for _ in 0..count {
                    images.push(protocol::get_image(&mut r)?);
                }
                Ok(WholeWork::Encode(images))
            }
            Opcode::DecodeBatch => {
                let count = r.len(4)?;
                let mut blobs = Vec::with_capacity(count);
                for _ in 0..count {
                    blobs.push(protocol::get_blob(&mut r)?);
                }
                Ok(WholeWork::Decode(blobs))
            }
            Opcode::Classify => {
                if !self.has_model {
                    return Err(ServeError::Remote(
                        "service started without a model artifact".into(),
                    ));
                }
                let count = r.len(8)?;
                let mut images = Vec::with_capacity(count);
                for _ in 0..count {
                    images.push(protocol::get_image(&mut r)?);
                }
                Ok(WholeWork::Classify(images))
            }
            _ => Err(ServeError::Protocol(format!("op {op:?} is not pool work"))),
        }
    }

    /// Submits one whole tagged request to the bounded pool queue,
    /// honoring the per-request deadline during submission exactly like
    /// the v1 fan-out path. Submission failures become typed replies on
    /// the writer; the tag is released once that reply is written.
    fn submit_whole(
        &self,
        work: WholeWork,
        tag: u32,
        replies: &ReplySink,
        req_id: u64,
        span: &'static str,
        start_ns: u64,
    ) {
        let deadline = self.config.request_timeout.map(|t| (t, Instant::now() + t));
        let mut job = Job::Whole(WholeJob {
            work,
            tag,
            reply: replies.clone(),
            deadline,
            submitted_ns: deepn_trace::tick(),
            start_ns,
            req_id,
            span,
        });
        match &deadline {
            None => {
                if self.job_tx.send(job).is_err() {
                    reject_tagged(
                        replies,
                        tag,
                        req_id,
                        span,
                        start_ns,
                        ServeError::Remote("service is shutting down".into()),
                        true,
                    );
                }
            }
            Some(d) => loop {
                match self.job_tx.try_send(job) {
                    Ok(()) => break,
                    Err(mpsc::TrySendError::Disconnected(_)) => {
                        reject_tagged(
                            replies,
                            tag,
                            req_id,
                            span,
                            start_ns,
                            ServeError::Remote("service is shutting down".into()),
                            true,
                        );
                        break;
                    }
                    Err(mpsc::TrySendError::Full(back)) => {
                        if Instant::now() >= d.1 {
                            self.counters.inc(Ctr::RequestsTimedOut);
                            reject_tagged(
                                replies,
                                tag,
                                req_id,
                                span,
                                start_ns,
                                ServeError::Timeout(format!(
                                    "request exceeded its {:?} budget",
                                    d.0
                                )),
                                true,
                            );
                            break;
                        }
                        job = back;
                        thread::sleep(Duration::from_millis(1));
                        // Queue wait measures queued time, not the
                        // submitter's backoff: restamp on each retry.
                        if let Job::Whole(w) = &mut job {
                            w.submitted_ns = deepn_trace::tick();
                        }
                    }
                }
            },
        }
    }

    /// Handles one `CompressStream` request after its begin frame: reads
    /// one raw-RGB frame per strip, feeds the per-connection streaming
    /// session, and returns the ok-payload carrying the JFIF blob. Strip
    /// frames bound the resident pixel memory to O(strip) no matter how
    /// large the image is; the per-request deadline covers the whole
    /// stream.
    fn compress_stream(
        &self,
        stream: &mut TcpStream,
        payload: &[u8],
        encoder: &Encoder,
        ws: &mut EncodeWorkspace,
        strip: &mut PixelStrip,
    ) -> Result<Vec<u8>, ServeError> {
        let mut r = ByteReader::new(payload);
        let width = r.u32()? as usize;
        let height = r.u32()? as usize;
        let deadline = self.config.request_timeout.map(|t| (t, Instant::now() + t));
        let mut session = encoder
            .stream_encoder(width, height)
            .map_err(|e| ServeError::Remote(format!("compress-stream rejected: {e}")))?;
        let mut jfif = Vec::new();
        for s in 0..session.strip_count() {
            let frame = loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    return Err(ServeError::Remote("service is shutting down".into()));
                }
                if let Some((budget, end)) = &deadline {
                    if Instant::now() >= *end {
                        self.counters.inc(Ctr::RequestsTimedOut);
                        return Err(ServeError::Timeout(format!(
                            "stream exceeded its {budget:?} budget"
                        )));
                    }
                }
                match protocol::read_frame(stream) {
                    Ok(Some(frame)) => break frame,
                    Ok(None) => {
                        return Err(ServeError::Protocol(format!(
                            "peer closed after {s} of {} strips",
                            session.strip_count()
                        )))
                    }
                    Err(ServeError::Io(e))
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };
            self.counters.add(Ctr::BytesIn, 4 + frame.len() as u64);
            strip
                .set_rows(width, session.strip_rows(s), &frame)
                .map_err(|e| ServeError::Protocol(e.to_string()))?;
            session
                .encode_strip(strip, ws)
                .map_err(|e| ServeError::Remote(format!("encode failed: {e}")))?;
            jfif.extend(session.take_output());
        }
        jfif.extend(
            session
                .finish()
                .map_err(|e| ServeError::Remote(format!("encode failed: {e}")))?,
        );
        self.counters.inc(Ctr::ImagesEncoded);
        let mut w = ByteWriter::new();
        protocol::put_blob(&mut w, &jfif);
        Ok(w.into_bytes())
    }

    /// Handles one `DecompressStream` request: parses the JFIF blob from
    /// the request payload, then frames the decoded image back as a begin
    /// frame (`status | u32 width | u32 height`) followed by one
    /// `status | raw RGB rows` frame per 8-row strip. The decoded image is
    /// never materialized — peak reply-side memory is one strip, no matter
    /// how large the image is.
    ///
    /// Every outcome (including mid-stream decode failures and deadline
    /// overruns) is delivered as a typed frame on an intact frame
    /// boundary, so the return value is `false` only when the peer is
    /// gone.
    fn decompress_stream(
        &self,
        stream: &mut TcpStream,
        payload: &[u8],
        decoder: &Decoder,
        ws: &mut DecodeWorkspace,
        strip: &mut PixelStrip,
        timer: &RequestTimer<'_>,
    ) -> bool {
        let deadline = self.config.request_timeout.map(|t| (t, Instant::now() + t));
        let mut run = || -> Result<(), ServeError> {
            let mut r = ByteReader::new(payload);
            let jfif = protocol::get_blob(&mut r)?;
            let mut session = decoder
                .stream_decoder(&jfif)
                .map_err(|e| ServeError::Remote(format!("decode failed: {e}")))?;
            let mut begin = ByteWriter::new();
            begin.put_u8(STATUS_OK);
            begin.put_u32(session.width() as u32);
            begin.put_u32(session.height() as u32);
            if !self.write_reply(stream, begin.as_bytes()) {
                return Err(ServeError::Io(io::ErrorKind::BrokenPipe.into()));
            }
            let mut frame = Vec::new();
            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    return Err(ServeError::Remote("service is shutting down".into()));
                }
                if let Some((budget, end)) = &deadline {
                    if Instant::now() >= *end {
                        self.counters.inc(Ctr::RequestsTimedOut);
                        return Err(ServeError::Timeout(format!(
                            "stream exceeded its {budget:?} budget"
                        )));
                    }
                }
                let more = session
                    .next_strip(ws, strip)
                    .map_err(|e| ServeError::Remote(format!("decode failed: {e}")))?;
                if !more {
                    break;
                }
                frame.clear();
                frame.push(STATUS_OK);
                frame.extend_from_slice(strip.as_bytes());
                if !self.write_reply(stream, &frame) {
                    return Err(ServeError::Io(io::ErrorKind::BrokenPipe.into()));
                }
            }
            self.counters.inc(Ctr::ImagesDecoded);
            Ok(())
        };
        match run() {
            Ok(()) => true,
            Err(ServeError::Io(e)) => {
                timer.fail(&ServeError::Io(e));
                false
            }
            Err(e) => {
                // Every reply frame of this exchange leads with a status
                // byte, so a typed error frame in place of a strip frame
                // is unambiguous: the client stops reading strips there.
                timer.fail(&e);
                self.write_reply(stream, &error_reply(e))
            }
        }
    }

    /// Handles one request, returning `(reply_body, shutdown)`.
    fn handle(&self, body: &[u8]) -> (Vec<u8>, bool) {
        match self.dispatch(body) {
            Ok((payload, stop)) => {
                let mut reply = Vec::with_capacity(1 + payload.len());
                reply.push(STATUS_OK);
                reply.extend_from_slice(&payload);
                (reply, stop)
            }
            Err(e) => (error_reply(e), false),
        }
    }

    fn dispatch(&self, body: &[u8]) -> Result<(Vec<u8>, bool), ServeError> {
        let (&op, payload) = body
            .split_first()
            .ok_or_else(|| ServeError::Protocol("empty request frame".into()))?;
        let op = Opcode::from_u8(op)
            .ok_or_else(|| ServeError::Protocol(format!("unknown opcode {op}")))?;
        let mut r = ByteReader::new(payload);
        match op {
            Opcode::Ping => Ok((Vec::new(), false)),
            Opcode::Shutdown => Ok((Vec::new(), true)),
            // Negotiation is intercepted in the serve loop (granting
            // FEATURE_TAGGED re-frames the connection); reachable here
            // only via the limited-rejection path, which never dispatches.
            Opcode::Hello => Err(ServeError::Protocol(
                "Hello is negotiated by the serve loop, not dispatched".into(),
            )),
            // The streaming ops are intercepted before dispatch (they own
            // the connection for their strip frames).
            Opcode::CompressStream | Opcode::DecompressStream => Err(ServeError::Protocol(
                "streaming ops must be the first frame of their exchange".into(),
            )),
            Opcode::Metrics => {
                let mut w = ByteWriter::new();
                let active = self.active.load(Ordering::SeqCst) as u64;
                w.put_string(&self.counters.render(active));
                Ok((w.into_bytes(), false))
            }
            Opcode::EncodeBatch => {
                let count = r.len(8)?;
                let mut reqs = Vec::with_capacity(count);
                for _ in 0..count {
                    reqs.push(JobRequest::Encode(protocol::get_image(&mut r)?));
                }
                let results = self.fan_out(reqs)?;
                self.counters.add(Ctr::ImagesEncoded, count as u64);
                let mut w = ByteWriter::new();
                w.put_len(results.len());
                for res in results {
                    match res {
                        JobResult::Bytes(b) => protocol::put_blob(&mut w, &b),
                        _ => {
                            return Err(ServeError::Remote(
                                "encode job produced a non-bytes result".into(),
                            ))
                        }
                    }
                }
                Ok((w.into_bytes(), false))
            }
            Opcode::DecodeBatch => {
                let count = r.len(4)?;
                let mut reqs = Vec::with_capacity(count);
                for _ in 0..count {
                    reqs.push(JobRequest::Decode(protocol::get_blob(&mut r)?));
                }
                let results = self.fan_out(reqs)?;
                self.counters.add(Ctr::ImagesDecoded, count as u64);
                let mut w = ByteWriter::new();
                w.put_len(results.len());
                for res in results {
                    match res {
                        JobResult::Image(img) => protocol::put_image(&mut w, &img),
                        _ => {
                            return Err(ServeError::Remote(
                                "decode job produced a non-image result".into(),
                            ))
                        }
                    }
                }
                Ok((w.into_bytes(), false))
            }
            Opcode::Classify => {
                if !self.has_model {
                    return Err(ServeError::Remote(
                        "service started without a model artifact".into(),
                    ));
                }
                let count = r.len(8)?;
                let mut reqs = Vec::with_capacity(count);
                for _ in 0..count {
                    reqs.push(JobRequest::Classify(protocol::get_image(&mut r)?));
                }
                let results = self.fan_out(reqs)?;
                self.counters.add(Ctr::ImagesClassified, count as u64);
                let mut w = ByteWriter::new();
                w.put_len(results.len());
                for res in results {
                    match res {
                        JobResult::Label(l) => w.put_u32(l as u32),
                        _ => {
                            return Err(ServeError::Remote(
                                "classify job produced a non-label result".into(),
                            ))
                        }
                    }
                }
                Ok((w.into_bytes(), false))
            }
            Opcode::Stats => Ok((self.stats_payload(), false)),
        }
    }

    /// The `Stats` ok-payload: the frozen eight-counter prefix, the
    /// config echo, then every trailing field in append order
    /// (docs/PROTOCOL.md — trailing fields are how `Stats` grows without
    /// shifting what old clients read).
    fn stats_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        // The counter array's declaration order IS the wire order
        // (docs/PROTOCOL.md) — one source of truth for both.
        for v in self.counters.wire_counters() {
            w.put_u64(v);
        }
        w.put_u32(self.active.load(Ordering::SeqCst) as u32);
        w.put_u32(self.config.workers as u32);
        w.put_u32(self.config.queue_depth as u32);
        w.put_u32(self.config.max_connections as u32);
        // 0 means "no deadline"; an enabled sub-millisecond budget
        // (e.g. `Some(Duration::ZERO)` in tests) reports as 1 so it
        // cannot masquerade as disabled.
        w.put_u64(
            self.config
                .request_timeout
                .map_or(0, |t| (t.as_millis() as u64).max(1)),
        );
        w.put_u8(u8::from(self.has_model));
        // Trailing fields, append-only past this point.
        w.put_u64(self.counters.get(Ctr::TaggedConnections));
        w.put_u64(self.counters.get(Ctr::TaggedRequests));
        w.into_bytes()
    }

    /// Submits one job per batch item to the bounded queue and collects
    /// the results back into request order, honoring the per-request
    /// deadline: a budget overrun returns a typed [`ServeError::Timeout`]
    /// (late worker replies then land on a closed channel, harmlessly).
    fn fan_out(&self, reqs: Vec<JobRequest>) -> Result<Vec<JobResult>, ServeError> {
        let deadline = self.config.request_timeout.map(|t| (t, Instant::now() + t));
        let cancelled = Arc::new(AtomicBool::new(false));
        let timed_out = |(budget, _): &(Duration, Instant)| {
            // Giving up cancels the request's still-queued jobs, so a
            // retrying client does not pile dead work onto the queue.
            cancelled.store(true, Ordering::SeqCst);
            self.counters.inc(Ctr::RequestsTimedOut);
            ServeError::Timeout(format!("request exceeded its {budget:?} budget"))
        };
        if let Some(d) = &deadline {
            if Instant::now() >= d.1 {
                return Err(timed_out(d));
            }
        }
        let n = reqs.len();
        let (tx, rx) = mpsc::channel();
        for (index, req) in reqs.into_iter().enumerate() {
            let mut job = Job::Item(ItemJob {
                index,
                req,
                reply: tx.clone(),
                cancelled: Arc::clone(&cancelled),
                submitted_ns: deepn_trace::tick(),
            });
            // Submission must honor the deadline too: a full queue under
            // overload would otherwise block `send` past the budget —
            // exactly the situation the timeout exists for.
            match &deadline {
                None => self
                    .job_tx
                    .send(job)
                    .map_err(|_| ServeError::Remote("service is shutting down".into()))?,
                Some(d) => loop {
                    match self.job_tx.try_send(job) {
                        Ok(()) => break,
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            return Err(ServeError::Remote("service is shutting down".into()));
                        }
                        Err(mpsc::TrySendError::Full(back)) => {
                            if Instant::now() >= d.1 {
                                return Err(timed_out(d));
                            }
                            job = back;
                            thread::sleep(Duration::from_millis(1));
                            // Queue wait measures queued time, not the
                            // submitter's backoff: restamp on each retry.
                            if let Job::Item(j) = &mut job {
                                j.submitted_ns = deepn_trace::tick();
                            }
                        }
                    }
                },
            }
        }
        drop(tx);
        let mut out: Vec<Option<JobResult>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut first_err: Option<String> = None;
        for _ in 0..n {
            let (index, result) = match &deadline {
                None => rx
                    .recv()
                    .map_err(|_| ServeError::Remote("worker pool died".into()))?,
                Some(d) => {
                    let remaining = d.1.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(remaining) {
                        Ok(reply) => reply,
                        Err(RecvTimeoutError::Timeout) => return Err(timed_out(d)),
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(ServeError::Remote("worker pool died".into()))
                        }
                    }
                }
            };
            match result {
                Ok(res) => out[index] = Some(res),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(ServeError::Remote(e));
        }
        out.into_iter()
            .map(|r| r.ok_or_else(|| ServeError::Remote("a fan-out job returned no result".into())))
            .collect()
    }
}

/// The span name for a request frame's opcode byte — static strings so
/// recording a span never allocates.
fn opcode_span_name(op: Option<u8>) -> &'static str {
    match op.and_then(Opcode::from_u8) {
        Some(Opcode::Ping) => "serve.request.ping",
        Some(Opcode::EncodeBatch) => "serve.request.encode_batch",
        Some(Opcode::DecodeBatch) => "serve.request.decode_batch",
        Some(Opcode::Classify) => "serve.request.classify",
        Some(Opcode::Stats) => "serve.request.stats",
        Some(Opcode::Shutdown) => "serve.request.shutdown",
        Some(Opcode::CompressStream) => "serve.request.compress_stream",
        Some(Opcode::Metrics) => "serve.request.metrics",
        Some(Opcode::DecompressStream) => "serve.request.decompress_stream",
        Some(Opcode::Hello) => "serve.request.hello",
        None => "serve.request.unknown",
    }
}

/// Observes one whole request on scope exit — read-to-reply wall time into
/// the request histogram, a per-opcode span, and the structured
/// `request` / `slow_request` / `request_timeout` / `request_error`
/// events — so every exit path of the serve loop's three handling
/// branches is covered by construction.
struct RequestTimer<'a> {
    metrics: &'a ServeMetrics,
    slow: Option<Duration>,
    name: &'static str,
    start_ns: u64,
    conn_id: u64,
    req_id: u64,
    status: Cell<&'static str>,
}

impl RequestTimer<'_> {
    /// The request's short opcode name (`ping`, `encode_batch`, ...).
    fn op(&self) -> &'static str {
        self.name
            .strip_prefix("serve.request.")
            .unwrap_or(self.name)
    }

    /// Records the request's outcome for the completion event.
    fn set_status(&self, status: &'static str) {
        self.status.set(status);
    }

    /// Records a typed failure as this request's outcome.
    fn fail(&self, e: &ServeError) {
        self.set_status(match e {
            ServeError::Busy(_) => "busy",
            ServeError::Timeout(_) => "timeout",
            ServeError::Io(_) => "io",
            _ => "error",
        });
    }
}

impl Drop for RequestTimer<'_> {
    fn drop(&mut self) {
        let end_ns = deepn_trace::tick();
        let dur_ns = end_ns.saturating_sub(self.start_ns);
        self.metrics.request_seconds.record_ns(dur_ns);
        deepn_trace::record_span(self.name, self.start_ns, end_ns);
        let status = self.status.get();
        let ms = format!("{:.3}", dur_ns as f64 / 1e6);
        log::trace("request")
            .field("conn_id", self.conn_id)
            .field("req_id", self.req_id)
            .field("op", self.op())
            .field("status", status)
            .field("ms", &ms)
            .emit();
        if matches!(status, "timeout" | "error") {
            let name = if status == "timeout" {
                "request_timeout"
            } else {
                "request_error"
            };
            log::warn(name)
                .field("conn_id", self.conn_id)
                .field("req_id", self.req_id)
                .field("op", self.op())
                .field("ms", &ms)
                .emit();
        }
        if let Some(t) = self.slow {
            if dur_ns >= t.as_nanos() as u64 {
                log::warn("slow_request")
                    .field("conn_id", self.conn_id)
                    .field("req_id", self.req_id)
                    .field("op", self.op())
                    .field("ms", &ms)
                    .field("threshold_ms", format!("{:.3}", t.as_nanos() as f64 / 1e6))
                    .emit();
            }
        }
    }
}

/// Renders an error as a typed reply body. Admission failures travel as
/// their own status bytes so clients can distinguish "back off" from
/// "request broken".
fn error_reply(e: ServeError) -> Vec<u8> {
    let (status, message) = match e {
        ServeError::Busy(m) => (STATUS_BUSY, m),
        ServeError::Timeout(m) => (STATUS_TIMEOUT, m),
        other => (STATUS_ERR, other.to_string()),
    };
    let mut w = ByteWriter::new();
    w.put_u8(status);
    w.put_string(&message);
    w.into_bytes()
}

/// Normalizes an image exactly as `deepn_core::experiment::to_tensors`
/// does, so a model trained by the pipeline classifies service traffic
/// identically.
fn image_to_tensor(img: &RgbImage) -> Tensor {
    let mut chw = img.to_chw_f32();
    for v in &mut chw {
        *v -= 0.5;
    }
    Tensor::from_vec(chw, &[1, 3, img.height(), img.width()])
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    tables: &QuantTablePair,
    model: Option<Arc<Sequential>>,
    metrics: &ServeMetrics,
) {
    let encoder = Encoder::with_tables(tables.clone());
    let decoder = Decoder::new();
    // Per-worker codec workspaces, reused across every job this worker
    // ever runs: after the first image of a given width, the block-strip
    // hot loops allocate nothing.
    let mut enc_ws = EncodeWorkspace::new();
    let mut dec_ws = DecodeWorkspace::new();
    loop {
        // Hold the lock only while dequeuing, not while working.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Err(_) => return,
            Ok(Job::Item(job)) => {
                run_item_job(
                    job,
                    &encoder,
                    &decoder,
                    model.as_ref(),
                    &mut enc_ws,
                    &mut dec_ws,
                    metrics,
                );
            }
            Ok(Job::Whole(job)) => {
                execute_whole(
                    job,
                    &encoder,
                    &decoder,
                    model.as_ref(),
                    &mut enc_ws,
                    &mut dec_ws,
                    metrics,
                );
            }
        }
    }
}

/// Runs one v1 fan-out item on a worker.
fn run_item_job(
    job: ItemJob,
    encoder: &Encoder,
    decoder: &Decoder,
    model: Option<&Arc<Sequential>>,
    enc_ws: &mut EncodeWorkspace,
    dec_ws: &mut DecodeWorkspace,
    metrics: &ServeMetrics,
) {
    let dequeued_ns = deepn_trace::tick();
    metrics
        .queue_wait_seconds
        .record_ns(dequeued_ns.saturating_sub(job.submitted_ns));
    deepn_trace::record_span("serve.queue_wait", job.submitted_ns, dequeued_ns);
    if job.cancelled.load(Ordering::SeqCst) {
        // The request already timed out; nobody collects this result.
        return;
    }
    // A panic (e.g. an image whose geometry violates a model layer's
    // invariants) must cost one request, not one pool thread: an
    // unreplaced dead worker would eventually wedge the whole service.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job.req {
        JobRequest::Encode(img) => encoder
            .encode_with(&img, enc_ws)
            .map(JobResult::Bytes)
            .map_err(|e| format!("encode failed: {e}")),
        JobRequest::Decode(bytes) => decoder
            .decode_with(&bytes, dec_ws)
            .map(JobResult::Image)
            .map_err(|e| format!("decode failed: {e}")),
        JobRequest::Classify(img) => match model {
            Some(net) => {
                let labels = net.predict(&image_to_tensor(&img));
                Ok(JobResult::Label(labels[0]))
            }
            None => Err("no model loaded".into()),
        },
    }))
    .unwrap_or_else(|panic| Err(format!("request rejected: {}", panic_message(&panic))));
    let done_ns = deepn_trace::tick();
    metrics
        .execute_seconds
        .record_ns(done_ns.saturating_sub(dequeued_ns));
    deepn_trace::record_span("serve.execute", dequeued_ns, done_ns);
    // A dropped receiver means the connection died; nothing to do.
    let _ = job.reply.send((job.index, result));
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".into())
}

/// The status label for a typed failure — the tagged path's analogue of
/// [`RequestTimer::fail`].
fn error_status(e: &ServeError) -> &'static str {
    match e {
        ServeError::Busy(_) => "busy",
        ServeError::Timeout(_) => "timeout",
        ServeError::Io(_) => "io",
        _ => "error",
    }
}

/// Enqueues a typed error reply for a tagged request on the connection's
/// writer. `release` is false when the failure must not retire the tag
/// (duplicate tags, pre-admission rejects).
fn reject_tagged(
    replies: &ReplySink,
    tag: u32,
    req_id: u64,
    span: &'static str,
    start_ns: u64,
    e: ServeError,
    release: bool,
) {
    let status = error_status(&e);
    replies.send(TaggedReply {
        tag,
        body: error_reply(e),
        release,
        req_id,
        span,
        start_ns,
        done_ns: deepn_trace::tick(),
        status,
    });
}

/// Executes one whole tagged request on a worker: deadline re-checked at
/// dequeue and between batch items, panics isolated per request, and the
/// complete v1-shaped reply body handed to the connection's writer.
/// Per-request payload bytes and error messages are identical to the v1
/// fan-out path's (`tests/tagged.rs` proves it property-wise).
fn execute_whole(
    job: WholeJob,
    encoder: &Encoder,
    decoder: &Decoder,
    model: Option<&Arc<Sequential>>,
    enc_ws: &mut EncodeWorkspace,
    dec_ws: &mut DecodeWorkspace,
    metrics: &ServeMetrics,
) {
    let WholeJob {
        work,
        tag,
        reply,
        deadline,
        submitted_ns,
        start_ns,
        req_id,
        span,
    } = job;
    let done = run_whole(
        work,
        tag,
        deadline,
        submitted_ns,
        start_ns,
        req_id,
        span,
        encoder,
        decoder,
        model,
        enc_ws,
        dec_ws,
        metrics,
    );
    reply.send(done);
}

/// The execution core shared by pool workers ([`execute_whole`]) and the
/// reader's quiet-connection inline path: runs one whole tagged request
/// to a finished [`TaggedReply`], with identical bytes, deadline checks,
/// panic isolation, and metrics either way.
#[allow(clippy::too_many_arguments)]
fn run_whole(
    work: WholeWork,
    tag: u32,
    deadline: Option<(Duration, Instant)>,
    submitted_ns: u64,
    start_ns: u64,
    req_id: u64,
    span: &'static str,
    encoder: &Encoder,
    decoder: &Decoder,
    model: Option<&Arc<Sequential>>,
    enc_ws: &mut EncodeWorkspace,
    dec_ws: &mut DecodeWorkspace,
    metrics: &ServeMetrics,
) -> TaggedReply {
    let dequeued_ns = deepn_trace::tick();
    metrics
        .queue_wait_seconds
        .record_ns(dequeued_ns.saturating_sub(submitted_ns));
    deepn_trace::record_span("serve.queue_wait", submitted_ns, dequeued_ns);
    let over_budget = || -> Option<ServeError> {
        deadline.as_ref().and_then(|(budget, end)| {
            (Instant::now() >= *end)
                .then(|| ServeError::Timeout(format!("request exceeded its {budget:?} budget")))
        })
    };
    let outcome = match over_budget() {
        // Dead on arrival: the deadline passed while queued, so skip the
        // work entirely instead of computing a reply past its budget.
        Some(e) => Err(e),
        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<Vec<u8>, ServeError> {
                match work {
                    WholeWork::Encode(images) => {
                        let mut w = ByteWriter::new();
                        w.put_len(images.len());
                        for img in &images {
                            if let Some(e) = over_budget() {
                                return Err(e);
                            }
                            let bytes = encoder
                                .encode_with(img, enc_ws)
                                .map_err(|e| ServeError::Remote(format!("encode failed: {e}")))?;
                            protocol::put_blob(&mut w, &bytes);
                        }
                        metrics.add(Ctr::ImagesEncoded, images.len() as u64);
                        Ok(w.into_bytes())
                    }
                    WholeWork::Decode(blobs) => {
                        let mut w = ByteWriter::new();
                        w.put_len(blobs.len());
                        for blob in &blobs {
                            if let Some(e) = over_budget() {
                                return Err(e);
                            }
                            let img = decoder
                                .decode_with(blob, dec_ws)
                                .map_err(|e| ServeError::Remote(format!("decode failed: {e}")))?;
                            protocol::put_image(&mut w, &img);
                        }
                        metrics.add(Ctr::ImagesDecoded, blobs.len() as u64);
                        Ok(w.into_bytes())
                    }
                    WholeWork::Classify(images) => {
                        let Some(net) = model else {
                            return Err(ServeError::Remote("no model loaded".into()));
                        };
                        let mut w = ByteWriter::new();
                        w.put_len(images.len());
                        for img in &images {
                            if let Some(e) = over_budget() {
                                return Err(e);
                            }
                            let labels = net.predict(&image_to_tensor(img));
                            w.put_u32(labels[0] as u32);
                        }
                        metrics.add(Ctr::ImagesClassified, images.len() as u64);
                        Ok(w.into_bytes())
                    }
                }
            },
        ))
        .unwrap_or_else(|panic| {
            Err(ServeError::Remote(format!(
                "request rejected: {}",
                panic_message(&panic)
            )))
        }),
    };
    let (body, status) = match outcome {
        Ok(payload) => {
            let mut body = Vec::with_capacity(1 + payload.len());
            body.push(STATUS_OK);
            body.extend_from_slice(&payload);
            (body, "ok")
        }
        Err(e) => {
            if matches!(e, ServeError::Timeout(_)) {
                metrics.inc(Ctr::RequestsTimedOut);
            }
            let status = error_status(&e);
            (error_reply(e), status)
        }
    };
    let done_ns = deepn_trace::tick();
    metrics
        .execute_seconds
        .record_ns(done_ns.saturating_sub(dequeued_ns));
    deepn_trace::record_span("serve.execute", dequeued_ns, done_ns);
    TaggedReply {
        tag,
        body,
        release: true,
        req_id,
        span,
        start_ns,
        done_ns,
        status,
    }
}
