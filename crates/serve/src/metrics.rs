//! The service's instrument set, built on a per-server `deepn-trace`
//! [`Registry`](deepn_trace::Registry).
//!
//! Per-server (not process-global) because tests spawn several servers in
//! one process and assert exact per-server counter values; the `Metrics`
//! scrape appends the process-global registry (pool and codec
//! instruments) after the server's own.
//!
//! The counter array below is the **single source of truth** for the
//! `Stats` wire payload: [`ServeMetrics::wire_counters`] reads it in
//! declaration order, which is the frozen wire order of
//! `docs/PROTOCOL.md` — append new counters at the end, never reorder.

use crate::server::ServerConfig;
use deepn_trace::{Counter, Gauge, Histogram};
use std::sync::Arc;

/// Index into the service's counter array — one variant per `Stats` wire
/// field, in wire order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ctr {
    /// Requests handled (all opcodes).
    Requests = 0,
    /// Images compressed.
    ImagesEncoded,
    /// Streams decompressed.
    ImagesDecoded,
    /// Images classified.
    ImagesClassified,
    /// Connections rejected with a typed busy frame.
    ConnectionsRejected,
    /// Requests rejected with a typed timeout frame.
    RequestsTimedOut,
    /// Request-frame bytes received.
    BytesIn,
    /// Reply-frame bytes sent.
    BytesOut,
    /// Connections that negotiated tagged framing (protocol v2).
    TaggedConnections,
    /// Requests executed under tagged framing.
    TaggedRequests,
}

/// Number of wire counters in the fixed `Stats` payload *prefix* — the
/// first eight `u64`s, frozen since the payload was specified. Counters
/// added later ([`Ctr::TaggedConnections`] onward) travel as **trailing**
/// `Stats` fields instead, because inserting them here would shift every
/// field after the prefix and break old clients.
pub(crate) const WIRE_COUNTERS: usize = 8;

/// Total counters, prefix plus trailing.
pub(crate) const COUNTERS: usize = 10;

/// One server's instruments: wire counters, config gauges, and the
/// request-phase latency histograms. Histograms are always live — they
/// are the service's metrics, not a debug mode; spans are the part gated
/// on tracing.
pub(crate) struct ServeMetrics {
    registry: deepn_trace::Registry,
    counters: [Arc<Counter>; COUNTERS],
    active_connections: Arc<Gauge>,
    /// High-water mark of completed-but-unwritten tagged replies queued
    /// for any one connection's writer (updated with `set_max`).
    pub(crate) reply_buffer_high_water: Arc<Gauge>,
    /// Whole-request wall time, read-to-reply, per request.
    pub(crate) request_seconds: Arc<Histogram>,
    /// Time a fan-out job spent queued before a worker dequeued it.
    pub(crate) queue_wait_seconds: Arc<Histogram>,
    /// Worker execution time per fan-out job.
    pub(crate) execute_seconds: Arc<Histogram>,
    /// Time writing one reply frame to the socket.
    pub(crate) reply_write_seconds: Arc<Histogram>,
    /// Time a completed tagged reply waited for its connection's writer.
    pub(crate) reply_wait_seconds: Arc<Histogram>,
}

impl ServeMetrics {
    /// Registers every instrument and pins the config gauges.
    pub(crate) fn new(config: &ServerConfig) -> ServeMetrics {
        let r = deepn_trace::Registry::new();
        // Stats wire order — append-only, never reorder (docs/PROTOCOL.md).
        let counters = [
            r.counter(
                "deepn_serve_requests_total",
                "Requests handled, all opcodes.",
            ),
            r.counter(
                "deepn_serve_images_encoded_total",
                "Images compressed (batch and streamed).",
            ),
            r.counter(
                "deepn_serve_images_decoded_total",
                "Compressed streams decoded.",
            ),
            r.counter("deepn_serve_images_classified_total", "Images classified."),
            r.counter(
                "deepn_serve_connections_rejected_total",
                "Connections rejected with a typed busy frame.",
            ),
            r.counter(
                "deepn_serve_requests_timed_out_total",
                "Requests rejected with a typed timeout frame.",
            ),
            r.counter(
                "deepn_serve_bytes_in_total",
                "Request-frame bytes received.",
            ),
            r.counter("deepn_serve_bytes_out_total", "Reply-frame bytes sent."),
            r.counter(
                "deepn_serve_tagged_connections_total",
                "Connections that negotiated tagged framing (protocol v2).",
            ),
            r.counter(
                "deepn_serve_tagged_requests_total",
                "Requests executed under tagged framing.",
            ),
        ];
        let active_connections = r.gauge(
            "deepn_serve_active_connections",
            "Connections currently being served.",
        );
        let workers = r.gauge("deepn_serve_workers", "Configured worker count.");
        let queue_depth = r.gauge("deepn_serve_queue_depth", "Configured job-queue bound.");
        let max_connections = r.gauge(
            "deepn_serve_max_connections",
            "Configured connection limit.",
        );
        workers.set(config.workers as u64);
        queue_depth.set(config.queue_depth as u64);
        max_connections.set(config.max_connections as u64);
        let request_seconds = r.histogram(
            "deepn_serve_request_seconds",
            "Whole-request latency, frame read to reply written.",
        );
        let queue_wait_seconds = r.histogram(
            "deepn_serve_queue_wait_seconds",
            "Time fan-out jobs spent queued before a worker picked them up.",
        );
        let execute_seconds = r.histogram(
            "deepn_serve_execute_seconds",
            "Worker execution time per fan-out job.",
        );
        let reply_write_seconds = r.histogram(
            "deepn_serve_reply_write_seconds",
            "Time writing one reply frame to the socket.",
        );
        let reply_buffer_high_water = r.gauge(
            "deepn_serve_reply_buffer_high_water",
            "High-water mark of completed tagged replies queued for one connection's writer.",
        );
        let reply_wait_seconds = r.histogram(
            "deepn_serve_reply_wait_seconds",
            "Time a completed tagged reply waited for its connection's writer.",
        );
        ServeMetrics {
            registry: r,
            counters,
            active_connections,
            reply_buffer_high_water,
            request_seconds,
            queue_wait_seconds,
            execute_seconds,
            reply_write_seconds,
            reply_wait_seconds,
        }
    }

    /// Adds one to a wire counter.
    pub(crate) fn inc(&self, c: Ctr) {
        self.counters[c as usize].inc();
    }

    /// Adds `n` to a wire counter.
    pub(crate) fn add(&self, c: Ctr, n: u64) {
        self.counters[c as usize].add(n);
    }

    /// Reads one wire counter.
    pub(crate) fn get(&self, c: Ctr) -> u64 {
        self.counters[c as usize].get()
    }

    /// The first eight wire counters in the frozen `Stats` payload-prefix
    /// order. Later counters are appended to `Stats` as trailing fields
    /// by the dispatcher ([`Ctr::TaggedConnections`] onward).
    pub(crate) fn wire_counters(&self) -> [u64; WIRE_COUNTERS] {
        std::array::from_fn(|i| self.counters[i].get())
    }

    /// Renders this server's instruments followed by the process-global
    /// registry (pool and codec instruments), in the Prometheus text
    /// format. `active` is the live connection count at scrape time.
    pub(crate) fn render(&self, active: u64) -> String {
        self.active_connections.set(active);
        let mut out = self.registry.render();
        out.push_str(&deepn_trace::global().render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_counters_follow_declaration_order() {
        let m = ServeMetrics::new(&ServerConfig::default());
        m.inc(Ctr::Requests);
        m.add(Ctr::BytesOut, 42);
        let wire = m.wire_counters();
        assert_eq!(wire[Ctr::Requests as usize], 1);
        assert_eq!(wire[Ctr::BytesOut as usize], 42);
        assert_eq!(wire[Ctr::ImagesEncoded as usize], 0);
        // Tagged counters live past the frozen prefix: readable via
        // `get`, never part of the eight-counter wire prefix.
        m.inc(Ctr::TaggedRequests);
        assert!(Ctr::TaggedRequests as usize >= WIRE_COUNTERS);
        assert_eq!(m.get(Ctr::TaggedRequests), 1);
        assert_eq!(m.get(Ctr::TaggedConnections), 0);
    }

    #[test]
    fn render_is_valid_prometheus_and_separate_per_server() {
        let a = ServeMetrics::new(&ServerConfig::default());
        let b = ServeMetrics::new(&ServerConfig::default());
        a.inc(Ctr::Requests);
        a.request_seconds.record_ns(1_000_000);
        let text = a.render(3);
        deepn_trace::prom::validate(&text).expect("scrape validates");
        assert!(text.contains("deepn_serve_requests_total 1"));
        assert!(text.contains("deepn_serve_active_connections 3"));
        assert!(text.contains("deepn_serve_request_seconds_count 1"));
        // A sibling server's registry is untouched.
        assert!(b.render(0).contains("deepn_serve_requests_total 0"));
    }
}
