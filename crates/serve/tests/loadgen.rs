//! In-process loadgen tests: a spawned server, a real storm, and the
//! report's reconciliation guarantees.

use deepn_codec::QuantTablePair;
use deepn_serve::loadgen::{self, LoadgenConfig};
use deepn_serve::{Client, Server, ServerConfig};
use std::time::Duration;

fn start(config: ServerConfig) -> deepn_serve::ServerHandle {
    Server::bind("127.0.0.1:0", QuantTablePair::standard(70), None, config)
        .expect("bind")
        .spawn()
}

fn shutdown(handle: deepn_serve::ServerHandle) {
    let mut client =
        Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn clean_soak_reconciles_and_reports_valid_json() {
    let handle = start(ServerConfig {
        workers: 3,
        queue_depth: 32,
        ..ServerConfig::default()
    });

    let mut cfg = LoadgenConfig::new(handle.addr());
    cfg.clients = 3;
    cfg.duration = Duration::from_millis(1200);
    cfg.pipeline_window = 2;
    cfg.churn = true;
    cfg.image_side = 16;
    cfg.batch = 2;
    cfg.scrape_interval = Duration::from_millis(250);
    let report = loadgen::run(&cfg).expect("loadgen run");
    shutdown(handle);

    assert!(
        report.is_clean(),
        "clean soak raised anomalies: {:?}",
        report.anomalies
    );
    assert!(report.totals.ok > 0, "no successful requests");
    assert!(report.rps > 0.0);
    assert!(
        report.scrapes >= 2,
        "need a window: {} scrapes",
        report.scrapes
    );
    assert!(
        !report.totals.latency_ns.is_empty(),
        "serial latencies missing"
    );

    // The reconciliation invariant, asserted directly: every non-busy
    // client outcome plus every mid-window scrape is one server-counted
    // request.
    let delta = report.server.requests_delta.expect("requests_total delta");
    let expected = (report.totals.ok + report.totals.timeout + report.totals.error) as f64
        + (report.scrapes as f64 - 1.0);
    assert!(
        (delta - expected).abs() <= report.totals.io_error as f64,
        "server delta {delta} vs client-side {expected} (io {})",
        report.totals.io_error
    );

    let json = report.to_json();
    deepn_trace::export::validate_json(&json).expect("report JSON validates");
    let doc = deepn_trace::export::parse_json(&json).expect("report JSON parses");
    assert!(doc.get("loadgen/serial_request").is_some());
    let summary = doc.get("loadgen_summary").expect("summary");
    assert_eq!(
        summary.get("requests_ok").and_then(|v| v.as_f64()),
        Some(report.totals.ok as f64)
    );
}

#[test]
fn busy_storm_is_counted_not_fatal_and_breaches_the_reject_budget() {
    // One admission slot goes to the scraper's persistent connection;
    // the four load clients fight over the other, so most attempts are
    // rejected busy.
    let handle = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        max_connections: 2,
        ..ServerConfig::default()
    });

    let mut cfg = LoadgenConfig::new(handle.addr());
    cfg.clients = 4;
    cfg.duration = Duration::from_millis(1200);
    cfg.pipeline_window = 0;
    cfg.image_side = 16;
    cfg.scrape_interval = Duration::from_millis(250);
    let report = loadgen::run(&cfg).expect("storm must be data, not an error");
    shutdown(handle);

    assert!(report.totals.busy > 0, "storm produced no busy rejections");
    assert!(
        !report.is_clean(),
        "a near-total rejection storm must breach the 5% reject budget"
    );
    assert!(
        report.anomalies.iter().any(|a| a.contains("reject_rate")),
        "missing reject_rate flag: {:?}",
        report.anomalies
    );
    // The server's rejection counter must account for at least every
    // busy the clients saw.
    let rejected = report.server.rejected_delta.expect("rejected delta");
    assert!(
        rejected >= (report.totals.busy + report.scraper_busy) as f64,
        "server counted {rejected} rejections for {} client-side busies",
        report.totals.busy
    );
    // The report still renders and validates under storm conditions.
    deepn_trace::export::validate_json(&report.to_json()).expect("storm report JSON");
}
