//! In-process end-to-end tests: a spawned server, a TCP client, and
//! byte-identity against the local codec.

use deepn_codec::{Decoder, Encoder, QuantTablePair};
use deepn_dataset::{DatasetSpec, ImageSet};
use deepn_serve::{Client, ServeError, Server, ServerConfig};
use std::time::Duration;

fn start(tables: QuantTablePair) -> (deepn_serve::ServerHandle, Client) {
    let server = Server::bind(
        "127.0.0.1:0",
        tables,
        None,
        ServerConfig {
            workers: 3,
            queue_depth: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    (handle, client)
}

#[test]
fn batch_round_trip_is_byte_identical_to_local_codec() {
    let tables = QuantTablePair::standard(70);
    let set = ImageSet::generate(&DatasetSpec::tiny(), 11);
    let images = &set.images()[..8];
    let (handle, mut client) = start(tables.clone());

    // Service-side encode must equal a local encode with the same tables.
    let remote = client.encode_batch(images).expect("encode batch");
    let encoder = Encoder::with_tables(tables);
    for (img, remote_bytes) in images.iter().zip(&remote) {
        assert_eq!(&encoder.encode(img).expect("local encode"), remote_bytes);
    }

    // Service-side decode must equal a local decode of the same streams.
    let decoded = client.decode_batch(&remote).expect("decode batch");
    let decoder = Decoder::new();
    for (stream, dec) in remote.iter().zip(&decoded) {
        assert_eq!(&decoder.decode(stream).expect("local decode"), dec);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.images_encoded, images.len() as u64);
    assert_eq!(stats.images_decoded, images.len() as u64);
    assert_eq!(stats.workers, 3);
    assert!(!stats.has_model);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn oversized_batches_flow_through_the_bounded_queue() {
    // More jobs than queue_depth (8) exercises backpressure rather than
    // failure.
    let set = ImageSet::generate(&DatasetSpec::tiny(), 5);
    let images: Vec<_> = std::iter::repeat_with(|| set.images().iter().cloned())
        .take(4)
        .flatten()
        .collect();
    assert!(images.len() > 8);
    let (handle, mut client) = start(QuantTablePair::uniform(6));
    let streams = client.encode_batch(&images).expect("large batch");
    assert_eq!(streams.len(), images.len());
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn errors_are_remote_not_fatal() {
    let (handle, mut client) = start(QuantTablePair::standard(50));
    // Decoding garbage must produce a typed remote error...
    let err = client
        .decode_batch(&[vec![0xDE, 0xAD, 0xBE, 0xEF]])
        .expect_err("garbage cannot decode");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // ...and classify without a model likewise...
    let set = ImageSet::generate(&DatasetSpec::tiny(), 2);
    let err = client
        .classify(&set.images()[..1])
        .expect_err("no model loaded");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // ...while the connection stays serviceable.
    client.ping().expect("still alive");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn geometry_mismatch_costs_a_request_not_a_worker() {
    // A model built for 16x16 inputs, served with a single worker: a
    // wrong-geometry classify must come back as a remote error while the
    // worker survives to serve correct requests afterwards.
    let model = deepn_nn::zoo::mlp_probe(3, 16, 16, 4, 3);
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        Some(model),
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");

    let bad = deepn_codec::RgbImage::gradient(5, 5);
    for _ in 0..3 {
        let err = client
            .classify(std::slice::from_ref(&bad))
            .expect_err("wrong geometry");
        assert!(matches!(err, ServeError::Remote(_)), "{err}");
    }
    // The lone worker is still alive: a well-formed request succeeds.
    let good = deepn_codec::RgbImage::gradient(16, 16);
    let labels = client.classify(&[good]).expect("classify");
    assert_eq!(labels.len(), 1);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn over_limit_connections_get_a_typed_busy_rejection() {
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut first = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    // The ping guarantees the first connection is registered before the
    // second one is accepted.
    first.ping().expect("within the limit");
    let mut second = Client::connect(handle.addr()).expect("tcp connect still succeeds");
    let err = second.ping().expect_err("over the connection limit");
    assert!(matches!(err, ServeError::Busy(_)), "{err}");
    // The admitted connection keeps working and observes the rejection.
    first.ping().expect("first connection unaffected");
    let stats = first.stats().expect("stats");
    assert_eq!(stats.connections_rejected, 1);
    assert_eq!(stats.max_connections, 1);
    // Dropping the admitted connection frees the slot for a successor.
    drop(first);
    let mut third = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        // The freed slot appears once the server reaps the first
        // connection's reader thread (bounded by its 200 ms read timeout).
        match third.ping() {
            Ok(()) => break,
            Err(ServeError::Busy(_)) if std::time::Instant::now() < deadline => {
                third = Client::connect(handle.addr()).expect("reconnect");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    // A saturated service must still be stoppable: with `third` holding
    // the only slot, shutdown over a fresh (over-limit) connection is
    // honored rather than busy-rejected.
    let mut admin = Client::connect(handle.addr()).expect("connect");
    admin.shutdown().expect("shutdown honored over the limit");
    handle.join();
}

#[test]
fn exhausted_request_budget_is_a_typed_timeout() {
    // A zero budget is spent before any job can finish: every batch
    // request deterministically comes back as a typed timeout frame.
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            request_timeout: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    let set = ImageSet::generate(&DatasetSpec::tiny(), 3);
    let err = client
        .encode_batch(&set.images()[..2])
        .expect_err("zero budget");
    assert!(matches!(err, ServeError::Timeout(_)), "{err}");
    // Ping carries no jobs, so the connection itself stays healthy.
    client.ping().expect("connection survives a timeout");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_timed_out, 1);
    // An enabled sub-millisecond budget reports as 1, never as the
    // "disabled" 0.
    assert_eq!(stats.request_timeout_ms, 1);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn compress_stream_is_byte_identical_to_local_single_pass_encode() {
    let tables = QuantTablePair::standard(65);
    let (handle, mut client) = start(tables.clone());
    // Ragged height (not a multiple of 8) exercises the short final strip.
    for (w, h) in [(45, 19), (16, 16), (3, 1)] {
        let img = deepn_codec::RgbImage::gradient(w, h);
        let mut session = client.begin_compress_stream(w, h).expect("begin");
        let mut strip = deepn_codec::PixelStrip::new();
        for s in 0..session.strip_count() {
            assert!(strip.copy_from_image(&img, s));
            session.send_strip(strip.as_bytes()).expect("strip");
        }
        let remote = session.finish().expect("finish");
        // Single-pass network streaming cannot rewind for the optimized-
        // Huffman analysis pass, so the contract is byte-identity with the
        // standard-table local encode.
        let local = Encoder::with_tables(tables.clone())
            .optimize_huffman(false)
            .encode(&img)
            .expect("local encode");
        assert_eq!(remote, local, "{w}x{h}");
        // The stream decodes like any other baseline JFIF stream.
        assert_eq!(Decoder::new().decode(&remote).expect("decodes").width(), w);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.images_encoded, 3);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn decompress_stream_is_byte_identical_to_local_decode() {
    let tables = QuantTablePair::standard(65);
    let (handle, mut client) = start(tables.clone());
    let encoder = Encoder::with_tables(tables);
    let decoder = Decoder::new();
    // Ragged height (not a multiple of 8) exercises the short final strip.
    for (w, h) in [(45, 19), (16, 16), (3, 1)] {
        let img = deepn_codec::RgbImage::gradient(w, h);
        let jfif = encoder.encode(&img).expect("local encode");
        let mut session = client.begin_decompress_stream(&jfif).expect("begin");
        assert_eq!((session.width(), session.height()), (w, h));
        let mut strip = deepn_codec::PixelStrip::new();
        let mut pixels = Vec::new();
        let mut strips = 0;
        while session.next_strip(&mut strip).expect("strip") {
            assert_eq!(strip.width(), w);
            assert_eq!(strip.rows(), session.strip_rows(strips));
            pixels.extend_from_slice(strip.as_bytes());
            strips += 1;
        }
        assert!(session.is_complete());
        assert_eq!(strips, session.strip_count());
        // The streamed pixels must equal the local whole-image decode.
        let local = decoder.decode(&jfif).expect("local decode");
        assert_eq!(pixels, local.as_bytes(), "{w}x{h}");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.images_decoded, 3);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn decompress_stream_failures_are_typed_and_keep_the_connection() {
    let (handle, mut client) = start(QuantTablePair::standard(70));
    // Garbage that cannot even parse as headers fails at the begin frame.
    let err = client
        .begin_decompress_stream(&[0xDE, 0xAD, 0xBE, 0xEF])
        .expect_err("garbage cannot decode");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // Unlike a failed CompressStream, every failure here lands on a frame
    // boundary, so the same connection keeps serving.
    client.ping().expect("connection still framed");

    // A stream truncated mid-scan parses its headers (the begin frame and
    // some strips arrive) and then fails with a typed error frame in place
    // of a strip frame.
    let img = deepn_codec::RgbImage::gradient(64, 64);
    let jfif = Encoder::with_tables(QuantTablePair::standard(70))
        .encode(&img)
        .expect("encode");
    let truncated = &jfif[..jfif.len() - 40];
    let mut session = client.begin_decompress_stream(truncated).expect("begin");
    let mut strip = deepn_codec::PixelStrip::new();
    let err = loop {
        match session.next_strip(&mut strip) {
            Ok(true) => continue,
            Ok(false) => panic!("a truncated scan cannot complete"),
            Err(e) => break e,
        }
    };
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // A session ended by a typed error is over but NOT complete — the
    // partial output must not pass for a whole image.
    assert!(!session.is_complete());
    assert!(!session.next_strip(&mut strip).expect("session is over"));
    drop(session);
    // The typed mid-stream error also lands on a frame boundary.
    client.ping().expect("connection still framed");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn compress_and_decompress_streams_round_trip_without_materializing() {
    // The full wire round trip: pixels up via CompressStream, pixels back
    // via DecompressStream, byte-identical to the local single-pass codec
    // end to end.
    let tables = QuantTablePair::standard(65);
    let (handle, mut client) = start(tables.clone());
    let img = deepn_codec::RgbImage::gradient(50, 37);
    let mut up = client.begin_compress_stream(50, 37).expect("begin up");
    let mut strip = deepn_codec::PixelStrip::new();
    for s in 0..up.strip_count() {
        assert!(strip.copy_from_image(&img, s));
        up.send_strip(strip.as_bytes()).expect("strip up");
    }
    let jfif = up.finish().expect("finish up");
    let mut pixels = Vec::new();
    {
        let mut down = client.begin_decompress_stream(&jfif).expect("begin down");
        while down.next_strip(&mut strip).expect("strip down") {
            pixels.extend_from_slice(strip.as_bytes());
        }
    }
    let local = Decoder::new().decode(&jfif).expect("local decode");
    assert_eq!(pixels, local.as_bytes());
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn abandoning_a_decompress_session_does_not_poison_the_client() {
    let (handle, mut client) = start(QuantTablePair::standard(70));
    let img = deepn_codec::RgbImage::gradient(10, 40);
    let jfif = Encoder::with_tables(QuantTablePair::standard(70))
        .optimize_huffman(false)
        .encode(&img)
        .expect("encode");
    {
        let mut session = client.begin_decompress_stream(&jfif).expect("begin");
        let mut strip = deepn_codec::PixelStrip::new();
        assert!(session.next_strip(&mut strip).expect("first strip"));
        assert!(!session.is_complete());
        // Dropped with strips still on the wire: the session teardown must
        // abandon the connection so they cannot masquerade as the next
        // reply.
    }
    client
        .ping()
        .expect("fresh connection after abandoned session");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn mis_sized_strips_are_rejected_client_side_and_server_side() {
    let (handle, mut client) = start(QuantTablePair::standard(70));
    let mut session = client.begin_compress_stream(10, 12).expect("begin");
    // Client-side validation: wrong byte count never leaves the process.
    let err = session.send_strip(&[0u8; 5]).expect_err("short strip");
    assert!(matches!(err, ServeError::Protocol(_)), "{err}");
    // A correct session still works on the same client afterwards (the
    // begin frame above is answered once its strips arrive).
    let img = deepn_codec::RgbImage::gradient(10, 12);
    let mut strip = deepn_codec::PixelStrip::new();
    for s in 0..session.strip_count() {
        strip.copy_from_image(&img, s);
        session.send_strip(strip.as_bytes()).expect("strip");
    }
    assert!(!session.finish().expect("finish").is_empty());
    client.ping().expect("connection still framed");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn abandoning_a_stream_session_does_not_poison_the_client() {
    let (handle, mut client) = start(QuantTablePair::standard(70));
    {
        let mut session = client.begin_compress_stream(10, 20).expect("begin");
        assert!(!session.is_complete());
        let img = deepn_codec::RgbImage::gradient(10, 20);
        let mut strip = deepn_codec::PixelStrip::new();
        strip.copy_from_image(&img, 0);
        session.send_strip(strip.as_bytes()).expect("first strip");
        // Dropped here with 1 of 3 strips sent: the server is mid-stream
        // on this connection, so the session teardown must abandon it.
    }
    // The next request must NOT be misread as a strip frame: the client
    // reconnects and the ping succeeds cleanly.
    client
        .ping()
        .expect("fresh connection after abandoned session");
    // A full session on the same client still works.
    let img = deepn_codec::RgbImage::gradient(10, 20);
    let mut session = client.begin_compress_stream(10, 20).expect("begin");
    let mut strip = deepn_codec::PixelStrip::new();
    for s in 0..session.strip_count() {
        strip.copy_from_image(&img, s);
        session.send_strip(strip.as_bytes()).expect("strip");
    }
    assert!(session.is_complete());
    assert!(!session.finish().expect("finish").is_empty());
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn metrics_render_prometheus_text() {
    let (handle, mut client) = start(QuantTablePair::standard(75));
    client.ping().expect("ping");
    let set = ImageSet::generate(&DatasetSpec::tiny(), 7);
    client.encode_batch(&set.images()[..2]).expect("encode");
    let text = client.metrics().expect("metrics");
    for needle in [
        "# TYPE deepn_serve_requests_total counter",
        "deepn_serve_images_encoded_total 2",
        "# TYPE deepn_serve_active_connections gauge",
        "deepn_serve_bytes_in_total",
        "deepn_serve_bytes_out_total",
        "deepn_serve_workers 3",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn persistent_client_reconnects_transparently_after_a_busy_close() {
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut occupant =
        Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    occupant.ping().expect("within the limit");
    // The second client is busy-rejected and its connection closed by the
    // server — the classic poisoned-pooled-connection scenario.
    let mut second = Client::connect(handle.addr()).expect("tcp connect");
    let err = second.ping().expect_err("over the connection limit");
    assert!(matches!(err, ServeError::Busy(_)), "{err}");
    // Free the slot, then reuse `second` WITHOUT reconnecting manually:
    // the client must notice the dead pooled connection and replay the
    // request on a fresh one.
    drop(occupant);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match second.ping() {
            Ok(()) => break,
            // The freed slot appears once the server reaps the occupant's
            // reader thread; a busy rejection meanwhile also closes the
            // new connection, which the next attempt must again survive.
            Err(ServeError::Busy(_)) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("transparent reconnect failed: {e}"),
        }
    }
    second.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn concurrent_clients_are_served() {
    let (handle, client) = start(QuantTablePair::uniform(4));
    let addr = handle.addr();
    let set = ImageSet::generate(&DatasetSpec::tiny(), 9);
    let images: Vec<_> = set.images()[..4].to_vec();
    let mut joins = Vec::new();
    for _ in 0..4 {
        let images = images.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let streams = c.encode_batch(&images).expect("encode");
            let back = c.decode_batch(&streams).expect("decode");
            assert_eq!(back.len(), images.len());
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    drop(client);
    // Shutdown via the handle instead of a client round trip.
    handle.request_shutdown();
    handle.join();
}
