//! In-process end-to-end tests: a spawned server, a TCP client, and
//! byte-identity against the local codec.

use deepn_codec::{Decoder, Encoder, QuantTablePair};
use deepn_dataset::{DatasetSpec, ImageSet};
use deepn_serve::{Client, ServeError, Server, ServerConfig};
use std::time::Duration;

fn start(tables: QuantTablePair) -> (deepn_serve::ServerHandle, Client) {
    let server = Server::bind(
        "127.0.0.1:0",
        tables,
        None,
        ServerConfig {
            workers: 3,
            queue_depth: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    (handle, client)
}

#[test]
fn batch_round_trip_is_byte_identical_to_local_codec() {
    let tables = QuantTablePair::standard(70);
    let set = ImageSet::generate(&DatasetSpec::tiny(), 11);
    let images = &set.images()[..8];
    let (handle, mut client) = start(tables.clone());

    // Service-side encode must equal a local encode with the same tables.
    let remote = client.encode_batch(images).expect("encode batch");
    let encoder = Encoder::with_tables(tables);
    for (img, remote_bytes) in images.iter().zip(&remote) {
        assert_eq!(&encoder.encode(img).expect("local encode"), remote_bytes);
    }

    // Service-side decode must equal a local decode of the same streams.
    let decoded = client.decode_batch(&remote).expect("decode batch");
    let decoder = Decoder::new();
    for (stream, dec) in remote.iter().zip(&decoded) {
        assert_eq!(&decoder.decode(stream).expect("local decode"), dec);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.images_encoded, images.len() as u64);
    assert_eq!(stats.images_decoded, images.len() as u64);
    assert_eq!(stats.workers, 3);
    assert!(!stats.has_model);

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn oversized_batches_flow_through_the_bounded_queue() {
    // More jobs than queue_depth (8) exercises backpressure rather than
    // failure.
    let set = ImageSet::generate(&DatasetSpec::tiny(), 5);
    let images: Vec<_> = std::iter::repeat_with(|| set.images().iter().cloned())
        .take(4)
        .flatten()
        .collect();
    assert!(images.len() > 8);
    let (handle, mut client) = start(QuantTablePair::uniform(6));
    let streams = client.encode_batch(&images).expect("large batch");
    assert_eq!(streams.len(), images.len());
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn errors_are_remote_not_fatal() {
    let (handle, mut client) = start(QuantTablePair::standard(50));
    // Decoding garbage must produce a typed remote error...
    let err = client
        .decode_batch(&[vec![0xDE, 0xAD, 0xBE, 0xEF]])
        .expect_err("garbage cannot decode");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // ...and classify without a model likewise...
    let set = ImageSet::generate(&DatasetSpec::tiny(), 2);
    let err = client
        .classify(&set.images()[..1])
        .expect_err("no model loaded");
    assert!(matches!(err, ServeError::Remote(_)), "{err}");
    // ...while the connection stays serviceable.
    client.ping().expect("still alive");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn geometry_mismatch_costs_a_request_not_a_worker() {
    // A model built for 16x16 inputs, served with a single worker: a
    // wrong-geometry classify must come back as a remote error while the
    // worker survives to serve correct requests afterwards.
    let model = deepn_nn::zoo::mlp_probe(3, 16, 16, 4, 3);
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        Some(model),
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");

    let bad = deepn_codec::RgbImage::gradient(5, 5);
    for _ in 0..3 {
        let err = client
            .classify(std::slice::from_ref(&bad))
            .expect_err("wrong geometry");
        assert!(matches!(err, ServeError::Remote(_)), "{err}");
    }
    // The lone worker is still alive: a well-formed request succeeds.
    let good = deepn_codec::RgbImage::gradient(16, 16);
    let labels = client.classify(&[good]).expect("classify");
    assert_eq!(labels.len(), 1);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn over_limit_connections_get_a_typed_busy_rejection() {
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut first = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    // The ping guarantees the first connection is registered before the
    // second one is accepted.
    first.ping().expect("within the limit");
    let mut second = Client::connect(handle.addr()).expect("tcp connect still succeeds");
    let err = second.ping().expect_err("over the connection limit");
    assert!(matches!(err, ServeError::Busy(_)), "{err}");
    // The admitted connection keeps working and observes the rejection.
    first.ping().expect("first connection unaffected");
    let stats = first.stats().expect("stats");
    assert_eq!(stats.connections_rejected, 1);
    assert_eq!(stats.max_connections, 1);
    // Dropping the admitted connection frees the slot for a successor.
    drop(first);
    let mut third = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        // The freed slot appears once the server reaps the first
        // connection's reader thread (bounded by its 200 ms read timeout).
        match third.ping() {
            Ok(()) => break,
            Err(ServeError::Busy(_)) if std::time::Instant::now() < deadline => {
                third = Client::connect(handle.addr()).expect("reconnect");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    // A saturated service must still be stoppable: with `third` holding
    // the only slot, shutdown over a fresh (over-limit) connection is
    // honored rather than busy-rejected.
    let mut admin = Client::connect(handle.addr()).expect("connect");
    admin.shutdown().expect("shutdown honored over the limit");
    handle.join();
}

#[test]
fn exhausted_request_budget_is_a_typed_timeout() {
    // A zero budget is spent before any job can finish: every batch
    // request deterministically comes back as a typed timeout frame.
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            request_timeout: Some(Duration::ZERO),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    let set = ImageSet::generate(&DatasetSpec::tiny(), 3);
    let err = client
        .encode_batch(&set.images()[..2])
        .expect_err("zero budget");
    assert!(matches!(err, ServeError::Timeout(_)), "{err}");
    // Ping carries no jobs, so the connection itself stays healthy.
    client.ping().expect("connection survives a timeout");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_timed_out, 1);
    // An enabled sub-millisecond budget reports as 1, never as the
    // "disabled" 0.
    assert_eq!(stats.request_timeout_ms, 1);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn concurrent_clients_are_served() {
    let (handle, client) = start(QuantTablePair::uniform(4));
    let addr = handle.addr();
    let set = ImageSet::generate(&DatasetSpec::tiny(), 9);
    let images: Vec<_> = set.images()[..4].to_vec();
    let mut joins = Vec::new();
    for _ in 0..4 {
        let images = images.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let streams = c.encode_batch(&images).expect("encode");
            let back = c.decode_batch(&streams).expect("decode");
            assert_eq!(back.len(), images.len());
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    drop(client);
    // Shutdown via the handle instead of a client round trip.
    handle.request_shutdown();
    handle.join();
}
