//! Protocol v2 (tagged framing) semantics, driven at the frame level:
//! negotiation and degradation, out-of-order reply delivery, duplicate
//! and unknown tags, streaming-op rejection, replay after reconnect with
//! a partially acknowledged window, and a property test pinning every
//! tagged reply byte-identical (per request) to its v1 twin.

use deepn_codec::{Encoder, QuantTablePair, RgbImage};
use deepn_serve::protocol::{self, Opcode, FEATURE_TAGGED, STATUS_ERR, STATUS_OK};
use deepn_serve::{Client, PipelineReply, Server, ServerConfig};
use deepn_store::ByteWriter;
use proptest::collection::vec as prop_vec;
use proptest::{any, ProptestConfig, Strategy, TestRunner};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn start(config: ServerConfig) -> deepn_serve::ServerHandle {
    Server::bind("127.0.0.1:0", QuantTablePair::standard(70), None, config)
        .expect("bind")
        .spawn()
}

/// Raw-stream `Hello` exchange; returns the granted feature bitmask.
fn hello(conn: &mut TcpStream) -> u32 {
    let mut req = vec![Opcode::Hello as u8];
    req.extend_from_slice(&FEATURE_TAGGED.to_le_bytes());
    protocol::write_frame(conn, &req).expect("hello frame");
    let reply = protocol::read_frame(conn)
        .expect("hello reply")
        .expect("reply before eof");
    assert_eq!(reply[0], STATUS_OK, "hello rejected: {reply:?}");
    u32::from_le_bytes(reply[1..5].try_into().expect("granted bitmask"))
}

fn send_tagged(conn: &mut TcpStream, tag: u32, inner: &[u8]) {
    protocol::write_frame(conn, &protocol::tagged_body(tag, inner)).expect("tagged frame");
}

/// Reads one tagged reply: `(tag, status, payload)`.
fn recv_tagged(conn: &mut TcpStream) -> (u32, u8, Vec<u8>) {
    let body = protocol::read_frame(conn)
        .expect("tagged reply")
        .expect("reply before eof");
    let (tag, rest) = protocol::split_tagged(&body).expect("tagged reply shape");
    (tag, rest[0], rest[1..].to_vec())
}

/// A heavy `EncodeBatch` request body — enough work to keep a worker
/// busy for many milliseconds, so inline-answered frames sent after it
/// deterministically reply first.
fn heavy_encode_request(copies: usize) -> Vec<u8> {
    let img = RgbImage::gradient(128, 128);
    let mut w = ByteWriter::new();
    w.put_u8(Opcode::EncodeBatch as u8);
    w.put_len(copies);
    for _ in 0..copies {
        protocol::put_image(&mut w, &img);
    }
    w.into_bytes()
}

#[test]
fn hello_upgrades_the_client_and_one_shots_round_trip_tagged() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    assert!(
        client.upgrade_tagged().expect("negotiate"),
        "grant expected"
    );
    assert!(client.is_tagged());
    assert_eq!(client.hellos_sent(), 1);

    // One-shot calls ride the tagged framing transparently.
    let img = RgbImage::gradient(24, 16);
    let blobs = client
        .encode_batch(std::slice::from_ref(&img))
        .expect("tagged encode");
    let local = Encoder::with_tables(QuantTablePair::standard(70))
        .encode(&img)
        .expect("local encode");
    assert_eq!(blobs, vec![local]);
    client.ping().expect("tagged ping");

    // The trailing Stats fields count this connection and its requests
    // (encode + ping + the stats request itself).
    let stats = client.stats().expect("tagged stats");
    assert_eq!(stats.tagged_connections, 1);
    assert_eq!(stats.tagged_requests, 3);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn hello_denial_degrades_the_client_to_v1() {
    // A scripted "old service": answers `Hello` with a typed error (what
    // a pre-v2 build does with an unknown opcode), then serves one v1
    // ping. The client must degrade cleanly, not fail.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("connection");
        let body = protocol::read_frame(&mut conn)
            .expect("hello frame")
            .expect("frame before eof");
        assert_eq!(body[0], Opcode::Hello as u8);
        let mut reply = ByteWriter::new();
        reply.put_u8(STATUS_ERR);
        reply.put_string("unknown opcode 9");
        protocol::write_frame(&mut conn, reply.as_bytes()).expect("denial");
        // The next request must be a plain v1 ping: no tag prefix.
        let body = protocol::read_frame(&mut conn)
            .expect("ping frame")
            .expect("frame before eof");
        assert_eq!(body, vec![Opcode::Ping as u8]);
        protocol::write_frame(&mut conn, &[STATUS_OK]).expect("pong");
    });

    let mut client = Client::connect(addr).expect("connect");
    assert!(!client.upgrade_tagged().expect("degrades, not errors"));
    assert!(!client.is_tagged());
    client.ping().expect("v1 ping still works");
    drop(client);
    script.join().expect("script");
}

#[test]
fn tagged_replies_arrive_out_of_order() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    assert_eq!(hello(&mut conn) & FEATURE_TAGGED, FEATURE_TAGGED);

    // A heavy encode (tag 7) followed by a ping (tag 9): the ping is
    // answered inline by the reader while the worker is still encoding,
    // so its reply must overtake the encode's.
    send_tagged(&mut conn, 7, &heavy_encode_request(8));
    send_tagged(&mut conn, 9, &[Opcode::Ping as u8]);
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (9, STATUS_OK), "ping reply overtakes");
    let (tag, status, payload) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (7, STATUS_OK));
    assert_eq!(
        u32::from_le_bytes(payload[..4].try_into().expect("count")),
        8,
        "encode reply carries all blobs"
    );

    send_tagged(&mut conn, 1, &[Opcode::Shutdown as u8]);
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (1, STATUS_OK));
    handle.join();
}

#[test]
fn duplicate_in_flight_tag_is_rejected_without_killing_the_original() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    hello(&mut conn);

    // Tag 5 is busy encoding when a second request reuses it: the
    // duplicate gets a typed error (inline, so it replies first) and the
    // original still completes under the same tag.
    send_tagged(&mut conn, 5, &heavy_encode_request(8));
    send_tagged(&mut conn, 5, &[Opcode::Ping as u8]);
    let (tag, status, payload) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (5, STATUS_ERR));
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("already in flight"), "{msg}");
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (5, STATUS_OK), "original survives");

    // The rejection did not release the original's window slot early and
    // completion did release it: tag 5 is reusable now.
    send_tagged(&mut conn, 5, &[Opcode::Ping as u8]);
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (5, STATUS_OK));

    send_tagged(&mut conn, 6, &[Opcode::Shutdown as u8]);
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (6, STATUS_OK));
    handle.join();
}

#[test]
fn streaming_second_hello_and_runt_frames_on_a_tagged_connection() {
    let handle = start(ServerConfig::default());
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    hello(&mut conn);

    // Streaming ops and a second Hello are typed errors that leave the
    // connection usable.
    send_tagged(&mut conn, 1, &[Opcode::CompressStream as u8]);
    let (tag, status, payload) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (1, STATUS_ERR));
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("streaming ops"), "{msg}");

    let mut second = vec![Opcode::Hello as u8];
    second.extend_from_slice(&FEATURE_TAGGED.to_le_bytes());
    send_tagged(&mut conn, 2, &second);
    let (tag, status, payload) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (2, STATUS_ERR));
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("already negotiated"), "{msg}");

    send_tagged(&mut conn, 3, &[Opcode::Ping as u8]);
    let (tag, status, _) = recv_tagged(&mut conn);
    assert_eq!((tag, status), (3, STATUS_OK), "connection still usable");

    // A frame too short to carry a tag desynchronizes the framing: the
    // server closes the connection instead of guessing.
    protocol::write_frame(&mut conn, &[1, 2, 3]).expect("runt frame");
    assert_eq!(
        protocol::read_frame(&mut conn).expect("clean close"),
        None,
        "runt tagged frame must be fatal"
    );

    let mut closer = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    closer.shutdown().expect("shutdown");
    handle.join();
}

/// The scripted half of the replay test: grants tagged framing, reads
/// `total` tagged pings, acknowledges the first `ack`, drops the
/// connection, then expects a re-`Hello` and exactly the unacknowledged
/// tags again. Returns the replayed tags in arrival order.
fn scripted_tagged_partial_ack(listener: TcpListener, total: usize, ack: usize) -> Vec<u32> {
    let grant_hello = |conn: &mut TcpStream| {
        let body = protocol::read_frame(conn)
            .expect("hello frame")
            .expect("frame before eof");
        assert_eq!(body[0], Opcode::Hello as u8, "expected Hello, got {body:?}");
        let mut reply = vec![STATUS_OK];
        reply.extend_from_slice(&FEATURE_TAGGED.to_le_bytes());
        protocol::write_frame(conn, &reply).expect("grant");
    };
    let read_ping = |conn: &mut TcpStream| -> u32 {
        let body = protocol::read_frame(conn)
            .expect("tagged frame")
            .expect("frame before eof");
        let (tag, rest) = protocol::split_tagged(&body).expect("tagged request");
        assert_eq!(rest, [Opcode::Ping as u8], "tag {tag}");
        tag
    };
    let (mut conn, _) = listener.accept().expect("first connection");
    grant_hello(&mut conn);
    let mut tags = Vec::new();
    for _ in 0..total {
        tags.push(read_ping(&mut conn));
    }
    for &tag in &tags[..ack] {
        protocol::write_frame(&mut conn, &protocol::tagged_body(tag, &[STATUS_OK])).expect("ack");
    }
    drop(conn); // total - ack requests die unacknowledged

    let (mut conn, _) = listener.accept().expect("replay connection");
    grant_hello(&mut conn); // tagged framing must be renegotiated first
    let mut replayed = Vec::new();
    for _ in 0..total - ack {
        let tag = read_ping(&mut conn);
        protocol::write_frame(&mut conn, &protocol::tagged_body(tag, &[STATUS_OK])).expect("ack");
        replayed.push(tag);
    }
    assert_eq!(
        protocol::read_frame(&mut conn).expect("eof"),
        None,
        "nothing beyond the unacknowledged window may be replayed"
    );
    replayed
}

#[test]
fn tagged_window_replays_after_reconnect_with_partial_acks() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || scripted_tagged_partial_ack(listener, 5, 2));

    {
        let mut client = Client::connect(addr).expect("connect");
        assert!(client.upgrade_tagged().expect("negotiate"));
        let mut pipe = client.pipeline(5);
        for _ in 0..5 {
            pipe.submit_ping().expect("submit");
        }
        // Replies for tags 0–1 land on the original connection; the close
        // forces a reconnect that re-negotiates and replays tags 2–4 under
        // their original tags.
        for i in 0..5 {
            match pipe.recv() {
                Ok(PipelineReply::Pong) => {}
                other => panic!("reply {i}: {other:?}"),
            }
        }
        assert_eq!(pipe.pending(), 0);
    }
    let replayed = script.join().expect("script");
    assert_eq!(replayed, vec![2, 3, 4]);
}

/// Builds one raw request body (`opcode | payload`) from sampled
/// primitives. Kinds: ping, encode batch, decode batch (with a mix of
/// valid and garbage streams, so error replies are compared too), and
/// classify (the service has no model, so this is always a typed error).
fn build_request(kind: u8, n: usize, w: usize, h: usize, fill: u8) -> Vec<u8> {
    let image = |i: usize| {
        let data: Vec<u8> = (0..w * h * 3)
            .map(|j| ((fill as usize + 7 * i + j) % 251) as u8)
            .collect();
        RgbImage::from_bytes(w, h, data).expect("sized buffer")
    };
    let mut out = ByteWriter::new();
    match kind {
        0 => out.put_u8(Opcode::Ping as u8),
        1 => {
            out.put_u8(Opcode::EncodeBatch as u8);
            out.put_len(n);
            for i in 0..n {
                protocol::put_image(&mut out, &image(i));
            }
        }
        2 => {
            let encoder = Encoder::with_tables(QuantTablePair::standard(70));
            out.put_u8(Opcode::DecodeBatch as u8);
            out.put_len(n);
            for i in 0..n {
                if (fill as usize + i).is_multiple_of(3) {
                    // Garbage stream: the decode error must also be
                    // byte-identical across protocol versions.
                    protocol::put_blob(&mut out, &[fill; 9]);
                } else {
                    protocol::put_blob(&mut out, &encoder.encode(&image(i)).expect("encode"));
                }
            }
        }
        _ => {
            out.put_u8(Opcode::Classify as u8);
            out.put_len(n);
            for i in 0..n {
                protocol::put_image(&mut out, &image(i));
            }
        }
    }
    out.into_bytes()
}

#[test]
fn tagged_replies_are_byte_identical_to_v1_per_request() {
    // One worker pins multi-item completion order to item order, so the
    // v1 fan-out's first-error choice is deterministic and comparable.
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut v1 = TcpStream::connect(handle.addr()).expect("v1 connect");
    let mut v2 = TcpStream::connect(handle.addr()).expect("v2 connect");
    assert_eq!(hello(&mut v2) & FEATURE_TAGGED, FEATURE_TAGGED);

    // `Stats` is excluded by construction: its payload is a live counter
    // snapshot, not a function of the request.
    let request = (0u8..4, 1usize..=3, 1usize..=16, 1usize..=16, any::<u8>())
        .prop_map(|(kind, n, w, h, fill)| build_request(kind, n, w, h, fill));
    let mix = (1usize..5).prop_flat_map(move |len| prop_vec(request.clone(), len));

    let mut runner = TestRunner::new(ProptestConfig::with_cases(24), "tagged_v1_identity");
    let mut tag = 100u32;
    for case in 0..runner.cases() {
        let seed = runner.seed();
        for body in mix.sample(runner.rng()) {
            protocol::write_frame(&mut v1, &body).expect("v1 request");
            let expect = protocol::read_frame(&mut v1)
                .expect("v1 reply")
                .expect("reply before eof");
            tag += 1;
            send_tagged(&mut v2, tag, &body);
            let reply = protocol::read_frame(&mut v2)
                .expect("v2 reply")
                .expect("reply before eof");
            let (echoed, rest) = protocol::split_tagged(&reply).expect("tagged reply");
            assert_eq!(echoed, tag, "case {case} (seed {seed:#x})");
            assert_eq!(
                rest,
                &expect[..],
                "case {case} (seed {seed:#x}): v2 reply diverges from v1 for {body:?}"
            );
        }
    }
    drop(v2);
    protocol::write_frame(&mut v1, &[Opcode::Shutdown as u8]).expect("shutdown");
    let _ = protocol::read_frame(&mut v1);
    handle.join();
}

#[test]
fn giant_batches_split_across_tags_and_reassemble_in_order() {
    let handle = start(ServerConfig::default());
    let mut client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    assert!(
        client.upgrade_tagged().expect("negotiate"),
        "grant expected"
    );

    // 6 × 64×48 = 18432 px: over the split budget, so the batch fans out
    // into one tagged request per image. 2 × 24×16 = 768 px stays one
    // frame — per-item framing would only add round trips.
    let giant: Vec<RgbImage> = (0..6).map(|i| RgbImage::gradient(64, 48 + i)).collect();
    let small: Vec<RgbImage> = (0..2).map(|i| RgbImage::gradient(24, 16 + i)).collect();
    let encoder = Encoder::with_tables(QuantTablePair::standard(70));
    let local = |imgs: &[RgbImage]| -> Vec<Vec<u8>> {
        imgs.iter()
            .map(|img| encoder.encode(img).expect("local encode"))
            .collect()
    };
    let expect_giant = local(&giant);
    let expect_small = local(&small);

    {
        let mut pipe = client.pipeline(4);
        pipe.submit_encode_batch(&giant).expect("submit giant");
        pipe.submit_encode_batch(&small).expect("submit small");
        // Both replies surface whole and in submission order, however
        // many tagged parts each rode the wire as.
        assert_eq!(
            pipe.recv().expect("giant reply"),
            PipelineReply::Encoded(expect_giant)
        );
        assert_eq!(
            pipe.recv().expect("small reply"),
            PipelineReply::Encoded(expect_small)
        );
    }
    // Exactly the giant batch split: 6 parts = 5 extra service-counted
    // requests; the small batch contributed none.
    assert_eq!(client.split_requests(), 5);
    client.shutdown().expect("shutdown");
    handle.join();
}
