//! `docs/PROTOCOL.md` claims to be byte-accurate; this test holds it to
//! that. The opcode and status tables and the frame-size limit in the
//! spec are parsed out of the markdown and compared against the
//! `protocol` module's constants, so adding, renaming, or re-numbering an
//! op without updating the spec fails CI.

use deepn_serve::protocol::{
    Opcode, MAX_FRAME, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_TIMEOUT,
};

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/PROTOCOL.md exists")
}

/// Extracts `(number, name)` pairs from markdown table rows of the form
/// `| 6 | `CompressStream` | ... |`.
fn numbered_rows(doc: &str) -> Vec<(u8, String)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(num) = cells.next().and_then(|c| c.parse::<u8>().ok()) else {
            continue;
        };
        let Some(name) = cells
            .next()
            .and_then(|c| c.strip_prefix('`'))
            .and_then(|c| c.strip_suffix('`'))
        else {
            continue;
        };
        out.push((num, name.to_string()));
    }
    out
}

#[test]
fn every_opcode_is_documented_byte_accurately() {
    let rows = numbered_rows(&spec());
    let documented: Vec<&(u8, String)> = rows
        .iter()
        .filter(|(_, name)| !name.starts_with("STATUS_"))
        .collect();
    // Every opcode the server accepts appears in the spec with its exact
    // byte value (the Debug name is the enum variant name).
    for byte in 0..=u8::MAX {
        let Some(op) = Opcode::from_u8(byte) else {
            continue;
        };
        let name = format!("{op:?}");
        assert!(
            documented.iter().any(|(n, d)| *n == byte && *d == name),
            "opcode {byte} ({name}) is missing from docs/PROTOCOL.md"
        );
    }
    // And the spec documents no opcode the server does not accept — a
    // stale or re-numbered row is as wrong as a missing one.
    for (num, name) in &documented {
        let op = Opcode::from_u8(*num)
            .unwrap_or_else(|| panic!("docs/PROTOCOL.md documents unknown opcode {num} ({name})"));
        assert_eq!(
            &format!("{op:?}"),
            name,
            "docs/PROTOCOL.md mis-names opcode {num}"
        );
    }
}

#[test]
fn every_status_byte_is_documented_byte_accurately() {
    let rows = numbered_rows(&spec());
    let documented: Vec<(u8, String)> = rows
        .into_iter()
        .filter(|(_, name)| name.starts_with("STATUS_"))
        .collect();
    let expected = [
        (STATUS_OK, "STATUS_OK"),
        (STATUS_ERR, "STATUS_ERR"),
        (STATUS_BUSY, "STATUS_BUSY"),
        (STATUS_TIMEOUT, "STATUS_TIMEOUT"),
    ];
    for (byte, name) in expected {
        assert!(
            documented.contains(&(byte, name.to_string())),
            "status {byte} ({name}) is missing from docs/PROTOCOL.md"
        );
    }
    assert_eq!(
        documented.len(),
        expected.len(),
        "docs/PROTOCOL.md documents a status byte the protocol does not define"
    );
}

#[test]
fn the_frame_limit_is_documented_byte_accurately() {
    assert!(
        spec().contains(&format!("{MAX_FRAME} bytes")),
        "docs/PROTOCOL.md must state the exact MAX_FRAME value ({MAX_FRAME} bytes)"
    );
}
