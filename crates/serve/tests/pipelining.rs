//! Pipelining edge cases: reply sequencing under a full window, typed
//! rejections mid-window, and reconnect+replay of a partially
//! acknowledged window (driven against a scripted frame-level server so
//! the failure point is exact).

use deepn_codec::{Encoder, QuantTablePair, RgbImage};
use deepn_serve::protocol::{self, Opcode, STATUS_OK};
use deepn_serve::{Client, PipelineReply, ServeError, Server, ServerConfig};
use std::net::TcpListener;
use std::time::Duration;

fn start(config: ServerConfig) -> (deepn_serve::ServerHandle, Client) {
    let server =
        Server::bind("127.0.0.1:0", QuantTablePair::standard(70), None, config).expect("bind");
    let handle = server.spawn();
    let client = Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    (handle, client)
}

#[test]
fn replies_sequence_in_submission_order_under_a_full_window() {
    let (handle, mut client) = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    // Distinguishable images: the replies can only pass verification if
    // they come back in exactly the submission order.
    let images: Vec<RgbImage> = (1..=12).map(|i| RgbImage::gradient(8 * i, 8 + i)).collect();
    let encoder = Encoder::with_tables(QuantTablePair::standard(70));
    let mut replies = Vec::new();
    {
        let mut pipe = client.pipeline(4);
        assert_eq!(pipe.window(), 4);
        for (i, img) in images.iter().enumerate() {
            // A mixed window: encodes interleaved with pings.
            pipe.submit_encode_batch(std::slice::from_ref(img))
                .expect("submit encode");
            if i % 3 == 0 {
                pipe.submit_ping().expect("submit ping");
            }
            // The window stays bounded no matter how much was submitted.
            assert!(pipe.pending() >= 1);
            while let Some(r) = pipe.try_ready() {
                replies.push(r.expect("pipelined reply"));
            }
        }
        while pipe.pending() > 0 {
            replies.push(pipe.recv().expect("pipelined reply"));
        }
    }
    // Reconstruct the expected submission order and verify each reply.
    let mut expect = Vec::new();
    for (i, img) in images.iter().enumerate() {
        expect.push(Some(img));
        if i % 3 == 0 {
            expect.push(None);
        }
    }
    assert_eq!(replies.len(), expect.len());
    for (i, (reply, want)) in replies.iter().zip(&expect).enumerate() {
        match (reply, want) {
            (PipelineReply::Encoded(blobs), Some(img)) => {
                let local = encoder.encode(img).expect("local encode");
                assert_eq!(blobs.as_slice(), &[local], "reply {i} out of order");
            }
            (PipelineReply::Pong, None) => {}
            (other, want) => panic!("reply {i}: got {other:?}, wanted encode={}", want.is_some()),
        }
    }
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn timeout_rejection_mid_window_fails_one_request_not_the_pipeline() {
    // A zero budget: every job-carrying request comes back as a typed
    // timeout frame, while ping (which runs no jobs) succeeds — all on
    // one pipelined connection.
    let (handle, mut client) = start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        request_timeout: Some(Duration::ZERO),
        ..ServerConfig::default()
    });
    let img = RgbImage::gradient(16, 16);
    {
        let mut pipe = client.pipeline(4);
        pipe.submit_ping().expect("submit");
        pipe.submit_encode_batch(std::slice::from_ref(&img))
            .expect("submit");
        pipe.submit_ping().expect("submit");
        pipe.submit_encode_batch(std::slice::from_ref(&img))
            .expect("submit");
        assert!(matches!(pipe.recv(), Ok(PipelineReply::Pong)));
        let err = pipe.recv().expect_err("zero budget");
        assert!(matches!(err, ServeError::Timeout(_)), "{err}");
        // The rejection consumed its slot in the reply sequence and
        // nothing more: the later requests are unaffected.
        assert!(matches!(pipe.recv(), Ok(PipelineReply::Pong)));
        let err = pipe.recv().expect_err("zero budget");
        assert!(matches!(err, ServeError::Timeout(_)), "{err}");
        assert_eq!(pipe.pending(), 0);
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests_timed_out, 2);
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn large_requests_and_replies_do_not_write_write_deadlock() {
    // A window whose request and reply payloads both dwarf the kernel
    // socket buffers: a naive blocking submit would deadlock — the server
    // blocked writing a multi-megabyte reply nobody reads while the
    // client blocks writing a multi-megabyte request nobody reads. The
    // draining writer must interleave instead.
    let (handle, mut client) = start(ServerConfig {
        workers: 2,
        queue_depth: 256,
        request_timeout: Some(Duration::from_secs(60)),
        ..ServerConfig::default()
    });
    let img = RgbImage::gradient(128, 128);
    let copies = 80; // ~3.7 MiB of raw pixels per batch payload
    let images = vec![img.clone(); copies];
    let blobs = vec![
        Encoder::with_tables(QuantTablePair::standard(70))
            .encode(&img)
            .expect("encode");
        copies
    ];
    {
        let mut pipe = client.pipeline(4);
        // A huge reply queues up first, then a huge request goes out
        // while that reply sits unread in the server's send path.
        pipe.submit_decode_batch(&blobs).expect("submit decode");
        pipe.submit_encode_batch(&images).expect("submit encode");
        pipe.submit_decode_batch(&blobs).expect("submit decode");
        match pipe.recv().expect("decoded") {
            PipelineReply::Decoded(out) => assert_eq!(out.len(), copies),
            other => panic!("unexpected reply {other:?}"),
        }
        match pipe.recv().expect("encoded") {
            PipelineReply::Encoded(out) => assert_eq!(out.len(), copies),
            other => panic!("unexpected reply {other:?}"),
        }
        match pipe.recv().expect("decoded") {
            PipelineReply::Decoded(out) => {
                assert_eq!(out.len(), copies);
                assert_eq!(out[0].width(), 128);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(pipe.pending(), 0);
    }
    client.ping().expect("connection still framed");
    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn busy_rejection_mid_window_recovers_via_replay() {
    let server = Server::bind(
        "127.0.0.1:0",
        QuantTablePair::standard(60),
        None,
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.spawn();
    let mut occupant =
        Client::connect_retry(handle.addr(), Duration::from_secs(5)).expect("connect");
    occupant.ping().expect("within the limit");
    // The pipelined client lands over the limit: its first reply is a
    // typed busy rejection and the server closes the connection — the
    // worst mid-window case, because every later in-flight request's
    // reply can now only come from a replay.
    let mut second = Client::connect(handle.addr()).expect("tcp connect");
    let mut pipe = second.pipeline(3);
    for _ in 0..3 {
        pipe.submit_ping().expect("submit");
    }
    let err = pipe.recv().expect_err("over the connection limit");
    assert!(matches!(err, ServeError::Busy(_)), "{err}");
    // Free the slot; the pipeline must replay the unacknowledged window
    // on a fresh connection. Until the server reaps the occupant's reader
    // thread the replays themselves are busy-rejected — each one lands as
    // a typed per-request error, never a dead pipeline.
    drop(occupant);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut pongs = 0;
    loop {
        while pipe.pending() > 0 {
            match pipe.recv() {
                Ok(PipelineReply::Pong) => pongs += 1,
                Ok(other) => panic!("unexpected reply {other:?}"),
                Err(ServeError::Busy(_)) => {}
                Err(e) => panic!("pipeline died: {e}"),
            }
        }
        if pongs > 0 || std::time::Instant::now() >= deadline {
            break;
        }
        // Busy-rejected requests are not resubmitted automatically; keep
        // the window alive until the freed slot appears.
        std::thread::sleep(Duration::from_millis(50));
        pipe.submit_ping().expect("submit");
    }
    assert!(pongs > 0, "slot never freed");
    drop(pipe);
    second.shutdown().expect("shutdown");
    handle.join();
}

/// A scripted frame-level server: accepts one connection, answers the
/// first `ack` requests with ok frames, then closes; a second connection
/// must then receive exactly the replayed remainder, which it answers.
/// Returns the bodies the replayed connection received.
fn scripted_partial_ack(listener: TcpListener, total: usize, ack: usize) -> Vec<Vec<u8>> {
    let (mut conn, _) = listener.accept().expect("first connection");
    let mut seen = 0usize;
    while seen < total {
        let body = protocol::read_frame(&mut conn)
            .expect("request frame")
            .expect("request before eof");
        assert_eq!(body, vec![Opcode::Ping as u8], "request {seen}");
        seen += 1;
        if seen <= ack {
            protocol::write_frame(&mut conn, &[STATUS_OK]).expect("ack");
        }
    }
    drop(conn); // close with total-ack requests unacknowledged
    let (mut conn, _) = listener.accept().expect("replay connection");
    let mut replayed = Vec::new();
    for _ in 0..total - ack {
        let body = protocol::read_frame(&mut conn)
            .expect("replayed frame")
            .expect("replay before eof");
        protocol::write_frame(&mut conn, &[STATUS_OK]).expect("ack");
        replayed.push(body);
    }
    // A clean EOF must follow: the client replays nothing else.
    assert_eq!(protocol::read_frame(&mut conn).expect("eof"), None);
    replayed
}

#[test]
fn partially_acknowledged_window_replays_only_the_unacknowledged_tail() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || scripted_partial_ack(listener, 5, 2));

    {
        let mut client = Client::connect(addr).expect("connect");
        let mut pipe = client.pipeline(5);
        for _ in 0..5 {
            pipe.submit_ping().expect("submit");
        }
        // Replies 1–2 arrive on the original connection; reply 3 hits the
        // close, which must trigger a reconnect that replays requests 3–5
        // (and only those — 1–2 were acknowledged).
        for i in 0..5 {
            match pipe.recv() {
                Ok(PipelineReply::Pong) => {}
                other => panic!("reply {i}: {other:?}"),
            }
        }
        assert_eq!(pipe.pending(), 0);
        // The client closes here, handing the script its final EOF.
    }
    let replayed = script.join().expect("script");
    assert_eq!(replayed, vec![vec![Opcode::Ping as u8]; 3]);
}

#[test]
fn a_second_consecutive_stall_without_progress_is_fatal() {
    // The scripted server acks nothing and closes twice: the first close
    // spends the replay budget, the second must surface as a fatal error
    // instead of looping forever.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let script = std::thread::spawn(move || {
        // Each connection consumes exactly the two-request window, acks
        // nothing, and closes.
        for _ in 0..2 {
            let (mut conn, _) = listener.accept().expect("connection");
            for _ in 0..2 {
                protocol::read_frame(&mut conn)
                    .expect("request frame")
                    .expect("request before eof");
            }
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let mut pipe = client.pipeline(2);
    pipe.submit_ping().expect("submit");
    pipe.submit_ping().expect("submit");
    let err = pipe.recv().expect_err("no reply ever arrives");
    assert!(
        matches!(&err, ServeError::Protocol(_) | ServeError::Io(_)),
        "{err}"
    );
    drop(pipe);
    drop(client);
    script.join().expect("script");
}
