//! The compress → train → test pipeline behind every figure of the paper.
//!
//! A *case* fixes a compression scheme for the training images and another
//! for the test images. The paper's motivation section (Fig. 2) defines:
//!
//! - **CASE 1**: train on high-quality (QF = 100) images, test on
//!   compressed images;
//! - **CASE 2**: train on compressed images, test on high-quality images.
//!
//! The evaluation figures (6–8) train and test on the *same* compressed
//! dataset, which [`run_symmetric`] provides.

use crate::bands::{BandKind, Segmentation};
use crate::baselines::CompressionScheme;
use crate::CoreError;
use deepn_codec::{QuantTable, QuantTablePair, RgbImage};
use deepn_dataset::ImageSet;
use deepn_nn::{zoo, Sequential, TrainConfig, Trainer, TrainingHistory};
use deepn_tensor::Tensor;

/// Experiment size, selected by the `DEEPN_SCALE` environment variable
/// (`fast` for CI/tests, anything else = full benchmark configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small datasets and few epochs; seconds per case.
    Fast,
    /// The full benchmark configuration used to regenerate the figures.
    Full,
}

impl Scale {
    /// Reads `DEEPN_SCALE` (`"fast"` → [`Scale::Fast`], default
    /// [`Scale::Full`]).
    pub fn from_env() -> Self {
        match std::env::var("DEEPN_SCALE").as_deref() {
            Ok("fast") => Scale::Fast,
            _ => Scale::Full,
        }
    }

    /// The dataset recipe for this scale.
    pub fn dataset_spec(&self) -> deepn_dataset::DatasetSpec {
        match self {
            Scale::Fast => {
                let mut spec = deepn_dataset::DatasetSpec::tiny();
                spec.train_per_class = 12;
                spec.test_per_class = 6;
                spec
            }
            Scale::Full => deepn_dataset::DatasetSpec::imagenet_standin(),
        }
    }

    /// Training epochs for this scale.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Fast => 4,
            Scale::Full => 8,
        }
    }
}

/// Configuration of one training run inside an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Zoo model name (see [`deepn_nn::zoo::MODEL_NAMES`]).
    pub model: String,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for weights and shuffling.
    pub seed: u64,
    /// Record per-epoch test accuracy (Fig. 2(b)).
    pub track_epochs: bool,
    /// SGD learning rate. Deep plain stacks without normalization (the
    /// VGG-style model) need a smaller rate than the default 0.05.
    pub lr: f32,
}

impl ExperimentConfig {
    /// MiniAlexNet (the paper's workhorse model) at the given scale.
    pub fn alexnet(scale: Scale) -> Self {
        ExperimentConfig {
            model: "MiniAlexNet".to_owned(),
            epochs: scale.epochs(),
            batch_size: 32,
            seed: 0xDEE9,
            track_epochs: false,
            lr: 0.05,
        }
    }

    /// Same config with a different zoo model, adjusting the learning rate
    /// to the model's stable range.
    #[must_use]
    pub fn with_model(mut self, model: &str) -> Self {
        self.model = model.to_owned();
        if model == "MiniVgg" {
            // Plain deep stack without normalization: diverges at 0.05.
            self.lr = 0.015;
        }
        self
    }
}

/// Outcome of one case: final accuracy, the training history, and the
/// compressed byte counts that feed the CR and power figures.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Final test-set top-1 accuracy.
    pub accuracy: f64,
    /// Per-epoch metrics.
    pub history: TrainingHistory,
    /// Total compressed size of the training images under the train scheme.
    pub train_bytes: usize,
    /// Total compressed size of the test images under the test scheme.
    pub test_bytes: usize,
}

/// A cache of decoded (round-tripped) image sets keyed by a scheme+dataset
/// fingerprint, letting figure pipelines skip the serial re-encode of every
/// image when the same scheme/dataset pair recurs (across cases within one
/// run, or across process restarts when backed by the artifact store).
///
/// `deepn-store` provides the persistent filesystem implementation; the
/// trait lives here so the experiment pipeline can consume it without a
/// dependency cycle.
pub trait RoundTripCache {
    /// Returns the cached decoded images and total compressed byte count
    /// for `key`, if present.
    fn load(&mut self, key: &str) -> Option<(Vec<RgbImage>, usize)>;

    /// Stores a decoded set under `key`. Failures must be swallowed (a
    /// cache is an optimization, never a correctness dependency).
    fn store(&mut self, key: &str, images: &[RgbImage], compressed_bytes: usize);
}

/// A no-op cache: every lookup misses, every store is dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl RoundTripCache for NoCache {
    fn load(&mut self, _key: &str) -> Option<(Vec<RgbImage>, usize)> {
        None
    }

    fn store(&mut self, _key: &str, _images: &[RgbImage], _compressed_bytes: usize) {}
}

/// The architecture/geometry needed to rebuild a cached trained model —
/// what a persistent [`ModelCache`] must record alongside the weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRecipe {
    /// Zoo architecture name.
    pub arch: String,
    /// Input channels.
    pub in_channels: usize,
    /// Input image height.
    pub height: usize,
    /// Input image width.
    pub width: usize,
    /// Output class count.
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// A cache of **trained** models keyed by the experiment's
/// (config, train scheme, train data) fingerprint, letting pipeline
/// reruns skip the training stage entirely. Training is deterministic, so
/// a cached model is byte-for-byte the model a rerun would produce.
///
/// `deepn-store` provides the persistent filesystem implementation
/// (`FsModelCache`); the trait lives here, like [`RoundTripCache`], so
/// the pipeline can consume it without a dependency cycle.
pub trait ModelCache {
    /// Returns the cached trained model for `key`, if present.
    fn load(&mut self, key: &str) -> Option<Sequential>;

    /// Stores a trained model under `key`. Failures must be swallowed (a
    /// cache is an optimization, never a correctness dependency).
    fn store(&mut self, key: &str, recipe: &ModelRecipe, net: &Sequential);
}

/// A no-op model cache: every lookup misses, every store is dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoModelCache;

impl ModelCache for NoModelCache {
    fn load(&mut self, _key: &str) -> Option<Sequential> {
        None
    }

    fn store(&mut self, _key: &str, _recipe: &ModelRecipe, _net: &Sequential) {}
}

/// A stable fingerprint of everything that determines a trained model:
/// the experiment config (model, epochs, batch size, seed, learning
/// rate), the training labels and class count (identical images under a
/// different labeling are a different model), and the [`cache_key`] of
/// the compression scheme + training images.
pub fn model_cache_key(
    cfg: &ExperimentConfig,
    train_scheme: &CompressionScheme,
    train_images: &[RgbImage],
    train_labels: &[usize],
    class_count: usize,
) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut h, cfg.model.as_bytes());
    fnv1a(&mut h, &(cfg.epochs as u64).to_le_bytes());
    fnv1a(&mut h, &(cfg.batch_size as u64).to_le_bytes());
    fnv1a(&mut h, &cfg.seed.to_le_bytes());
    fnv1a(&mut h, &cfg.lr.to_le_bytes());
    fnv1a(&mut h, &(class_count as u64).to_le_bytes());
    for &label in train_labels {
        fnv1a(&mut h, &(label as u64).to_le_bytes());
    }
    format!(
        "model-{}-{h:016x}-{}",
        cfg.model,
        cache_key(train_scheme, train_images)
    )
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// A stable fingerprint of `(scheme, images)` usable as a cache key across
/// processes: the scheme's full configuration (including designed table
/// values) plus an FNV-1a hash of every image's dimensions and pixels.
pub fn cache_key(scheme: &CompressionScheme, images: &[RgbImage]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    match scheme {
        CompressionScheme::Jpeg(qf) => fnv1a(&mut h, &[1, *qf]),
        CompressionScheme::RmHf(n) => {
            fnv1a(&mut h, &[2]);
            fnv1a(&mut h, &(*n as u64).to_le_bytes());
        }
        CompressionScheme::SameQ(q) => {
            fnv1a(&mut h, &[3]);
            fnv1a(&mut h, &q.to_le_bytes());
        }
        CompressionScheme::Deepn(tables) => {
            fnv1a(&mut h, &[4]);
            for table in [&tables.luma, &tables.chroma] {
                for v in table.values() {
                    fnv1a(&mut h, &v.to_le_bytes());
                }
            }
        }
    }
    let mut ih: u64 = 0xcbf2_9ce4_8422_2325;
    for img in images {
        fnv1a(&mut ih, &(img.width() as u64).to_le_bytes());
        fnv1a(&mut ih, &(img.height() as u64).to_le_bytes());
        fnv1a(&mut ih, img.as_bytes());
    }
    format!("{scheme}-{h:016x}-{ih:016x}").replace(['/', ' ', '(', ')', '='], "_")
}

/// [`CompressionScheme::round_trip_set`] through a [`RoundTripCache`]:
/// returns the cached decode when the fingerprint hits, otherwise
/// round-trips and populates the cache.
///
/// # Errors
///
/// Codec errors from a cache-miss round trip.
pub fn round_trip_set_cached(
    scheme: &CompressionScheme,
    images: &[RgbImage],
    cache: &mut dyn RoundTripCache,
) -> Result<(Vec<RgbImage>, usize), CoreError> {
    let key = cache_key(scheme, images);
    if let Some(hit) = cache.load(&key) {
        return Ok(hit);
    }
    let (decoded, bytes) = scheme.round_trip_set(images)?;
    cache.store(&key, &decoded, bytes);
    Ok((decoded, bytes))
}

/// Converts decoded images to normalized CHW tensors for the DNN,
/// centered on zero (`[-0.5, 0.5]`), which keeps the first conv layer's
/// pre-activations balanced and makes small-data training markedly more
/// stable.
pub fn to_tensors(images: &[RgbImage]) -> Vec<Tensor> {
    images
        .iter()
        .map(|img| {
            let mut chw = img.to_chw_f32();
            for v in &mut chw {
                *v -= 0.5;
            }
            Tensor::from_vec(chw, &[3, img.height(), img.width()])
        })
        .collect()
}

/// Total compressed size of `images` under `scheme`.
///
/// # Errors
///
/// Codec errors from compression.
pub fn dataset_bytes(scheme: &CompressionScheme, images: &[RgbImage]) -> Result<usize, CoreError> {
    Ok(scheme.compressed_sizes(images)?.iter().sum())
}

/// Compression rate of `scheme` relative to the paper's reference
/// ("Original" = QF 100 JPEG), over the same images. CR(Original) = 1.
///
/// # Errors
///
/// Codec errors from compression.
pub fn compression_rate(scheme: &CompressionScheme, images: &[RgbImage]) -> Result<f64, CoreError> {
    let reference = dataset_bytes(&CompressionScheme::original(), images)?;
    let target = dataset_bytes(scheme, images)?;
    if target == 0 {
        return Err(CoreError::EmptyInput("no images to compress".into()));
    }
    Ok(reference as f64 / target as f64)
}

/// Builds the zoo model named in `cfg` for the image geometry of `set`.
fn build_model(cfg: &ExperimentConfig, set: &ImageSet) -> Sequential {
    let img = &set.images()[0];
    zoo::by_name(
        &cfg.model,
        3,
        img.height(),
        img.width(),
        set.class_count(),
        cfg.seed,
    )
}

/// Trains on `train_scheme`-compressed images, tests on
/// `test_scheme`-compressed images (the general form covering CASE 1,
/// CASE 2, and the symmetric evaluation runs).
///
/// # Errors
///
/// Codec errors while round-tripping either split.
pub fn run_case(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    train_scheme: &CompressionScheme,
    test_scheme: &CompressionScheme,
) -> Result<CaseOutcome, CoreError> {
    run_case_cached(cfg, set, train_scheme, test_scheme, &mut NoCache)
}

/// [`run_case`] with the compress→decode step routed through a
/// [`RoundTripCache`], so repeated figure runs over the same scheme and
/// dataset skip the serial per-image round trip.
///
/// # Errors
///
/// As [`run_case`].
pub fn run_case_cached(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    train_scheme: &CompressionScheme,
    test_scheme: &CompressionScheme,
    cache: &mut dyn RoundTripCache,
) -> Result<CaseOutcome, CoreError> {
    run_case_cached_with_models(
        cfg,
        set,
        train_scheme,
        test_scheme,
        cache,
        &mut NoModelCache,
    )
}

/// [`run_case_cached`] with the training stage additionally routed through
/// a [`ModelCache`]: a hit skips training and only re-evaluates the cached
/// model on the test split (training is deterministic, so the accuracy is
/// identical to a fresh run's final entry).
///
/// The model cache is bypassed when `cfg.track_epochs` is set — per-epoch
/// curves require the actual training trajectory.
///
/// # Errors
///
/// As [`run_case`].
pub fn run_case_cached_with_models(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    train_scheme: &CompressionScheme,
    test_scheme: &CompressionScheme,
    cache: &mut dyn RoundTripCache,
    models: &mut dyn ModelCache,
) -> Result<CaseOutcome, CoreError> {
    let (train_imgs, train_labels) = set.train();
    let (test_imgs, test_labels) = set.test();
    let (train_dec, train_bytes) = round_trip_set_cached(train_scheme, train_imgs, cache)?;
    let (test_dec, test_bytes) = round_trip_set_cached(test_scheme, test_imgs, cache)?;
    let test_x = to_tensors(&test_dec);
    let key = model_cache_key(
        cfg,
        train_scheme,
        train_imgs,
        train_labels,
        set.class_count(),
    );
    if !cfg.track_epochs {
        if let Some(net) = models.load(&key) {
            let trainer = Trainer::new(TrainConfig {
                batch_size: cfg.batch_size,
                ..TrainConfig::default()
            });
            let accuracy = trainer.evaluate(&net, &test_x, test_labels);
            return Ok(CaseOutcome {
                accuracy,
                history: TrainingHistory {
                    train_loss: Vec::new(),
                    test_accuracy: vec![accuracy],
                },
                train_bytes,
                test_bytes,
            });
        }
    }
    let train_x = to_tensors(&train_dec);
    let mut net = build_model(cfg, set);
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        seed: cfg.seed,
        track_epochs: cfg.track_epochs,
        sgd: deepn_nn::Sgd::new(cfg.lr),
        ..TrainConfig::default()
    });
    let history = trainer.fit(&mut net, &train_x, train_labels, &test_x, test_labels);
    if !cfg.track_epochs {
        let img = &set.images()[0];
        let recipe = ModelRecipe {
            arch: cfg.model.clone(),
            in_channels: 3,
            height: img.height(),
            width: img.width(),
            classes: set.class_count(),
            seed: cfg.seed,
        };
        models.store(&key, &recipe, &net);
    }
    Ok(CaseOutcome {
        accuracy: history.final_test_accuracy(),
        history,
        train_bytes,
        test_bytes,
    })
}

/// Trains **and** tests on the same compression scheme — how the paper's
/// Figs. 6–8 evaluate each candidate.
///
/// # Errors
///
/// As [`run_case`].
pub fn run_symmetric(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    scheme: &CompressionScheme,
) -> Result<CaseOutcome, CoreError> {
    run_case(cfg, set, scheme, scheme)
}

/// [`run_symmetric`] through a [`RoundTripCache`].
///
/// # Errors
///
/// As [`run_case`].
pub fn run_symmetric_cached(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    scheme: &CompressionScheme,
    cache: &mut dyn RoundTripCache,
) -> Result<CaseOutcome, CoreError> {
    run_case_cached(cfg, set, scheme, scheme, cache)
}

/// [`run_symmetric_cached`] with a [`ModelCache`] for the training stage.
///
/// # Errors
///
/// As [`run_case`].
pub fn run_symmetric_cached_with_models(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    scheme: &CompressionScheme,
    cache: &mut dyn RoundTripCache,
    models: &mut dyn ModelCache,
) -> Result<CaseOutcome, CoreError> {
    run_case_cached_with_models(cfg, set, scheme, scheme, cache, models)
}

/// Trains a model once on `scheme`-compressed training data and returns it
/// together with the tensors/labels needed for later evaluations — the
/// shape of the Fig. 5 band-sensitivity sweep, which reuses one model
/// across dozens of test-time quantization settings.
///
/// # Errors
///
/// As [`run_case`].
pub fn train_model(
    cfg: &ExperimentConfig,
    set: &ImageSet,
    scheme: &CompressionScheme,
) -> Result<Sequential, CoreError> {
    let (train_imgs, train_labels) = set.train();
    let (train_dec, _) = scheme.round_trip_set(train_imgs)?;
    let train_x = to_tensors(&train_dec);
    let mut net = build_model(cfg, set);
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        seed: cfg.seed,
        track_epochs: false,
        sgd: deepn_nn::Sgd::new(cfg.lr),
        ..TrainConfig::default()
    });
    // Evaluate on the training data only for the mandatory final entry.
    let _ = trainer.fit(&mut net, &train_x, train_labels, &train_x, train_labels);
    Ok(net)
}

/// Test accuracy of an already-trained model on `scheme`-compressed test
/// images.
///
/// # Errors
///
/// As [`run_case`].
pub fn evaluate_model(
    net: &Sequential,
    set: &ImageSet,
    scheme: &CompressionScheme,
) -> Result<f64, CoreError> {
    let (test_imgs, test_labels) = set.test();
    let (test_dec, _) = scheme.round_trip_set(test_imgs)?;
    let test_x = to_tensors(&test_dec);
    let trainer = Trainer::new(TrainConfig::default());
    Ok(trainer.evaluate(net, &test_x, test_labels))
}

/// Quantization tables that probe a single band group: every band in
/// `kind` (under `segmentation`) gets `step`, every other band gets step 1
/// — the paper's Fig. 5 methodology ("only varying the quantization steps
/// of interested frequency bands ... all the others are assigned with
/// minimized quantization steps").
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn band_probe_tables(segmentation: &Segmentation, kind: BandKind, step: u16) -> QuantTablePair {
    assert!(step > 0, "quantization step must be positive");
    let mut values = [1u16; 64];
    for band in segmentation.bands_of(kind) {
        values[band] = step;
    }
    let table = QuantTable::new(values).expect("steps are positive");
    QuantTablePair {
        luma: table.clone(),
        chroma: table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepn_dataset::DatasetSpec;

    fn fast_cfg() -> ExperimentConfig {
        ExperimentConfig {
            model: "MiniAlexNet".to_owned(),
            epochs: 8,
            batch_size: 16,
            seed: 7,
            track_epochs: false,
            lr: 0.05,
        }
    }

    fn fast_set() -> ImageSet {
        let mut spec = DatasetSpec::tiny();
        spec.train_per_class = 16;
        spec.test_per_class = 6;
        ImageSet::generate(&spec, 21)
    }

    #[test]
    fn original_compression_rate_is_one() {
        let set = fast_set();
        let cr = compression_rate(&CompressionScheme::original(), set.images()).expect("cr");
        assert!((cr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggressive_jpeg_has_higher_cr() {
        let set = fast_set();
        let cr20 = compression_rate(&CompressionScheme::Jpeg(20), set.images()).expect("20");
        let cr80 = compression_rate(&CompressionScheme::Jpeg(80), set.images()).expect("80");
        assert!(cr20 > cr80, "{cr20} vs {cr80}");
        assert!(cr80 > 1.0);
    }

    #[test]
    fn symmetric_case_learns_something() {
        let outcome =
            run_symmetric(&fast_cfg(), &fast_set(), &CompressionScheme::original()).expect("runs");
        // 4 classes -> chance is 0.25; the model must beat it clearly.
        assert!(outcome.accuracy > 0.4, "accuracy {}", outcome.accuracy);
        assert!(outcome.train_bytes > 0 && outcome.test_bytes > 0);
    }

    #[test]
    fn train_once_evaluate_many() {
        let set = fast_set();
        let cfg = fast_cfg();
        let net = train_model(&cfg, &set, &CompressionScheme::original()).expect("train");
        let acc_hi = evaluate_model(&net, &set, &CompressionScheme::original()).expect("hi");
        let acc_crushed =
            evaluate_model(&net, &set, &CompressionScheme::SameQ(200)).expect("crushed");
        // Destroying nearly all frequency content cannot help accuracy.
        assert!(acc_crushed <= acc_hi + 0.101, "{acc_crushed} vs {acc_hi}");
    }

    #[test]
    fn cached_round_trip_matches_uncached() {
        use std::collections::HashMap;

        #[derive(Default)]
        struct MemCache {
            map: HashMap<String, (Vec<RgbImage>, usize)>,
            hits: usize,
        }
        impl RoundTripCache for MemCache {
            fn load(&mut self, key: &str) -> Option<(Vec<RgbImage>, usize)> {
                let hit = self.map.get(key).cloned();
                if hit.is_some() {
                    self.hits += 1;
                }
                hit
            }
            fn store(&mut self, key: &str, images: &[RgbImage], compressed_bytes: usize) {
                self.map
                    .insert(key.to_owned(), (images.to_vec(), compressed_bytes));
            }
        }

        let set = fast_set();
        let scheme = CompressionScheme::Jpeg(60);
        let mut cache = MemCache::default();
        let (a, na) = round_trip_set_cached(&scheme, set.images(), &mut cache).expect("miss");
        let (b, nb) = round_trip_set_cached(&scheme, set.images(), &mut cache).expect("hit");
        assert_eq!(cache.hits, 1);
        assert_eq!((a.len(), na), (b.len(), nb));
        let (c, nc) = scheme.round_trip_set(set.images()).expect("direct");
        assert_eq!(a, c);
        assert_eq!(na, nc);
        // Distinct schemes and datasets never share a key.
        let other = ImageSet::generate(&DatasetSpec::tiny(), 99);
        assert_ne!(
            cache_key(&scheme, set.images()),
            cache_key(&CompressionScheme::Jpeg(61), set.images())
        );
        assert_ne!(
            cache_key(&scheme, set.images()),
            cache_key(&scheme, other.images())
        );
    }

    #[test]
    fn model_cache_hit_skips_training_and_matches_accuracy() {
        #[derive(Default)]
        struct MemModels {
            map: std::collections::HashMap<String, (ModelRecipe, Vec<deepn_nn::ParamExport>)>,
            hits: usize,
            stores: usize,
        }
        impl ModelCache for MemModels {
            fn load(&mut self, key: &str) -> Option<Sequential> {
                let (recipe, params) = self.map.get(key)?;
                let mut net = deepn_nn::zoo::by_name(
                    &recipe.arch,
                    recipe.in_channels,
                    recipe.height,
                    recipe.width,
                    recipe.classes,
                    recipe.seed,
                );
                net.load_params(params.clone()).ok()?;
                self.hits += 1;
                Some(net)
            }
            fn store(&mut self, key: &str, recipe: &ModelRecipe, net: &Sequential) {
                self.stores += 1;
                self.map
                    .insert(key.to_owned(), (recipe.clone(), net.save_params()));
            }
        }

        let set = fast_set();
        let cfg = fast_cfg();
        let scheme = CompressionScheme::Jpeg(70);
        let mut models = MemModels::default();
        let cold = run_symmetric_cached_with_models(&cfg, &set, &scheme, &mut NoCache, &mut models)
            .expect("cold");
        assert_eq!((models.hits, models.stores), (0, 1));
        let warm = run_symmetric_cached_with_models(&cfg, &set, &scheme, &mut NoCache, &mut models)
            .expect("warm");
        assert_eq!((models.hits, models.stores), (1, 1));
        // Deterministic training: the cached model evaluates to exactly
        // the accuracy the fresh run reported.
        assert_eq!(cold.accuracy, warm.accuracy);
        assert!(warm.history.train_loss.is_empty(), "hit must skip training");
        // A different scheme, config, or labeling is a different key.
        let (imgs, labels) = set.train();
        let classes = set.class_count();
        assert_ne!(
            model_cache_key(&cfg, &scheme, imgs, labels, classes),
            model_cache_key(&cfg, &CompressionScheme::Jpeg(71), imgs, labels, classes)
        );
        let mut other = cfg.clone();
        other.epochs += 1;
        assert_ne!(
            model_cache_key(&cfg, &scheme, imgs, labels, classes),
            model_cache_key(&other, &scheme, imgs, labels, classes)
        );
        let mut relabeled = labels.to_vec();
        relabeled.swap(0, 1);
        assert_ne!(
            model_cache_key(&cfg, &scheme, imgs, labels, classes),
            model_cache_key(&cfg, &scheme, imgs, &relabeled, classes)
        );
    }

    #[test]
    fn band_probe_tables_touch_only_target_group() {
        let seg = Segmentation::position_based();
        let t = band_probe_tables(&seg, BandKind::High, 40);
        let mut high = 0;
        let mut unit = 0;
        for &v in t.luma.values() {
            if v == 40 {
                high += 1;
            } else if v == 1 {
                unit += 1;
            }
        }
        assert_eq!(high, 36);
        assert_eq!(unit, 28);
    }

    #[test]
    fn scale_from_env_defaults_full() {
        // (Does not set the variable: other tests may run concurrently.)
        let s = Scale::Full;
        assert!(s.epochs() >= Scale::Fast.epochs());
        assert!(s.dataset_spec().total_images() > Scale::Fast.dataset_spec().total_images());
    }
}
