//! The compression schemes compared throughout the paper's evaluation:
//! quality-scaled JPEG ("Original" is QF = 100), RM-HF, SAME-Q, and
//! DeepN-JPEG itself, behind one [`CompressionScheme`] interface.

use crate::CoreError;
use deepn_codec::{Decoder, Encoder, QuantTablePair, RgbImage};
use std::fmt;

/// A named image-compression configuration used in the experiments.
//
// The `Deepn` variant carries two 64-entry tables inline (256 bytes); the
// enum is constructed a handful of times per experiment, so the size
// difference is irrelevant and boxing would only cost ergonomics.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CompressionScheme {
    /// Standard JPEG at a quality factor; `Jpeg(100)` is the paper's
    /// "Original" reference dataset (CR = 1).
    Jpeg(u8),
    /// JPEG at QF 100 with the top-`n` zig-zag frequency components of
    /// every block zeroed before entropy coding — the paper's "RM-HF"
    /// baseline and the Fig. 3 feature-removal probe.
    RmHf(usize),
    /// The same quantization step everywhere — the paper's "SAME-Q"
    /// baseline.
    SameQ(u16),
    /// DeepN-JPEG with the given designed tables.
    Deepn(QuantTablePair),
}

impl CompressionScheme {
    /// The paper's "Original" reference: QF = 100 JPEG.
    pub fn original() -> Self {
        CompressionScheme::Jpeg(100)
    }

    /// Compresses one image to a JFIF stream.
    ///
    /// # Errors
    ///
    /// Codec errors (invalid dimensions and similar) wrapped in
    /// [`CoreError::Codec`].
    pub fn compress(&self, image: &RgbImage) -> Result<Vec<u8>, CoreError> {
        let bytes = match self {
            CompressionScheme::Jpeg(qf) => Encoder::with_quality(*qf).encode(image)?,
            CompressionScheme::RmHf(n) => {
                let enc = Encoder::with_quality(100);
                let mut planes = enc.quantize_image(image)?;
                planes.remove_high_frequencies(*n);
                enc.encode_quantized(&planes)?
            }
            CompressionScheme::SameQ(q) => {
                Encoder::with_tables(QuantTablePair::uniform(*q)).encode(image)?
            }
            CompressionScheme::Deepn(tables) => {
                Encoder::with_tables(tables.clone()).encode(image)?
            }
        };
        Ok(bytes)
    }

    /// Compresses and immediately decompresses, returning the lossy image
    /// and the compressed size — the per-image unit of every experiment.
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress), plus decode errors (which indicate
    /// a codec bug rather than bad input).
    pub fn round_trip(&self, image: &RgbImage) -> Result<(RgbImage, usize), CoreError> {
        let bytes = self.compress(image)?;
        let decoded = Decoder::new().decode(&bytes)?;
        Ok((decoded, bytes.len()))
    }

    /// Round-trips a whole image set, returning decoded images and the
    /// total compressed byte count.
    ///
    /// # Errors
    ///
    /// As [`round_trip`](Self::round_trip).
    pub fn round_trip_set(&self, images: &[RgbImage]) -> Result<(Vec<RgbImage>, usize), CoreError> {
        let mut out = Vec::with_capacity(images.len());
        let mut total = 0usize;
        for img in images {
            let (dec, n) = self.round_trip(img)?;
            out.push(dec);
            total += n;
        }
        Ok((out, total))
    }

    /// Total compressed size of a set without decoding (for rate-only
    /// measurements such as Fig. 9).
    ///
    /// # Errors
    ///
    /// As [`compress`](Self::compress).
    pub fn compressed_sizes(&self, images: &[RgbImage]) -> Result<Vec<usize>, CoreError> {
        images
            .iter()
            .map(|img| self.compress(img).map(|b| b.len()))
            .collect()
    }
}

impl fmt::Display for CompressionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressionScheme::Jpeg(100) => write!(f, "Original (JPEG QF=100)"),
            CompressionScheme::Jpeg(qf) => write!(f, "JPEG QF={qf}"),
            CompressionScheme::RmHf(n) => write!(f, "RM-HF{n}"),
            CompressionScheme::SameQ(q) => write!(f, "SAME-Q{q}"),
            CompressionScheme::Deepn(_) => write!(f, "DeepN-JPEG"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepn_codec::psnr;
    use deepn_dataset::{DatasetSpec, ImageSet};

    fn sample_image() -> RgbImage {
        ImageSet::generate(&DatasetSpec::tiny(), 6).images()[0].clone()
    }

    #[test]
    fn original_is_qf_100() {
        assert_eq!(CompressionScheme::original(), CompressionScheme::Jpeg(100));
        assert_eq!(
            CompressionScheme::original().to_string(),
            "Original (JPEG QF=100)"
        );
    }

    #[test]
    fn lower_qf_compresses_more() {
        let img = sample_image();
        let hi = CompressionScheme::Jpeg(100).compress(&img).expect("hi");
        let lo = CompressionScheme::Jpeg(20).compress(&img).expect("lo");
        assert!(lo.len() < hi.len());
    }

    #[test]
    fn rm_hf_shrinks_and_keeps_low_bands() {
        let img = sample_image();
        let (orig, base) = CompressionScheme::original()
            .round_trip(&img)
            .expect("orig");
        let (rm, smaller) = CompressionScheme::RmHf(9).round_trip(&img).expect("rm");
        assert!(smaller <= base);
        // Removing only the top bands must stay visually close overall.
        assert!(psnr(&orig, &rm) > 15.0);
    }

    #[test]
    fn rm_hf_more_removal_is_smaller() {
        let img = sample_image();
        let s3 = CompressionScheme::RmHf(3).compress(&img).expect("3").len();
        let s9 = CompressionScheme::RmHf(9).compress(&img).expect("9").len();
        assert!(s9 <= s3);
    }

    #[test]
    fn same_q_larger_step_is_smaller_file() {
        let img = sample_image();
        let s4 = CompressionScheme::SameQ(4).compress(&img).expect("4").len();
        let s12 = CompressionScheme::SameQ(12)
            .compress(&img)
            .expect("12")
            .len();
        assert!(s12 < s4);
    }

    #[test]
    fn deepn_scheme_round_trips() {
        let set = ImageSet::generate(&DatasetSpec::tiny(), 6);
        let tables = crate::DeepnTableBuilder::new(crate::PlmParams::paper())
            .build(set.images())
            .expect("tables");
        let (decoded, total) = CompressionScheme::Deepn(tables)
            .round_trip_set(set.images())
            .expect("round trip");
        assert_eq!(decoded.len(), set.len());
        assert!(total > 0);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CompressionScheme::RmHf(3).to_string(), "RM-HF3");
        assert_eq!(CompressionScheme::SameQ(4).to_string(), "SAME-Q4");
        assert_eq!(CompressionScheme::Jpeg(50).to_string(), "JPEG QF=50");
    }
}
