//! Frequency component analysis — the paper's Algorithm 1.
//!
//! For every sampled image: split into YCbCr planes, partition each plane
//! into 8×8 blocks, apply the **un-quantized** forward DCT, and fold each
//! of the 64 coefficients into a per-band running statistic. The standard
//! deviation σ(i,j) of band (i,j) measures the band's energy and therefore
//! (per the paper's §3.1 gradient argument) its contribution to DNN
//! feature learning.

use crate::CoreError;
use deepn_codec::dct::forward_dct_8x8;
use deepn_codec::stream::{blockize_strip, strip_count_for};
use deepn_codec::{EncodeWorkspace, PixelStrip, RgbImage};
use deepn_dataset::PlaneStats;

/// Per-band coefficient statistics for the luma and (pooled) chroma
/// channels of a sampled dataset.
#[derive(Debug, Clone)]
pub struct BandStats {
    luma: [PlaneStats; 64],
    chroma: [PlaneStats; 64],
    images: usize,
    blocks: usize,
}

impl Default for BandStats {
    fn default() -> Self {
        BandStats {
            luma: [PlaneStats::new(); 64],
            chroma: [PlaneStats::new(); 64],
            images: 0,
            blocks: 0,
        }
    }
}

impl BandStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        BandStats::default()
    }

    /// Folds one image into the statistics (Algorithm 1 lines 16–23).
    pub fn push_image(&mut self, image: &RgbImage) {
        self.push_image_with(image, &mut EncodeWorkspace::new());
    }

    /// [`push_image`](Self::push_image) through a caller-owned, reusable
    /// codec workspace: the image is consumed as the streaming pipeline's
    /// block stream (ColorConvert → BlockSplit per 8-row strip, then the
    /// un-quantized DCT per block), so peak memory is O(strip) instead of
    /// O(image) and the steady-state loop allocates nothing.
    ///
    /// Adopting the strip order was a deliberate one-time baseline change
    /// for the pooled-chroma accumulator (Cb/Cr now interleave per strip
    /// instead of all-Cb-then-all-Cr), in the same spirit as the PR 3
    /// shard-merge change: it differs from the old order only in
    /// final-ulp `f64` Welford rounding — measured quantization tables
    /// are byte-identical — and it is what lets analysis stream. Luma
    /// order is unchanged, and results remain exactly thread-count
    /// invariant.
    pub fn push_image_with(&mut self, image: &RgbImage, ws: &mut EncodeWorkspace) {
        let mut strip = PixelStrip::new();
        for s in 0..strip_count_for(image.height()) {
            strip.copy_from_image(image, s);
            blockize_strip(&strip, ws);
            for ci in 0..3 {
                let acc = if ci == 0 {
                    &mut self.luma
                } else {
                    &mut self.chroma
                };
                for block in ws.component_blocks(ci) {
                    let coeffs = forward_dct_8x8(block);
                    for (a, &c) in acc.iter_mut().zip(coeffs.iter()) {
                        a.push(f64::from(c));
                    }
                    if ci == 0 {
                        self.blocks += 1;
                    }
                }
            }
        }
        self.images += 1;
    }

    /// Reconstructs statistics from stored parts, the inverse of
    /// [`luma_stats`](Self::luma_stats) / [`chroma_stats`](Self::chroma_stats)
    /// plus the counters (used by the artifact store).
    pub fn from_parts(
        luma: [PlaneStats; 64],
        chroma: [PlaneStats; 64],
        images: usize,
        blocks: usize,
    ) -> Self {
        BandStats {
            luma,
            chroma,
            images,
            blocks,
        }
    }

    /// Raw per-band luma accumulators, natural order.
    pub fn luma_stats(&self) -> &[PlaneStats; 64] {
        &self.luma
    }

    /// Raw per-band pooled-chroma accumulators, natural order.
    pub fn chroma_stats(&self) -> &[PlaneStats; 64] {
        &self.chroma
    }

    /// Merges another accumulator (e.g. from a different dataset shard).
    pub fn merge(&mut self, other: &BandStats) {
        for (a, b) in self.luma.iter_mut().zip(other.luma.iter()) {
            a.merge(b);
        }
        for (a, b) in self.chroma.iter_mut().zip(other.chroma.iter()) {
            a.merge(b);
        }
        self.images += other.images;
        self.blocks += other.blocks;
    }

    /// Number of images analyzed.
    pub fn image_count(&self) -> usize {
        self.images
    }

    /// Number of luma blocks analyzed.
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// σ of every luma band, natural (row-major) order.
    pub fn luma_sigmas(&self) -> [f64; 64] {
        let mut out = [0.0; 64];
        for (o, s) in out.iter_mut().zip(self.luma.iter()) {
            *o = s.std_dev();
        }
        out
    }

    /// σ of every pooled-chroma band, natural order.
    pub fn chroma_sigmas(&self) -> [f64; 64] {
        let mut out = [0.0; 64];
        for (o, s) in out.iter_mut().zip(self.chroma.iter()) {
            *o = s.std_dev();
        }
        out
    }

    /// Mean of a luma band (diagnostics; the paper's model has zero mean
    /// for every AC band).
    ///
    /// # Panics
    ///
    /// Panics if `band >= 64`.
    pub fn luma_mean(&self, band: usize) -> f64 {
        self.luma[band].mean()
    }
}

/// Runs Algorithm 1 over `images`, keeping every `interval`-th image
/// (interval 1 analyzes everything).
///
/// The per-image DCT work fans out over the `deepn-parallel` pool as one
/// shard per sampled image; shards are then merged in sample order. The
/// merge tree is fixed by the sample list — never by the thread count —
/// so the statistics are identical at any `DEEPN_THREADS`. (Adopting the
/// shard-merge form for the scalar path too was a deliberate one-time
/// baseline change when the runtime landed: it differs from the old
/// single-chain Welford accumulation only in final-ulp `f64` rounding,
/// and buys exact thread-count invariance in exchange.)
///
/// # Errors
///
/// [`CoreError::EmptyInput`] if no image survives sampling.
///
/// # Panics
///
/// Panics if `interval == 0`.
pub fn analyze_images<'a, I>(images: I, interval: usize) -> Result<BandStats, CoreError>
where
    I: IntoIterator<Item = &'a RgbImage>,
{
    assert!(interval > 0, "sampling interval must be positive");
    let sampled: Vec<&RgbImage> = images.into_iter().step_by(interval).collect();
    if sampled.is_empty() {
        return Err(CoreError::EmptyInput(
            "no images sampled for frequency analysis".into(),
        ));
    }
    let shards = deepn_parallel::par_map_collect(&sampled, |_, img| {
        // One codec workspace per pool thread, reused across every image
        // that thread analyzes — workspace contents never influence the
        // statistics, so the per-image-shard determinism contract holds.
        thread_local! {
            static WS: std::cell::RefCell<EncodeWorkspace> =
                std::cell::RefCell::new(EncodeWorkspace::new());
        }
        let mut shard = BandStats::new();
        WS.with(|ws| shard.push_image_with(img, &mut ws.borrow_mut()));
        shard
    });
    let mut stats = BandStats::new();
    for shard in &shards {
        stats.merge(shard);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepn_dataset::{DatasetSpec, ImageSet};

    #[test]
    fn dc_band_dominates_natural_like_images() {
        let set = ImageSet::generate(&DatasetSpec::tiny(), 3);
        let stats = analyze_images(set.images(), 1).expect("non-empty");
        let sig = stats.luma_sigmas();
        // DC variance (band 0) exceeds the highest diagonal band.
        assert!(sig[0] > sig[63], "{} vs {}", sig[0], sig[63]);
        assert_eq!(stats.image_count(), set.len());
        assert!(stats.block_count() >= set.len() * 4);
    }

    #[test]
    fn sigma_profile_decays_from_low_to_high_overall() {
        // Average σ over the first anti-diagonals must exceed the last —
        // the Laplacian-like profile of [24] that the generator is
        // calibrated to produce.
        let set = ImageSet::generate(&DatasetSpec::imagenet_standin(), 5);
        let stats = analyze_images(set.images(), 4).expect("non-empty");
        let sig = stats.luma_sigmas();
        let diag_mean = |d: usize| -> f64 {
            let mut s = 0.0;
            let mut n = 0;
            for v in 0..8 {
                for u in 0..8 {
                    if u + v == d {
                        s += sig[v * 8 + u];
                        n += 1;
                    }
                }
            }
            s / n as f64
        };
        assert!(diag_mean(1) > diag_mean(6));
    }

    #[test]
    fn sampling_interval_reduces_work() {
        let set = ImageSet::generate(&DatasetSpec::tiny(), 1);
        let all = analyze_images(set.images(), 1).expect("all");
        let half = analyze_images(set.images(), 2).expect("half");
        assert!(half.image_count() < all.image_count());
        // Statistics remain close despite sampling.
        let (a, b) = (all.luma_sigmas(), half.luma_sigmas());
        assert!((a[0] - b[0]).abs() / a[0] < 0.5);
    }

    #[test]
    fn empty_input_is_an_error() {
        let r = analyze_images(std::iter::empty(), 1);
        assert!(matches!(r, Err(CoreError::EmptyInput(_))));
    }

    #[test]
    fn merge_matches_sequential() {
        let set = ImageSet::generate(&DatasetSpec::tiny(), 8);
        let whole = analyze_images(set.images(), 1).expect("whole");
        let mid = set.len() / 2;
        let mut a = analyze_images(set.images()[..mid].iter(), 1).expect("a");
        let b = analyze_images(set.images()[mid..].iter(), 1).expect("b");
        a.merge(&b);
        let (sa, sw) = (a.luma_sigmas(), whole.luma_sigmas());
        for k in 0..64 {
            assert!((sa[k] - sw[k]).abs() < 1e-9, "band {k}");
        }
    }

    #[test]
    fn ac_means_are_near_zero() {
        // Reininger & Gibson model AC coefficients as zero-mean; with the
        // class-diverse stand-in dataset the per-band mean must be small
        // relative to the band's spread. (A single-class set would not
        // satisfy this — coherent structure biases individual bands.)
        let set = ImageSet::generate(&DatasetSpec::imagenet_standin(), 2);
        let stats = analyze_images(set.images(), 6).expect("stats");
        // Band 63 is excluded: the generator's pixel-aligned checker makes
        // the Nyquist coefficient deliberately coherent (it is the
        // twin-pair's discriminative feature), so its mean is nonzero.
        let sig = stats.luma_sigmas();
        for band in [1usize, 8, 9, 20, 36] {
            assert!(
                stats.luma_mean(band).abs() < sig[band].max(1.0) * 0.75,
                "band {band} mean {} vs sigma {}",
                stats.luma_mean(band),
                sig[band]
            );
        }
    }
}
