//! Frequency-band segmentation: magnitude-based (the paper's proposal) and
//! position-based (the HVS-style control it is compared against in Fig. 5).
//!
//! Both segmentations split the 64 bands into Low (6 bands), Mid (22 bands)
//! and High (36 bands) groups, following the paper's adoption of the
//! segmentation in its reference \[25\].

use crate::zigzag_rank;

/// Which frequency group a band belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandKind {
    /// Low-frequency group (largest σ / first zig-zag positions).
    Low,
    /// Mid-frequency group.
    Mid,
    /// High-frequency group (smallest σ / last zig-zag positions).
    High,
}

/// Group sizes used throughout the paper: 6 / 22 / 36.
pub const LOW_COUNT: usize = 6;
/// Mid-group size.
pub const MID_COUNT: usize = 22;

/// An assignment of each of the 64 natural-order bands to a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    kinds: [BandKind; 64],
}

impl Segmentation {
    /// *Magnitude-based* segmentation (the DeepN-JPEG proposal): rank the
    /// bands by descending σ; the top [`LOW_COUNT`] are Low, the next
    /// [`MID_COUNT`] Mid, the rest High. Ties break toward the lower
    /// natural index, making the result deterministic.
    pub fn magnitude_based(sigmas: &[f64; 64]) -> Self {
        let order = rank_descending(sigmas);
        let mut kinds = [BandKind::High; 64];
        for (rank, &band) in order.iter().enumerate() {
            kinds[band] = if rank < LOW_COUNT {
                BandKind::Low
            } else if rank < LOW_COUNT + MID_COUNT {
                BandKind::Mid
            } else {
                BandKind::High
            };
        }
        Segmentation { kinds }
    }

    /// *Position-based* segmentation (the coarse-grained control): zig-zag
    /// positions 0–5 are Low, 6–27 Mid, 28–63 High, regardless of the
    /// dataset.
    pub fn position_based() -> Self {
        let mut kinds = [BandKind::High; 64];
        for (natural, kind) in kinds.iter_mut().enumerate() {
            let pos = zigzag_rank(natural);
            *kind = if pos < LOW_COUNT {
                BandKind::Low
            } else if pos < LOW_COUNT + MID_COUNT {
                BandKind::Mid
            } else {
                BandKind::High
            };
        }
        Segmentation { kinds }
    }

    /// Group of the band at natural index `band`.
    ///
    /// # Panics
    ///
    /// Panics if `band >= 64`.
    pub fn kind(&self, band: usize) -> BandKind {
        self.kinds[band]
    }

    /// Natural indices of all bands in `kind`.
    pub fn bands_of(&self, kind: BandKind) -> Vec<usize> {
        (0..64).filter(|&b| self.kinds[b] == kind).collect()
    }

    /// Count per group `(low, mid, high)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for k in &self.kinds {
            match k {
                BandKind::Low => c.0 += 1,
                BandKind::Mid => c.1 += 1,
                BandKind::High => c.2 += 1,
            }
        }
        c
    }
}

/// Natural band indices sorted by descending value (ties → lower index).
pub fn rank_descending(values: &[f64; 64]) -> [usize; 64] {
    let mut order: Vec<usize> = (0..64).collect();
    order.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .expect("band sigma is never NaN")
            .then(a.cmp(&b))
    });
    let mut out = [0usize; 64];
    out.copy_from_slice(&order);
    out
}

/// The σ values at the Low/Mid and Mid/High rank boundaries, i.e. the
/// thresholds `T2` (enter Low) and `T1` (enter Mid) of the paper's Eq. 3
/// when calibrated to a measured σ table. Returns `(t1, t2)`.
pub fn rank_thresholds(sigmas: &[f64; 64]) -> (f64, f64) {
    let order = rank_descending(sigmas);
    let t2 = sigmas[order[LOW_COUNT - 1]]; // smallest σ still in Low
    let t1 = sigmas[order[LOW_COUNT + MID_COUNT - 1]]; // smallest σ in Mid
    (t1, t2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_sigmas() -> [f64; 64] {
        // σ descending with natural index: band 0 largest.
        let mut s = [0.0; 64];
        for (i, v) in s.iter_mut().enumerate() {
            *v = 100.0 - i as f64;
        }
        s
    }

    #[test]
    fn magnitude_groups_have_canonical_sizes() {
        let seg = Segmentation::magnitude_based(&ramp_sigmas());
        assert_eq!(seg.counts(), (6, 22, 36));
    }

    #[test]
    fn magnitude_picks_largest_sigmas_as_low() {
        let mut s = [1.0; 64];
        s[63] = 500.0; // a high-position band with huge σ
        s[0] = 400.0;
        let seg = Segmentation::magnitude_based(&s);
        assert_eq!(seg.kind(63), BandKind::Low);
        assert_eq!(seg.kind(0), BandKind::Low);
    }

    #[test]
    fn position_based_matches_zigzag_prefix() {
        let seg = Segmentation::position_based();
        // Zig-zag positions 0..6 are natural indices 0,1,8,16,9,2.
        for b in [0usize, 1, 8, 16, 9, 2] {
            assert_eq!(seg.kind(b), BandKind::Low, "band {b}");
        }
        assert_eq!(seg.kind(63), BandKind::High);
        assert_eq!(seg.counts(), (6, 22, 36));
    }

    #[test]
    fn segmentations_differ_when_energy_is_not_positional() {
        // Give a nominally high-frequency band the second-largest σ: the
        // magnitude segmentation promotes it, the positional one cannot.
        let mut s = ramp_sigmas();
        s[62] = 99.5;
        let mag = Segmentation::magnitude_based(&s);
        let pos = Segmentation::position_based();
        assert_eq!(mag.kind(62), BandKind::Low);
        assert_eq!(pos.kind(62), BandKind::High);
    }

    #[test]
    fn rank_thresholds_bracket_the_groups() {
        let s = ramp_sigmas();
        let (t1, t2) = rank_thresholds(&s);
        assert!(t1 < t2);
        // With the ramp, Low = bands 0..6 (σ 100..95), so T2 = 95;
        // Mid = 6..28 (σ 94..73), so T1 = 73.
        assert_eq!(t2, 95.0);
        assert_eq!(t1, 73.0);
    }

    #[test]
    fn bands_of_partitions_all() {
        let seg = Segmentation::magnitude_based(&ramp_sigmas());
        let total = seg.bands_of(BandKind::Low).len()
            + seg.bands_of(BandKind::Mid).len()
            + seg.bands_of(BandKind::High).len();
        assert_eq!(total, 64);
    }

    #[test]
    fn ties_are_deterministic() {
        let s = [7.0; 64];
        let a = Segmentation::magnitude_based(&s);
        let b = Segmentation::magnitude_based(&s);
        assert_eq!(a, b);
        // With all-equal σ, the lowest natural indices win Low.
        assert_eq!(a.kind(0), BandKind::Low);
        assert_eq!(a.kind(5), BandKind::Low);
        assert_eq!(a.kind(6), BandKind::Mid);
    }
}
