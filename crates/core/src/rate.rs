//! Analytic rate model: predicts the compressed size a quantization table
//! will achieve from the per-band coefficient statistics alone, without
//! running the encoder.
//!
//! Reininger & Gibson (the paper's reference \[24\]) model un-quantized AC
//! DCT coefficients as zero-mean Laplacian with per-band standard
//! deviation σ. Quantizing a Laplacian with step `q` (uniform rounding
//! quantizer) yields a discrete distribution whose Shannon entropy lower-
//! bounds the bits an ideal entropy coder spends on that band. Summing
//! over the 64 bands of the three components gives a size estimate that
//! tracks the real encoder within tens of percent — enough to steer table
//! search (see [`crate::sa_search`]) without thousands of encode calls.

use crate::analysis::BandStats;
use deepn_codec::{QuantTable, QuantTablePair};

/// Shannon entropy (bits/symbol) of a zero-mean Laplacian with standard
/// deviation `sigma` quantized by a uniform rounding quantizer of step `q`.
///
/// Degenerate cases: σ = 0 gives 0 bits (the band is always zero).
pub fn laplacian_entropy_bits(sigma: f64, q: f64) -> f64 {
    assert!(q > 0.0, "quantization step must be positive");
    if sigma <= f64::EPSILON {
        return 0.0;
    }
    // Laplacian rate parameter λ = √2 / σ.
    let lambda = std::f64::consts::SQRT_2 / sigma;
    // P(level 0) = 1 − e^{−λq/2}; P(level ±k) = e^{−λq(k−1/2)}(1−e^{−λq})/2·2
    let e_half = (-lambda * q / 2.0).exp();
    let e_full = (-lambda * q).exp();
    let p0 = 1.0 - e_half;
    let mut h = if p0 > 0.0 { -p0 * p0.log2() } else { 0.0 };
    // Two-sided tail: level ±k has probability p_k = e^{−λq(k−1/2)}·(1−e^{−λq}).
    // (combined over both signs; we split the sign bit out explicitly so the
    // per-level probability is p_k/2 each — equivalent to adding one sign
    // bit times the tail mass.)
    let tail_scale = e_half * (1.0 - e_full);
    let mut pk = tail_scale;
    let mut k = 0;
    while pk > 1e-12 && k < 4096 {
        let each = pk / 2.0;
        if each > 0.0 {
            h += -2.0 * each * each.log2();
        }
        pk *= e_full;
        k += 1;
    }
    h
}

/// Predicted bits per 8×8 block for one component table under the measured
/// band σ values.
pub fn predicted_bits_per_block(sigmas: &[f64; 64], table: &QuantTable) -> f64 {
    sigmas
        .iter()
        .zip(table.values().iter())
        .map(|(&s, &q)| laplacian_entropy_bits(s, f64::from(q)))
        .sum()
}

/// Predicted total compressed size in bytes for `blocks_per_component`
/// blocks (Y plus the two pooled-chroma components), excluding the fixed
/// container overhead.
pub fn predicted_scan_bytes(
    stats: &BandStats,
    tables: &QuantTablePair,
    blocks_per_component: usize,
) -> f64 {
    let y = predicted_bits_per_block(&stats.luma_sigmas(), &tables.luma);
    let c = predicted_bits_per_block(&stats.chroma_sigmas(), &tables.chroma);
    (y + 2.0 * c) * blocks_per_component as f64 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_images;
    use deepn_codec::Encoder;
    use deepn_dataset::{DatasetSpec, ImageSet};

    #[test]
    fn entropy_decreases_with_coarser_steps() {
        let mut prev = f64::INFINITY;
        for q in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
            let h = laplacian_entropy_bits(10.0, q);
            assert!(h < prev, "q {q}: {h} !< {prev}");
            assert!(h >= 0.0);
            prev = h;
        }
    }

    #[test]
    fn entropy_increases_with_sigma() {
        let small = laplacian_entropy_bits(2.0, 4.0);
        let large = laplacian_entropy_bits(50.0, 4.0);
        assert!(large > small);
    }

    #[test]
    fn zero_sigma_band_costs_nothing() {
        assert_eq!(laplacian_entropy_bits(0.0, 8.0), 0.0);
    }

    #[test]
    fn huge_step_drives_entropy_to_zero() {
        assert!(laplacian_entropy_bits(10.0, 1e6) < 1e-6);
    }

    #[test]
    fn fine_quantization_approaches_continuous_entropy() {
        // For q << σ, H ≈ h(X) − log2(q) where h is the differential
        // entropy of the Laplacian: log2(2eσ/√2).
        let sigma = 40.0;
        let q = 0.25;
        let h = laplacian_entropy_bits(sigma, q);
        let expected =
            (2.0 * std::f64::consts::E * sigma / std::f64::consts::SQRT_2).log2() - q.log2();
        assert!((h - expected).abs() < 0.05, "{h} vs {expected}");
    }

    #[test]
    fn prediction_tracks_real_encoder_ordering() {
        // The model need not match bytes exactly (real Huffman coding and
        // DC DPCM differ from the ideal), but it must order tables by size
        // and land within a reasonable factor.
        let set = ImageSet::generate(&DatasetSpec::tiny(), 77);
        let stats = analyze_images(set.images().iter(), 1).expect("stats");
        let blocks = set.len() * (16 / 8) * (16 / 8);
        let mut results = Vec::new();
        for q in [2u16, 8, 32] {
            let tables = QuantTablePair::uniform(q);
            let predicted = predicted_scan_bytes(&stats, &tables, blocks);
            let actual: usize = set
                .images()
                .iter()
                .map(|i| {
                    Encoder::with_tables(tables.clone())
                        .encode(i)
                        .expect("encodes")
                        .len()
                })
                .sum();
            // Subtract the per-image container overhead (~200 bytes each).
            let actual_scan = actual.saturating_sub(set.len() * 200) as f64;
            results.push((q, predicted, actual_scan));
        }
        // Ordering must agree.
        assert!(results[0].1 > results[1].1 && results[1].1 > results[2].1);
        assert!(results[0].2 > results[1].2 && results[1].2 > results[2].2);
        // And the finest-quantization prediction within a factor of 2.5.
        let ratio = results[0].1 / results[0].2.max(1.0);
        assert!(
            (0.4..2.5).contains(&ratio),
            "prediction off by {ratio}: {results:?}"
        );
    }
}
