//! Simulated-annealing quantization-table search — the generic
//! search-based alternative the paper cites as related work (Hopkins et
//! al., "Simulated annealing for JPEG quantization", its reference \[23\])
//! and argues against: parameter search over the 64-step table is
//! expensive, whereas DeepN-JPEG derives the table in closed form from the
//! band statistics.
//!
//! The implementation anneals the luma/chroma steps to minimize the
//! *predicted* compressed size (the [`crate::rate`] Laplacian model, so a
//! move costs microseconds instead of an encoder run) subject to a
//! distortion budget expressed as the predicted per-band mean squared
//! quantization error. It serves as an ablation baseline: how close does
//! an hour of annealing get to what DeepN-JPEG computes in one pass?

use crate::analysis::BandStats;
use crate::rate::predicted_bits_per_block;
use deepn_codec::QuantTablePair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Number of proposal steps.
    pub iterations: usize,
    /// Initial temperature, in objective units *per move*: a move changes
    /// one band's predicted bits + weighted distortion, so useful
    /// temperatures are O(1), not O(total objective). Too-hot schedules
    /// spend the whole budget random-walking uphill and return the start
    /// table as "best".
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
    /// Lagrange weight on the distortion term.
    pub distortion_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            iterations: 20_000,
            t_start: 1.0,
            t_end: 0.01,
            distortion_weight: 0.05,
            seed: 0x5A5A,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// The best tables found.
    pub tables: QuantTablePair,
    /// Objective value of the best tables.
    pub objective: f64,
    /// Objective trace (sampled every 1000 iterations, for plotting).
    pub trace: Vec<f64>,
}

/// Expected mean squared quantization error of a Laplacian(σ) band under a
/// uniform rounding quantizer of step `q` — approximated by the
/// high-resolution formula `q²/12` saturated at the band variance σ²
/// (a coarse quantizer cannot do worse than zeroing the band).
pub fn band_mse(sigma: f64, q: f64) -> f64 {
    (q * q / 12.0).min(sigma * sigma)
}

fn objective(stats: &BandStats, pair: &QuantTablePair, weight: f64) -> f64 {
    let luma_sig = stats.luma_sigmas();
    let chroma_sig = stats.chroma_sigmas();
    // Deliberately sequential: one objective evaluation is microseconds of
    // work, so forking here would cost more than it saves. Parallelism
    // lives a level up, across independent chains ([`anneal_restarts`]).
    let rate = predicted_bits_per_block(&luma_sig, &pair.luma)
        + 2.0 * predicted_bits_per_block(&chroma_sig, &pair.chroma);
    let mut distortion = 0.0;
    for (sig, table) in [(&luma_sig, &pair.luma), (&chroma_sig, &pair.chroma)] {
        for (&s, &q) in sig.iter().zip(table.values().iter()) {
            distortion += band_mse(s, f64::from(q));
        }
    }
    rate + weight * distortion
}

/// Anneals a quantization-table pair against the measured band statistics.
///
/// Starts from uniform step-16 tables; each move multiplies one random
/// entry of one table by a random factor in `[0.5, 2.0]` (clamped to
/// `[1, 255]`) and is accepted with the Metropolis criterion under a
/// geometric temperature schedule.
///
/// # Panics
///
/// Panics if `config.iterations == 0` or the temperatures are not ordered
/// `t_start > t_end > 0`.
pub fn anneal(stats: &BandStats, config: &SaConfig) -> SaOutcome {
    assert!(config.iterations > 0, "need at least one iteration");
    assert!(
        config.t_start > config.t_end && config.t_end > 0.0,
        "temperatures must satisfy t_start > t_end > 0"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current = QuantTablePair::uniform(16);
    let mut cur_obj = objective(stats, &current, config.distortion_weight);
    let mut best = current.clone();
    let mut best_obj = cur_obj;
    let mut trace = Vec::new();
    let cool = (config.t_end / config.t_start).powf(1.0 / config.iterations as f64);
    let mut temp = config.t_start;
    for it in 0..config.iterations {
        // Propose: scale one entry of one table.
        let mut cand = current.clone();
        let table = if rng.gen_bool(0.5) {
            &mut cand.luma
        } else {
            &mut cand.chroma
        };
        let idx = rng.gen_range(0..64);
        let factor: f64 = rng.gen_range(0.5..2.0);
        let old = f64::from(table.values()[idx]);
        let proposed = (old * factor).round().clamp(1.0, 255.0) as u16;
        table.set(idx, proposed.max(1));
        let cand_obj = objective(stats, &cand, config.distortion_weight);
        let accept = cand_obj <= cur_obj || rng.gen::<f64>() < ((cur_obj - cand_obj) / temp).exp();
        if accept {
            current = cand;
            cur_obj = cand_obj;
            if cur_obj < best_obj {
                best = current.clone();
                best_obj = cur_obj;
            }
        }
        if it % 1000 == 0 {
            trace.push(cur_obj);
        }
        temp *= cool;
    }
    SaOutcome {
        tables: best,
        objective: best_obj,
        trace,
    }
}

/// Runs `restarts` independent annealing chains in parallel — restart `i`
/// uses seed `config.seed + i` (wrapping) — and returns the best outcome, breaking
/// objective ties toward the lower restart index.
///
/// Each chain is the exact sequential [`anneal`] (a Markov chain cannot be
/// split), so the winner is deterministic at any `DEEPN_THREADS`: this is
/// the "parallel candidate evaluation" form of the search, where a
/// multi-core budget buys exploration breadth instead of chain length.
///
/// # Panics
///
/// Panics if `restarts == 0`, plus everything [`anneal`] panics on.
pub fn anneal_restarts(stats: &BandStats, config: &SaConfig, restarts: usize) -> SaOutcome {
    assert!(restarts > 0, "need at least one restart");
    let seeds: Vec<u64> = (0..restarts as u64)
        .map(|i| config.seed.wrapping_add(i))
        .collect();
    let outcomes = deepn_parallel::par_map_collect(&seeds, |_, &seed| {
        anneal(
            stats,
            &SaConfig {
                seed,
                ..config.clone()
            },
        )
    });
    outcomes
        .into_iter()
        .min_by(|a, b| {
            a.objective
                .partial_cmp(&b.objective)
                .expect("objectives are never NaN")
        })
        .expect("at least one restart ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_images;
    use deepn_dataset::{DatasetSpec, ImageSet};

    fn stats() -> BandStats {
        let set = ImageSet::generate(&DatasetSpec::tiny(), 5);
        analyze_images(set.images().iter(), 1).expect("stats")
    }

    fn fast_config() -> SaConfig {
        SaConfig {
            iterations: 3000,
            ..SaConfig::default()
        }
    }

    #[test]
    fn annealing_improves_the_objective() {
        let s = stats();
        let cfg = fast_config();
        let start = objective(&s, &QuantTablePair::uniform(16), cfg.distortion_weight);
        let out = anneal(&s, &cfg);
        assert!(out.objective < start, "{} !< {start}", out.objective);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let s = stats();
        let a = anneal(&s, &fast_config());
        let b = anneal(&s, &fast_config());
        assert_eq!(a.tables.luma, b.tables.luma);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let s = stats();
        let a = anneal(&s, &fast_config());
        let b = anneal(
            &s,
            &SaConfig {
                seed: 0x1234,
                ..fast_config()
            },
        );
        assert_ne!(a.tables.luma, b.tables.luma);
    }

    #[test]
    fn learned_tables_respect_band_energy() {
        // High-σ bands should end with finer steps than near-dead bands.
        let s = stats();
        let out = anneal(
            &s,
            &SaConfig {
                iterations: 12_000,
                ..SaConfig::default()
            },
        );
        let sig = s.luma_sigmas();
        let mut hi = Vec::new();
        let mut lo = Vec::new();
        let mut order: Vec<usize> = (0..64).collect();
        order.sort_by(|&a, &b| sig[b].partial_cmp(&sig[a]).expect("no NaN"));
        for &b in &order[..8] {
            hi.push(f64::from(out.tables.luma.values()[b]));
        }
        for &b in &order[56..] {
            lo.push(f64::from(out.tables.luma.values()[b]));
        }
        let hi_mean: f64 = hi.iter().sum::<f64>() / hi.len() as f64;
        let lo_mean: f64 = lo.iter().sum::<f64>() / lo.len() as f64;
        assert!(
            hi_mean < lo_mean,
            "annealing should refine energetic bands: {hi_mean} vs {lo_mean}"
        );
    }

    #[test]
    fn parallel_restarts_are_deterministic_and_no_worse() {
        let s = stats();
        let cfg = fast_config();
        let single = anneal(&s, &cfg);
        let a = anneal_restarts(&s, &cfg, 3);
        let b = anneal_restarts(&s, &cfg, 3);
        assert_eq!(a.tables.luma, b.tables.luma);
        assert_eq!(a.objective, b.objective);
        // Restart 0 is the single chain, so the best of three cannot lose.
        assert!(a.objective <= single.objective);
    }

    #[test]
    fn band_mse_saturates_at_variance() {
        assert!((band_mse(10.0, 2.0) - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(band_mse(3.0, 1000.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "temperatures must satisfy")]
    fn rejects_bad_temperatures() {
        anneal(
            &stats(),
            &SaConfig {
                t_start: 0.1,
                t_end: 1.0,
                ..SaConfig::default()
            },
        );
    }
}
