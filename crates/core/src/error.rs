use deepn_codec::CodecError;
use std::error::Error;
use std::fmt;

/// Errors from the DeepN-JPEG table-design and experiment pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying codec failed.
    Codec(CodecError),
    /// An analysis step received no input (empty dataset or sampling that
    /// selected nothing).
    EmptyInput(String),
    /// The PLM parameters are inconsistent (e.g. thresholds out of order).
    BadParams(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::EmptyInput(m) => write!(f, "empty input: {m}"),
            CoreError::BadParams(m) => write!(f, "invalid parameters: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_errors_wrap_with_source() {
        let e = CoreError::from(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("unexpected end"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + Error>() {}
        assert_traits::<CoreError>();
    }
}
