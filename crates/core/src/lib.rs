//! # deepn-core
//!
//! The primary contribution of
//! [DeepN-JPEG](https://arxiv.org/abs/1803.05788) (Liu et al., DAC 2018):
//! a DNN-favorable quantization-table design for JPEG-style compression.
//!
//! The framework has three stages, mirroring the paper's Fig. 4:
//!
//! 1. **Frequency component analysis** ([`analysis`], the paper's
//!    Algorithm 1): sample the labeled dataset, run the un-quantized 8×8
//!    block DCT, and characterize each of the 64 frequency bands by the
//!    standard deviation σ of its coefficients.
//! 2. **Band segmentation** ([`bands`]): rank bands by σ magnitude into
//!    Low (top 6), Mid (ranks 7–28) and High (29–64) groups — the
//!    *magnitude-based* segmentation, contrasted with the HVS-style
//!    *position-based* one.
//! 3. **Piece-wise linear mapping** ([`plm`], Eq. 3): map each band's σ to
//!    a quantization step with per-group slopes, clamped at `Qmin`.
//!
//! [`DeepnTableBuilder`] packages the stages into one call producing a
//! [`QuantTablePair`] that drops into the [`deepn_codec::Encoder`].
//! [`CompressionScheme`] adds the paper's baselines (quality-scaled JPEG,
//! RM-HF, SAME-Q) and [`experiment`] provides the compress → train → test
//! pipeline behind every figure.
//!
//! ```
//! use deepn_core::{DeepnTableBuilder, PlmParams};
//! use deepn_dataset::{DatasetSpec, ImageSet};
//!
//! # fn main() -> Result<(), deepn_core::CoreError> {
//! let set = ImageSet::generate(&DatasetSpec::tiny(), 1);
//! let tables = DeepnTableBuilder::new(PlmParams::paper())
//!     .sample_interval(3)
//!     .build(set.images())?;
//! // High-σ (low-frequency) bands get small steps, never below Qmin.
//! assert!(tables.luma.value(0, 0) >= 5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod bands;
mod baselines;
mod error;
pub mod experiment;
pub mod plm;
pub mod rate;
pub mod sa_search;
mod table_builder;

pub use analysis::{analyze_images, BandStats};
pub use bands::{BandKind, Segmentation};
pub use baselines::CompressionScheme;
pub use error::CoreError;
pub use plm::PlmParams;
pub use table_builder::{DeepnTableBuilder, ThresholdMode};

// Re-export the codec types that appear in this crate's public API.
pub use deepn_codec::{QuantTable, QuantTablePair};

/// Zig-zag position (0 = DC, 63 = highest diagonal) of a natural-order
/// band index — the frequency ordering used by the position-based
/// segmentation and the RM-HF baseline.
///
/// # Panics
///
/// Panics if `natural >= 64`.
pub fn zigzag_rank(natural: usize) -> usize {
    use std::sync::OnceLock;
    static INV: OnceLock<[usize; 64]> = OnceLock::new();
    INV.get_or_init(deepn_codec::zigzag::natural_to_zigzag)[natural]
}
