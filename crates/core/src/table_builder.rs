use crate::analysis::{analyze_images, BandStats};
use crate::bands::rank_thresholds;
use crate::plm::PlmParams;
use crate::CoreError;
use deepn_codec::{QuantTable, QuantTablePair, RgbImage};

/// How the PLM thresholds `(T1, T2)` are chosen when building a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMode {
    /// Use the thresholds already in the supplied [`PlmParams`] (e.g. the
    /// paper's absolute ImageNet values `T1 = 20, T2 = 60`).
    Fixed,
    /// Re-derive `(T1, T2)` from the measured luma σ table at the
    /// magnitude-rank boundaries (`T2` = smallest Low-group σ, `T1` =
    /// smallest Mid-group σ), exactly as the paper picks `δ'₁,₄` and
    /// `δ'₁,₈` — this adapts the mapping to any dataset's σ scale.
    Calibrated,
}

/// End-to-end DeepN-JPEG quantization-table designer: Algorithm 1 frequency
/// analysis followed by the PLM of Eq. 3, producing a [`QuantTablePair`]
/// ready for the encoder.
///
/// ```
/// use deepn_core::{DeepnTableBuilder, PlmParams};
/// use deepn_dataset::{DatasetSpec, ImageSet};
///
/// # fn main() -> Result<(), deepn_core::CoreError> {
/// let set = ImageSet::generate(&DatasetSpec::tiny(), 2);
/// let tables = DeepnTableBuilder::new(PlmParams::paper()).build(set.images())?;
/// assert!(tables.luma.values().iter().all(|&q| q >= 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeepnTableBuilder {
    params: PlmParams,
    sample_interval: usize,
    threshold_mode: ThresholdMode,
}

impl DeepnTableBuilder {
    /// Creates a builder with the given PLM parameters, sampling interval 1
    /// and calibrated thresholds (see [`ThresholdMode::Calibrated`]).
    pub fn new(params: PlmParams) -> Self {
        DeepnTableBuilder {
            params,
            sample_interval: 1,
            threshold_mode: ThresholdMode::Calibrated,
        }
    }

    /// Analyzes only every `interval`-th image (Algorithm 1's sampling).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    #[must_use]
    pub fn sample_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        self.sample_interval = interval;
        self
    }

    /// Selects how thresholds are chosen (default: calibrated).
    #[must_use]
    pub fn threshold_mode(mut self, mode: ThresholdMode) -> Self {
        self.threshold_mode = mode;
        self
    }

    /// The configured PLM parameters.
    pub fn params(&self) -> &PlmParams {
        &self.params
    }

    /// Runs the frequency analysis over `images` and maps the per-band σ
    /// to quantization tables.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyInput`] if sampling selects no image;
    /// [`CoreError::BadParams`] if calibration produces degenerate
    /// thresholds (all-equal σ); codec errors cannot occur here.
    pub fn build(&self, images: &[RgbImage]) -> Result<QuantTablePair, CoreError> {
        let stats = analyze_images(images.iter(), self.sample_interval)?;
        self.build_from_stats(&stats)
    }

    /// Maps precomputed band statistics to tables (lets callers reuse one
    /// analysis across several parameter settings, as the Fig. 6 k3 sweep
    /// does).
    ///
    /// # Errors
    ///
    /// Same as [`build`](Self::build), minus the analysis step.
    pub fn build_from_stats(&self, stats: &BandStats) -> Result<QuantTablePair, CoreError> {
        let luma_sig = stats.luma_sigmas();
        let chroma_sig = stats.chroma_sigmas();
        let params = match self.threshold_mode {
            ThresholdMode::Fixed => self.params,
            ThresholdMode::Calibrated => {
                let (t1, t2) = rank_thresholds(&luma_sig);
                PlmParams::calibrated(t1, t2, self.params.k3).map_err(|_| {
                    CoreError::BadParams(format!(
                        "degenerate σ thresholds t1={t1}, t2={t2} (dataset has no \
                         frequency-band contrast)"
                    ))
                })?
            }
        };
        let luma = QuantTable::new(params.map_table(&luma_sig))
            .expect("PLM steps are clamped to be positive");
        let chroma = QuantTable::new(params.map_table(&chroma_sig))
            .expect("PLM steps are clamped to be positive");
        Ok(QuantTablePair { luma, chroma })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepn_dataset::{DatasetSpec, ImageSet};

    fn small_set() -> ImageSet {
        ImageSet::generate(&DatasetSpec::tiny(), 4)
    }

    #[test]
    fn dc_gets_a_small_step() {
        let set = small_set();
        let tables = DeepnTableBuilder::new(PlmParams::paper())
            .build(set.images())
            .expect("buildable");
        // DC has by far the largest σ, so its step is at/near Qmin, and in
        // particular far below the HF intercept 255.
        assert!(tables.luma.value(0, 0) <= 20, "{}", tables.luma.value(0, 0));
        assert!(tables.luma.value(7, 7) >= tables.luma.value(0, 0));
    }

    #[test]
    fn low_sigma_bands_get_coarse_steps() {
        let set = small_set();
        let stats = analyze_images(set.images().iter(), 1).expect("stats");
        let tables = DeepnTableBuilder::new(PlmParams::paper())
            .build_from_stats(&stats)
            .expect("buildable");
        let sig = stats.luma_sigmas();
        // The band with the smallest σ must get one of the largest steps.
        let (argmin, _) = sig
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("non-empty");
        let max_step = tables.luma.values().iter().copied().max().expect("some");
        assert!(tables.luma.values()[argmin] >= max_step.saturating_sub(30));
    }

    #[test]
    fn sampling_changes_little() {
        let set = small_set();
        let full = DeepnTableBuilder::new(PlmParams::paper())
            .build(set.images())
            .expect("full");
        let sampled = DeepnTableBuilder::new(PlmParams::paper())
            .sample_interval(3)
            .build(set.images())
            .expect("sampled");
        // Tables built from a third of the data still agree on most steps.
        let agree = full
            .luma
            .values()
            .iter()
            .zip(sampled.luma.values())
            .filter(|(a, b)| (i32::from(**a) - i32::from(**b)).abs() <= 16)
            .count();
        assert!(agree > 48, "only {agree}/64 bands close");
    }

    #[test]
    fn fixed_mode_uses_paper_thresholds() {
        let set = small_set();
        let stats = analyze_images(set.images().iter(), 1).expect("stats");
        let fixed = DeepnTableBuilder::new(PlmParams::paper())
            .threshold_mode(ThresholdMode::Fixed)
            .build_from_stats(&stats)
            .expect("fixed");
        let calibrated = DeepnTableBuilder::new(PlmParams::paper())
            .build_from_stats(&stats)
            .expect("calibrated");
        // Different threshold policies generally give different tables.
        assert_ne!(fixed.luma.values(), calibrated.luma.values());
    }

    #[test]
    fn empty_input_errors() {
        let r = DeepnTableBuilder::new(PlmParams::paper()).build(&[]);
        assert!(matches!(r, Err(CoreError::EmptyInput(_))));
    }

    #[test]
    fn deterministic() {
        let set = small_set();
        let a = DeepnTableBuilder::new(PlmParams::paper())
            .build(set.images())
            .expect("a");
        let b = DeepnTableBuilder::new(PlmParams::paper())
            .build(set.images())
            .expect("b");
        assert_eq!(a.luma, b.luma);
        assert_eq!(a.chroma, b.chroma);
    }
}
