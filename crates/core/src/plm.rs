//! The piece-wise linear mapping (PLM) from band σ to quantization step —
//! the paper's Eq. 3 and §4 parameter optimization.
//!
//! ```text
//!          ⎧ a − k1·σ   σ ≤ T1        (High-frequency group)
//! Q(σ) =   ⎨ b − k2·σ   T1 < σ ≤ T2   (Mid-frequency group)
//!          ⎩ c − k3·σ   σ > T2        (Low-frequency group)
//! ```
//! subject to `Q ≥ Qmin` (and `Q ≤ Qmax` so tables stay baseline-codable).
//!
//! The published ImageNet parameters (`a=255, b=80, c=240, T1=20, T2=60,
//! k1=9.75, k2=1, k3=3, Qmin=5`) are not arbitrary: they satisfy the
//! anchor conditions the paper derives in Fig. 5 —
//!
//! - `Q(0) = Qmax = 255` on the HF branch, and `Q(T1) = Q1 = 60`
//!   (the largest HF step with no accuracy loss), giving
//!   `k1 = (Qmax − Q1)/T1 = 9.75`;
//! - `Q(T1) = Q1` and `Q(T2) = Q2 = 20` on the MF branch, giving
//!   `k2 = (Q1 − Q2)/(T2 − T1) = 1` and `b = Q1 + k2·T1 = 80`;
//! - `Q(T2) = Q1` on the LF branch with the tuned slope `k3 = 3`
//!   (Fig. 6), giving `c = Q1 + k3·T2 = 240`, floored at `Qmin = 5`
//!   (Fig. 5(a)).
//!
//! [`PlmParams::calibrated`] re-derives all six fitting constants from any
//! `(T1, T2)` pair using those anchors, which is how the builder adapts the
//! mapping to a dataset whose σ scale differs from ImageNet's.

use crate::CoreError;

/// Parameters of the piece-wise linear mapping (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlmParams {
    /// HF intercept (`Qmax` at σ = 0).
    pub a: f64,
    /// MF intercept.
    pub b: f64,
    /// LF intercept.
    pub c: f64,
    /// HF slope.
    pub k1: f64,
    /// MF slope.
    pub k2: f64,
    /// LF slope (the free knob swept in Fig. 6).
    pub k3: f64,
    /// HF/MF σ threshold.
    pub t1: f64,
    /// MF/LF σ threshold.
    pub t2: f64,
    /// Lower clamp on every step (Fig. 5(a): LF accuracy drops past 5).
    pub q_min: u16,
    /// Upper clamp (255 keeps tables 8-bit baseline).
    pub q_max: u16,
}

impl PlmParams {
    /// The exact published ImageNet parameters (paper §5).
    pub fn paper() -> Self {
        PlmParams {
            a: 255.0,
            b: 80.0,
            c: 240.0,
            k1: 9.75,
            k2: 1.0,
            k3: 3.0,
            t1: 20.0,
            t2: 60.0,
            q_min: 5,
            q_max: 255,
        }
    }

    /// Derives a full parameter set from measured thresholds `(t1, t2)`
    /// and the paper's anchor steps (`Qmax = 255`, `Q1 = 60`, `Q2 = 20`,
    /// `Qmin = 5`), with the LF slope `k3` left as the free knob.
    ///
    /// With `t1 = 20, t2 = 60, k3 = 3` this reproduces
    /// [`PlmParams::paper`] exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadParams`] unless `0 < t1 < t2`.
    pub fn calibrated(t1: f64, t2: f64, k3: f64) -> Result<Self, CoreError> {
        if !(t1 > 0.0 && t2 > t1) {
            return Err(CoreError::BadParams(format!(
                "thresholds must satisfy 0 < t1 < t2, got t1={t1}, t2={t2}"
            )));
        }
        let (q_max, q1, q2) = (255.0, 60.0, 20.0);
        let k1 = (q_max - q1) / t1;
        let k2 = (q1 - q2) / (t2 - t1);
        Ok(PlmParams {
            a: q_max,
            b: q1 + k2 * t1,
            c: q1 + k3 * t2,
            k1,
            k2,
            k3,
            t1,
            t2,
            q_min: 5,
            q_max: 255,
        })
    }

    /// Returns a copy with a different LF slope `k3`, re-anchoring the LF
    /// intercept `c = Q(T2) + k3·T2` so the branch still starts from the
    /// same step at the threshold (the Fig. 6 sweep).
    #[must_use]
    pub fn with_k3(mut self, k3: f64) -> Self {
        let q_at_t2 = self.c - self.k3 * self.t2;
        self.k3 = k3;
        self.c = q_at_t2 + k3 * self.t2;
        self
    }

    /// The quantization step for a band with standard deviation `sigma`
    /// (Eq. 3 with both clamps applied).
    pub fn quant_step(&self, sigma: f64) -> u16 {
        let q = if sigma <= self.t1 {
            self.a - self.k1 * sigma
        } else if sigma <= self.t2 {
            self.b - self.k2 * sigma
        } else {
            self.c - self.k3 * sigma
        };
        let q = q.round();
        let lo = f64::from(self.q_min);
        let hi = f64::from(self.q_max);
        q.clamp(lo, hi) as u16
    }

    /// Maps a whole σ table (natural order) to quantization steps.
    pub fn map_table(&self, sigmas: &[f64; 64]) -> [u16; 64] {
        let mut out = [0u16; 64];
        for (o, &s) in out.iter_mut().zip(sigmas.iter()) {
            *o = self.quant_step(s);
        }
        out
    }
}

impl Default for PlmParams {
    fn default() -> Self {
        PlmParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_reproduces_paper_constants() {
        let p = PlmParams::calibrated(20.0, 60.0, 3.0).expect("valid");
        let paper = PlmParams::paper();
        assert!((p.a - paper.a).abs() < 1e-9);
        assert!((p.b - paper.b).abs() < 1e-9);
        assert!((p.c - paper.c).abs() < 1e-9);
        assert!((p.k1 - paper.k1).abs() < 1e-9);
        assert!((p.k2 - paper.k2).abs() < 1e-9);
    }

    #[test]
    fn branch_values_match_hand_calculation() {
        let p = PlmParams::paper();
        assert_eq!(p.quant_step(0.0), 255); // HF: a
        assert_eq!(p.quant_step(20.0), 60); // HF at T1: 255 - 195
        assert_eq!(p.quant_step(40.0), 40); // MF: 80 - 40
        assert_eq!(p.quant_step(60.0), 20); // MF at T2
        assert_eq!(p.quant_step(70.0), 30); // LF: 240 - 210
        assert_eq!(p.quant_step(80.0), 5); // LF clamped at Qmin (240-240=0)
    }

    #[test]
    fn qmin_floor_holds_for_huge_sigma() {
        let p = PlmParams::paper();
        assert_eq!(p.quant_step(1e6), 5);
    }

    #[test]
    fn mapping_is_monotone_within_branches() {
        let p = PlmParams::paper();
        // Larger σ (more DNN-important) never gets a larger step within a
        // branch.
        // Note the mapping is deliberately discontinuous at T2 (the
        // published constants give Q(T2⁻) = 20 but Q(T2⁺) ≈ 60), so each
        // branch is tested on its own open interval.
        for (lo, hi) in [(0.0, 20.0), (20.5, 60.0), (60.5, 90.0)] {
            let mut prev = u16::MAX;
            let mut s = lo;
            while s <= hi {
                let q = p.quant_step(s);
                assert!(q <= prev, "σ {s}");
                prev = q;
                s += 0.5;
            }
        }
    }

    #[test]
    fn with_k3_preserves_threshold_step() {
        let p = PlmParams::paper();
        for k3 in [1.0, 2.0, 4.0, 5.0] {
            let q = p.with_k3(k3);
            // The LF branch is re-anchored: its value at σ = T2 must not
            // move when k3 changes.
            let before = p.c - p.k3 * p.t2;
            let after = q.c - q.k3 * q.t2;
            assert!((before - after).abs() < 1e-9, "k3 {k3}");
            // Smaller k3 ⇒ larger LF steps deep into the LF range ⇒ higher CR.
            if k3 < p.k3 {
                assert!(q.quant_step(80.0) >= p.quant_step(80.0));
            }
        }
    }

    #[test]
    fn smaller_k3_coarsens_lf() {
        let base = PlmParams::paper();
        let q_small = base.with_k3(1.0).quant_step(75.0);
        let q_large = base.with_k3(5.0).quant_step(75.0);
        assert!(q_small > q_large, "{q_small} vs {q_large}");
    }

    #[test]
    fn calibrated_rejects_bad_thresholds() {
        assert!(PlmParams::calibrated(0.0, 10.0, 3.0).is_err());
        assert!(PlmParams::calibrated(10.0, 10.0, 3.0).is_err());
        assert!(PlmParams::calibrated(20.0, 10.0, 3.0).is_err());
    }

    #[test]
    fn map_table_applies_elementwise() {
        let p = PlmParams::paper();
        let mut sig = [0.0f64; 64];
        sig[0] = 100.0;
        sig[63] = 0.0;
        let t = p.map_table(&sig);
        assert_eq!(t[0], p.quant_step(100.0));
        assert_eq!(t[63], 255);
    }
}
