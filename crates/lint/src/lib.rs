#![deny(missing_docs)]
//! deepn-lint: a workspace invariant analyzer.
//!
//! The DeepN-JPEG workspace rests on contracts that `rustc` cannot see:
//! parallel paths must be byte-identical to single-threaded runs, the
//! wire spec in `docs/PROTOCOL.md` must match `protocol.rs` and the
//! server dispatch, the service path must not panic, and every `unsafe`
//! site must justify itself. This crate enforces them statically with a
//! minimal comment- and string-aware [lexer] (no full parser) and six
//! [rules]:
//!
//! | rule | contract |
//! |------|----------|
//! | `safety-ledger` | `unsafe` ⇒ `// SAFETY:` comment + `docs/UNSAFE_LEDGER.md` row |
//! | `determinism` | no `HashMap`/`HashSet`/clocks in byte-identity crates |
//! | `panic-policy` | no `unwrap`/`expect`/`panic!` in serve handling or pool internals |
//! | `protocol-sync` | `protocol.rs` ⇔ `docs/PROTOCOL.md` ⇔ server dispatch |
//! | `docs-gate` | every crate root has `#![deny(missing_docs)]` |
//! | `metrics-sync` | registered instruments ⇔ `docs/OBSERVABILITY.md` catalog |
//!
//! A finding can be waived in place with `// lint:allow(rule): reason`
//! on the offending line or the line above; the reason is mandatory.
//! Run it as `deepn lint` (add `--json` for machine-readable output).

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

pub use report::Finding;
pub use workspace::Workspace;

/// Runs every rule over an already-scanned workspace. Findings are
/// ordered rule-by-rule, file-by-file, line-by-line — deterministic for
/// a given tree.
pub fn lint(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::safety_ledger::check(ws));
    findings.extend(rules::determinism::check(ws));
    findings.extend(rules::panic_policy::check(ws));
    findings.extend(rules::protocol_sync::check(ws));
    findings.extend(rules::docs_gate::check(ws));
    findings.extend(rules::metrics_sync::check(ws));
    findings
}

/// Scans `root` and runs every rule: the one-call entry point used by
/// the CLI and CI.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let ws = Workspace::scan(root)?;
    Ok(lint(&ws))
}
