//! Workspace discovery: walk a repository root, lex every Rust source
//! file, and classify each line so the rules can skip test-only code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{split_source, squash, Line};

/// Directory names never descended into during the scan. `fixtures` is
/// excluded so the lint's own known-bad test inputs do not fail the real
/// workspace; `vendor` holds API-compatible shims held to their upstream
/// contracts, not this repo's invariants.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "fixtures"];

/// One lexed Rust source file plus the classification the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Per-line code/comment split (index 0 is line 1).
    pub lines: Vec<Line>,
    /// Index of the first line of a trailing `#[cfg(test)]` module, if
    /// any; lines from here on are test code.
    pub test_from: Option<usize>,
    /// True for files under `tests/`, `benches/`, or `examples/` —
    /// auxiliary code outside the library invariants.
    pub aux: bool,
}

impl SourceFile {
    /// Lexes and classifies one file's source text.
    pub fn from_source(rel: String, src: &str) -> SourceFile {
        let lines = split_source(src);
        let test_from = lines
            .iter()
            .position(|l| squash(&l.code).contains("#[cfg(test)]"));
        let aux = rel
            .split('/')
            .any(|part| matches!(part, "tests" | "benches" | "examples"));
        SourceFile {
            rel,
            lines,
            test_from,
            aux,
        }
    }

    /// Whether 0-based line `idx` belongs to a trailing test module.
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_from.is_some_and(|t| idx >= t)
    }
}

/// A scanned workspace: every Rust file plus the raw text of the
/// documents the cross-checking rules need.
#[derive(Debug)]
pub struct Workspace {
    /// All lexed `.rs` files, sorted by relative path for deterministic
    /// finding order.
    pub files: Vec<SourceFile>,
    /// `docs/UNSAFE_LEDGER.md` contents, if present.
    pub unsafe_ledger: Option<String>,
    /// `docs/PROTOCOL.md` contents, if present.
    pub protocol_doc: Option<String>,
    /// `docs/OBSERVABILITY.md` contents, if present.
    pub observability_doc: Option<String>,
}

impl Workspace {
    /// Walks `root`, lexing every `.rs` file outside the skipped
    /// directories (`.git`, `target`, `vendor`, `fixtures`) and loading
    /// the ledger and protocol documents.
    pub fn scan(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(root, root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for rel in paths {
            let src = fs::read_to_string(root.join(&rel))?;
            let rel = rel.to_string_lossy().replace('\\', "/");
            files.push(SourceFile::from_source(rel, &src));
        }
        Ok(Workspace {
            files,
            unsafe_ledger: fs::read_to_string(root.join("docs/UNSAFE_LEDGER.md")).ok(),
            protocol_doc: fs::read_to_string(root.join("docs/PROTOCOL.md")).ok(),
            observability_doc: fs::read_to_string(root.join("docs/OBSERVABILITY.md")).ok(),
        })
    }

    /// The file with exactly this root-relative path, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Collects root-relative paths of `.rs` files under `dir`, skipping
/// [`SKIP_DIRS`] at any depth.
fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_test_module_is_classified() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let f = SourceFile::from_source("x.rs".into(), src);
        assert!(!f.is_test_line(0));
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(3));
    }

    #[test]
    fn aux_paths_are_recognised() {
        for rel in [
            "crates/x/tests/t.rs",
            "crates/x/benches/b.rs",
            "examples/e.rs",
        ] {
            assert!(SourceFile::from_source(rel.into(), "").aux, "{rel}");
        }
        assert!(!SourceFile::from_source("crates/x/src/lib.rs".into(), "").aux);
    }
}
