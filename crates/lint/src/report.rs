//! Findings, waiver handling, and output formatting.

use crate::workspace::SourceFile;

/// One rule violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (`safety-ledger`, `determinism`, ...).
    pub rule: &'static str,
    /// Root-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Builds a finding from a 0-based line index.
    pub fn at(rule: &'static str, file: &str, idx0: usize, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: idx0 + 1,
            message,
        }
    }

    /// Builds a whole-file finding (reported as line 0).
    pub fn whole_file(rule: &'static str, file: &str, message: String) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 0,
            message,
        }
    }

    /// `file:line: [rule] message` (line omitted for whole-file findings).
    pub fn human(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }

    /// One JSON object per finding, on a single line.
    pub fn json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape(self.rule),
            escape(&self.file),
            self.line,
            escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON double-quoted literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How a `// lint:allow(rule)` marker on or above a finding's line
/// affects it.
pub enum Waiver {
    /// No marker for this rule — the finding stands.
    None,
    /// Marker present with a non-empty reason — the finding is waived.
    Waived,
    /// Marker present but the reason is empty — the finding stands AND
    /// the marker itself is a violation.
    MissingReason(usize),
}

/// Looks for `lint:allow(rule): reason` on the finding's own line or in
/// the contiguous comment block directly above it (a multi-line waiver
/// comment carries the marker on its first line).
pub fn waiver_for(file: &SourceFile, idx0: usize, rule: &str) -> Waiver {
    if let Some(w) = marker_on(file, idx0, rule) {
        return w;
    }
    let mut i = idx0;
    while i > 0 {
        i -= 1;
        if let Some(w) = marker_on(file, i, rule) {
            return w;
        }
        let line = &file.lines[i];
        // Keep walking only through comment-only lines; a code line or a
        // blank line ends the block (a trailing comment on the code line
        // directly above was still checked just now).
        if !line.code.trim().is_empty() || line.comment.trim().is_empty() {
            break;
        }
    }
    Waiver::None
}

/// Parses a `lint:allow(rule)` marker out of one line's comment.
fn marker_on(file: &SourceFile, i: usize, rule: &str) -> Option<Waiver> {
    let comment = &file.lines[i].comment;
    let pos = comment.find("lint:allow(")?;
    let rest = &comment[pos + "lint:allow(".len()..];
    let close = rest.find(')')?;
    if rest[..close].trim() != rule {
        return None;
    }
    let after = rest[close + 1..].trim_start_matches(':').trim();
    Some(if after.is_empty() {
        Waiver::MissingReason(i)
    } else {
        Waiver::Waived
    })
}

/// Applies waiver resolution to a tentative finding: returns the finding
/// itself if it stands, plus a `waiver` finding when a marker is present
/// without a reason.
pub fn apply_waiver(file: &SourceFile, finding: Finding) -> Vec<Finding> {
    let idx0 = finding.line.saturating_sub(1);
    match waiver_for(file, idx0, finding.rule) {
        Waiver::None => vec![finding],
        Waiver::Waived => vec![],
        Waiver::MissingReason(marker_idx) => {
            let marker = Finding::at(
                "waiver",
                &finding.file,
                marker_idx,
                format!(
                    "lint:allow({}) has no reason; a waiver must say why",
                    finding.rule
                ),
            );
            vec![finding, marker]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let f = Finding::at("x", "a\"b.rs", 0, "line1\nline2".into());
        assert_eq!(
            f.json(),
            "{\"rule\":\"x\",\"file\":\"a\\\"b.rs\",\"line\":1,\"message\":\"line1\\nline2\"}"
        );
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let src = "// lint:allow(determinism): fixed iteration order proven above\nuse std::collections::HashMap;\n";
        let file = SourceFile::from_source("x.rs".into(), src);
        let out = apply_waiver(&file, Finding::at("determinism", "x.rs", 1, "m".into()));
        assert!(out.is_empty());
    }

    #[test]
    fn waiver_without_reason_keeps_finding_and_flags_marker() {
        let src = "// lint:allow(determinism)\nuse std::collections::HashMap;\n";
        let file = SourceFile::from_source("x.rs".into(), src);
        let out = apply_waiver(&file, Finding::at("determinism", "x.rs", 1, "m".into()));
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].rule, "waiver");
    }

    #[test]
    fn waiver_for_other_rule_does_not_apply() {
        let src =
            "// lint:allow(panic-policy): justified elsewhere\nuse std::collections::HashMap;\n";
        let file = SourceFile::from_source("x.rs".into(), src);
        let out = apply_waiver(&file, Finding::at("determinism", "x.rs", 1, "m".into()));
        assert_eq!(out.len(), 1);
    }
}
