//! **safety-ledger**: every `unsafe` site must be explained in place and
//! registered centrally.
//!
//! Two obligations per `unsafe` occurrence (block, fn, impl, or trait):
//!
//! 1. A `// SAFETY:` comment within the few lines directly above it (the
//!    chain of preceding non-blank lines, up to a small lookback), so the
//!    argument lives next to the code it justifies.
//! 2. A row in `docs/UNSAFE_LEDGER.md` for the file, with the ledger's
//!    per-file row count equal to the file's unsafe-site count — so the
//!    ledger can neither silently lag behind new unsafe code nor carry
//!    stale entries for code that became safe.

use std::collections::BTreeMap;

use crate::lexer::each_ident;
use crate::report::{apply_waiver, Finding};
use crate::workspace::Workspace;

const RULE: &str = "safety-ledger";

/// How many preceding non-blank lines may separate an `unsafe` token from
/// its `// SAFETY:` comment (signatures and attributes sit in between).
const LOOKBACK: usize = 8;

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut site_counts: BTreeMap<String, usize> = BTreeMap::new();

    for file in &ws.files {
        let mut sites_here = 0usize;
        for (idx, line) in file.lines.iter().enumerate() {
            let mut has_unsafe = false;
            each_ident(&line.code, |id, _| {
                if id == "unsafe" {
                    has_unsafe = true;
                }
            });
            if !has_unsafe {
                continue;
            }
            sites_here += 1;
            if !safety_comment_above(file, idx) {
                findings.extend(apply_waiver(
                    file,
                    Finding::at(
                        RULE,
                        &file.rel,
                        idx,
                        "`unsafe` without a `// SAFETY:` comment directly above".into(),
                    ),
                ));
            }
        }
        if sites_here > 0 {
            site_counts.insert(file.rel.clone(), sites_here);
        }
    }

    findings.extend(check_ledger(ws, &site_counts));
    findings
}

/// True if a `SAFETY:` comment appears on the line itself or in the chain
/// of preceding non-blank lines (at most [`LOOKBACK`] of them).
fn safety_comment_above(file: &crate::workspace::SourceFile, idx: usize) -> bool {
    if file.lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    for _ in 0..LOOKBACK {
        if i == 0 {
            return false;
        }
        i -= 1;
        let line = &file.lines[i];
        if line.is_blank() {
            return false;
        }
        if line.comment.contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Cross-checks the per-file unsafe counts against the ledger rows.
fn check_ledger(ws: &Workspace, site_counts: &BTreeMap<String, usize>) -> Vec<Finding> {
    let ledger_rel = "docs/UNSAFE_LEDGER.md";
    let mut findings = Vec::new();
    let Some(ledger) = &ws.unsafe_ledger else {
        if !site_counts.is_empty() {
            findings.push(Finding::whole_file(
                RULE,
                ledger_rel,
                format!(
                    "missing ledger, but the workspace has unsafe code in {} file(s)",
                    site_counts.len()
                ),
            ));
        }
        return findings;
    };

    // Ledger rows: `| file | context | justification |`, skipping the
    // header and separator rows.
    let mut ledger_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, raw) in ledger.lines().enumerate() {
        let t = raw.trim();
        if !t.starts_with('|') || !t.ends_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() != 3 {
            continue;
        }
        let file_cell = cells[0].trim_matches('`');
        if file_cell == "File" || file_cell.chars().all(|c| c == '-' || c == ' ') {
            continue;
        }
        if cells[1].is_empty() || cells[2].is_empty() {
            findings.push(Finding::at(
                RULE,
                ledger_rel,
                idx,
                format!("ledger row for `{file_cell}` has an empty context or justification"),
            ));
        }
        *ledger_counts.entry(file_cell.to_string()).or_insert(0) += 1;
    }

    for (file, &n) in site_counts {
        match ledger_counts.get(file) {
            None => findings.push(Finding::whole_file(
                RULE,
                ledger_rel,
                format!("`{file}` has {n} unsafe site(s) but no ledger entry"),
            )),
            Some(&m) if m != n => findings.push(Finding::whole_file(
                RULE,
                ledger_rel,
                format!("`{file}` has {n} unsafe site(s) but {m} ledger row(s)"),
            )),
            Some(_) => {}
        }
    }
    for file in ledger_counts.keys() {
        if !site_counts.contains_key(file) {
            findings.push(Finding::whole_file(
                RULE,
                ledger_rel,
                format!("ledger lists `{file}`, which has no unsafe code (stale entry)"),
            ));
        }
    }
    findings
}
