//! **determinism**: the byte-identity crates must not depend on
//! iteration order or wall-clock time.
//!
//! The ROADMAP contract says every parallel path produces output
//! byte-identical to `DEEPN_THREADS=1`. `HashMap`/`HashSet` iteration
//! order is randomized per process, and `Instant::now` / `SystemTime` /
//! `thread::current().id()` leak scheduling into results, so all of them
//! are banned from non-test code in the crates that carry the contract.
//! Use `BTreeMap`/`BTreeSet` or sorted `Vec`s instead, and thread
//! explicit counters where elapsed time would have been read.

use crate::lexer::{each_ident, squash};
use crate::report::{apply_waiver, Finding};
use crate::workspace::Workspace;

const RULE: &str = "determinism";

/// The crates bound by the byte-identity contract. `trace` is in scope
/// so instrumentation cannot smuggle scheduling into results; its one
/// sanctioned clock site is carved out by [`CLOCK_SEAM`].
const SCOPED_CRATES: &[&str] = &["codec", "parallel", "tensor", "nn", "core", "trace"];

/// The workspace's single sanctioned clock site: every other crate that
/// needs time goes through `deepn_trace::tick`, which keeps timing out of
/// anything that feeds output bytes. Only this file may read the clock.
const CLOCK_SEAM: &[&str] = &["crates/trace/src/clock.rs"];

/// Banned plain identifiers (matched as whole tokens).
const BANNED_IDENTS: &[&str] = &["HashMap", "HashSet", "SystemTime"];

/// Banned call paths (matched on the whitespace-squashed line, so
/// formatting cannot hide them).
const BANNED_PATHS: &[&str] = &["Instant::now", "thread::current"];

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !in_scope(&file.rel) || file.aux || CLOCK_SEAM.contains(&file.rel.as_str()) {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            let mut hits: Vec<String> = Vec::new();
            each_ident(&line.code, |id, _| {
                if BANNED_IDENTS.contains(&id) {
                    hits.push(format!("`{id}`"));
                }
            });
            let squashed = squash(&line.code);
            for path in BANNED_PATHS {
                if squashed.contains(path) {
                    hits.push(format!("`{path}`"));
                }
            }
            for hit in hits {
                findings.extend(apply_waiver(
                    file,
                    Finding::at(
                        RULE,
                        &file.rel,
                        idx,
                        format!("{hit} breaks the byte-identity contract in this crate"),
                    ),
                ));
            }
        }
    }
    findings
}

/// True for files under `crates/<scoped>/src/`.
fn in_scope(rel: &str) -> bool {
    SCOPED_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}
