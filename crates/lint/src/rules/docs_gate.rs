//! **docs-gate**: every crate root must enforce documentation.
//!
//! Each workspace crate's `lib.rs` (and the facade's `src/lib.rs`) must
//! carry `#![deny(missing_docs)]`, so an undocumented public item is a
//! build error everywhere, not just in the crates that happened to opt
//! in.

use crate::lexer::squash;
use crate::report::Finding;
use crate::workspace::Workspace;

const RULE: &str = "docs-gate";

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !is_crate_root(&file.rel) {
            continue;
        }
        let has_gate = file
            .lines
            .iter()
            .any(|l| squash(&l.code).contains("#![deny(missing_docs)]"));
        if !has_gate {
            findings.push(Finding::whole_file(
                RULE,
                &file.rel,
                "crate root lacks `#![deny(missing_docs)]`".into(),
            ));
        }
    }
    findings
}

/// True for `src/lib.rs` (the facade) and `crates/<name>/src/lib.rs`.
fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
}
