//! **metrics-sync**: every registered instrument is documented, and every
//! documented instrument exists.
//!
//! `docs/OBSERVABILITY.md` carries the instrument catalog — the names an
//! operator can rely on finding in a `deepn metrics` scrape. This rule
//! collects every `.counter("...")` / `.gauge("...")` / `.histogram("...")`
//! registration in non-test library code and cross-checks it against the
//! catalog table in both directions: a registration missing from the doc
//! is an undocumented metric, a doc row without a registration is a stale
//! promise.
//!
//! Call sites are located through the lexer's blanked `code` channel (so
//! the patterns cannot match inside string literals or comments), then
//! the name is read back out of the `raw` channel, joining up to four
//! lines because rustfmt routinely wraps the name literal onto the line
//! after the call. Registrations whose name is not a string literal are
//! skipped: the codec profiler's names, for instance, are checked via
//! their literal registration site, not their `Stage::metric` table.

use std::collections::BTreeMap;

use crate::report::{apply_waiver, Finding};
use crate::workspace::Workspace;

const RULE: &str = "metrics-sync";

const OBSERVABILITY_MD: &str = "docs/OBSERVABILITY.md";

/// Registration methods whose first argument is the instrument name. The
/// leading dot keeps `fn counter(...)` definitions from matching.
const REGISTRATION_CALLS: &[&str] = &[".counter(", ".gauge(", ".histogram("];

/// How many raw lines (call line included) to join when extracting the
/// name literal; rustfmt wraps long calls but never this deep.
const JOIN_LINES: usize = 4;

/// Runs the rule over the workspace. A tree with no registrations at all
/// (e.g. a fixture tree for another rule) is out of scope.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    // name -> first registration site (file, 0-based line).
    let mut registered: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.aux {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            for call in REGISTRATION_CALLS {
                if !line.code.contains(call) {
                    continue;
                }
                let joined: String = file.lines[idx..(idx + JOIN_LINES).min(file.lines.len())]
                    .iter()
                    .map(|l| l.raw.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                if let Some(name) = extract_name(&joined, call) {
                    registered.entry(name).or_insert((fi, idx));
                }
            }
        }
    }
    if registered.is_empty() {
        return Vec::new();
    }

    let Some(doc) = &ws.observability_doc else {
        return vec![Finding::whole_file(
            RULE,
            OBSERVABILITY_MD,
            format!(
                "{} instrument(s) are registered but docs/OBSERVABILITY.md is missing",
                registered.len()
            ),
        )];
    };
    let documented = parse_doc_names(doc);

    let mut findings = Vec::new();
    for (name, &(fi, idx)) in &registered {
        if !documented.contains_key(name.as_str()) {
            let file = &ws.files[fi];
            findings.extend(apply_waiver(
                file,
                Finding::at(
                    RULE,
                    &file.rel,
                    idx,
                    format!("instrument `{name}` is registered but not in the catalog table"),
                ),
            ));
        }
    }
    for name in documented.keys() {
        if !registered.contains_key(name.as_str()) {
            findings.push(Finding::whole_file(
                RULE,
                OBSERVABILITY_MD,
                format!("instrument `{name}` is documented but never registered"),
            ));
        }
    }
    findings
}

/// Pulls the name literal out of joined raw text at the first `call`
/// site: the first argument must open with a `"` (a non-literal name is
/// skipped), and the name must be a well-formed metric identifier.
fn extract_name(joined: &str, call: &str) -> Option<String> {
    let after = &joined[joined.find(call)? + call.len()..];
    let after = after.trim_start();
    let body = after.strip_prefix('"')?;
    let name = &body[..body.find('"')?];
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(name.to_string())
    } else {
        None
    }
}

/// Parses catalog rows: markdown table lines whose first cell is a
/// backticked name starting with `deepn_`.
fn parse_doc_names(doc: &str) -> BTreeMap<String, ()> {
    let mut out = BTreeMap::new();
    for raw in doc.lines() {
        let t = raw.trim();
        if !t.starts_with('|') {
            continue;
        }
        let Some(first) = t.trim_matches('|').split('|').next() else {
            continue;
        };
        let name = first.trim().trim_matches('`');
        if name.starts_with("deepn_") {
            out.insert(name.to_string(), ());
        }
    }
    out
}
