//! **protocol-sync**: one wire protocol, three synchronized views.
//!
//! The protocol lives in `crates/serve/src/protocol.rs` (the `Opcode`
//! enum, `from_u8`, and the `STATUS_*` constants), is documented in
//! `docs/PROTOCOL.md` (the opcode and status tables), and is dispatched
//! in `crates/serve/src/server.rs`. This rule parses all three and fails
//! on any drift: an opcode defined but undocumented, documented but
//! undefined, missing from `from_u8`, or never mentioned by the server's
//! dispatch; likewise for status constants in both directions.

use std::collections::BTreeMap;

use crate::lexer::squash;
use crate::report::Finding;
use crate::workspace::Workspace;

const RULE: &str = "protocol-sync";

const PROTOCOL_RS: &str = "crates/serve/src/protocol.rs";
const SERVER_RS: &str = "crates/serve/src/server.rs";
const PROTOCOL_MD: &str = "docs/PROTOCOL.md";

/// Runs the rule over the workspace. A workspace without
/// `crates/serve/src/protocol.rs` (e.g. a fixture tree for another rule)
/// is out of scope and produces no findings.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let Some(protocol) = ws.file(PROTOCOL_RS) else {
        return Vec::new();
    };
    let mut findings = Vec::new();

    let opcodes = parse_enum_opcodes(protocol);
    let from_u8 = parse_from_u8(protocol);
    let statuses = parse_status_consts(protocol);

    // Internal consistency: every enum variant must round-trip through
    // from_u8.
    for (name, &num) in &opcodes {
        match from_u8.get(name) {
            None => findings.push(Finding::whole_file(
                RULE,
                PROTOCOL_RS,
                format!("opcode `{name}` is not decoded by `Opcode::from_u8`"),
            )),
            Some(&m) if m != num => findings.push(Finding::whole_file(
                RULE,
                PROTOCOL_RS,
                format!("`Opcode::from_u8` maps {m} to `{name}`, but the enum says {num}"),
            )),
            Some(_) => {}
        }
    }

    // Doc tables vs code, both directions.
    match &ws.protocol_doc {
        None => findings.push(Finding::whole_file(
            RULE,
            PROTOCOL_MD,
            "docs/PROTOCOL.md is missing".into(),
        )),
        Some(doc) => {
            let doc_ops = parse_doc_rows(doc, |name| !name.starts_with("STATUS_"));
            let doc_statuses = parse_doc_rows(doc, |name| name.starts_with("STATUS_"));
            findings.extend(diff_maps(&opcodes, &doc_ops, "opcode", PROTOCOL_MD));
            findings.extend(diff_maps(&statuses, &doc_statuses, "status", PROTOCOL_MD));
        }
    }

    // Server dispatch: every opcode must appear somewhere in server.rs
    // non-test code as `Opcode::Name`.
    if let Some(server) = ws.file(SERVER_RS) {
        for name in opcodes.keys() {
            let pattern = format!("Opcode::{name}");
            let handled = server.lines.iter().enumerate().any(|(idx, line)| {
                !server.is_test_line(idx) && squash(&line.code).contains(&pattern)
            });
            if !handled {
                findings.push(Finding::whole_file(
                    RULE,
                    SERVER_RS,
                    format!("opcode `{name}` is defined but never dispatched by the server"),
                ));
            }
        }
    }

    findings
}

/// Parses `Name = N,` variants inside `enum Opcode { ... }`.
fn parse_enum_opcodes(file: &crate::workspace::SourceFile) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    let mut inside = false;
    for line in &file.lines {
        let sq = squash(&line.code);
        if sq.contains("enumOpcode{") {
            inside = true;
        }
        if inside {
            if let Some((name, num)) = sq
                .strip_suffix(',')
                .and_then(|s| s.split_once('='))
                .and_then(|(n, v)| Some((n.to_string(), v.parse::<u8>().ok()?)))
            {
                if name.chars().all(|c| c.is_alphanumeric()) && !name.is_empty() {
                    out.insert(name, num);
                }
            }
            if sq.ends_with('}') || sq == "}" {
                inside = false;
            }
        }
    }
    out
}

/// Parses `N => Some(Opcode::Name)` arms from `from_u8`.
fn parse_from_u8(file: &crate::workspace::SourceFile) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    for line in &file.lines {
        let sq = squash(&line.code);
        if let Some((num_s, rest)) = sq.split_once("=>Some(Opcode::") {
            if let (Ok(num), Some(name)) = (num_s.parse::<u8>(), rest.split(')').next()) {
                out.insert(name.to_string(), num);
            }
        }
    }
    out
}

/// Parses `pub const STATUS_X: u8 = N;` constants.
fn parse_status_consts(file: &crate::workspace::SourceFile) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    for line in &file.lines {
        let sq = squash(&line.code);
        if let Some(rest) = sq.strip_prefix("pubconstSTATUS_") {
            if let Some((name_tail, value)) = rest.split_once(":u8=") {
                if let Ok(num) = value.trim_end_matches(';').parse::<u8>() {
                    out.insert(format!("STATUS_{name_tail}"), num);
                }
            }
        }
    }
    out
}

/// Parses markdown table rows of the form `| N | `Name` | ... |`,
/// keeping those whose name passes `keep`.
fn parse_doc_rows(doc: &str, keep: impl Fn(&str) -> bool) -> BTreeMap<String, u8> {
    let mut out = BTreeMap::new();
    for raw in doc.lines() {
        let t = raw.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let Ok(num) = cells[0].parse::<u8>() else {
            continue;
        };
        let name = cells[1].trim_matches('`');
        if !name.is_empty() && keep(name) {
            out.insert(name.to_string(), num);
        }
    }
    out
}

/// Reports entries present in one map but not the other, and matching
/// names bound to different numbers.
fn diff_maps(
    code: &BTreeMap<String, u8>,
    doc: &BTreeMap<String, u8>,
    kind: &str,
    doc_rel: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (name, &num) in code {
        match doc.get(name) {
            None => findings.push(Finding::whole_file(
                RULE,
                doc_rel,
                format!("{kind} `{name}` ({num}) is defined in code but not documented"),
            )),
            Some(&m) if m != num => findings.push(Finding::whole_file(
                RULE,
                doc_rel,
                format!("{kind} `{name}` is {num} in code but {m} in the doc"),
            )),
            Some(_) => {}
        }
    }
    for (name, &num) in doc {
        if !code.contains_key(name) {
            findings.push(Finding::whole_file(
                RULE,
                doc_rel,
                format!("{kind} `{name}` ({num}) is documented but not defined in code"),
            ));
        }
    }
    findings
}
