//! **panic-policy**: no panics in the service path or pool internals.
//!
//! A panicking worker thread kills a shard; a panic while a pool mutex is
//! held poisons it for every other worker. `deepn-serve` request handling,
//! the `deepn-front` proxy/supervisor, and the `deepn-parallel` pool must
//! therefore return typed errors instead of calling
//! `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`.
//! Invariants that genuinely cannot fail are documented with a
//! `// lint:allow(panic-policy): reason` waiver at the site.

use crate::lexer::each_ident;
use crate::report::{apply_waiver, Finding};
use crate::workspace::Workspace;

const RULE: &str = "panic-policy";

/// Banned method names (only when followed by `(`, so `unwrap_or_else`
/// and friends never match).
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

/// Banned macro names (only when followed by `!`).
const BANNED_MACROS: &[&str] = &["panic", "unreachable", "todo"];

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        if !in_scope(&file.rel) || file.aux {
            continue;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if file.is_test_line(idx) {
                continue;
            }
            let mut hits: Vec<String> = Vec::new();
            each_ident(&line.code, |id, next| {
                if BANNED_METHODS.contains(&id) && next == Some('(') {
                    hits.push(format!("`{id}()`"));
                } else if BANNED_MACROS.contains(&id) && next == Some('!') {
                    hits.push(format!("`{id}!`"));
                }
            });
            for hit in hits {
                findings.extend(apply_waiver(
                    file,
                    Finding::at(
                        RULE,
                        &file.rel,
                        idx,
                        format!("{hit} can panic in a no-panic zone; return a typed error"),
                    ),
                ));
            }
        }
    }
    findings
}

/// True in the no-panic zones: all of `deepn-serve`, all of
/// `deepn-front` (a panicking splice thread strands a client), and the
/// pool module of `deepn-parallel`.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/front/src/")
        || rel == "crates/parallel/src/pool.rs"
}
