//! The six workspace invariant rules.
//!
//! Each rule is a function from [`Workspace`](crate::workspace::Workspace)
//! to findings. Rules are pure: they read the scanned files and documents
//! and never touch the filesystem, which keeps them trivially testable
//! against fixture trees.

pub mod determinism;
pub mod docs_gate;
pub mod metrics_sync;
pub mod panic_policy;
pub mod protocol_sync;
pub mod safety_ledger;
