//! A minimal, line-oriented Rust lexer.
//!
//! The rules in this crate work at line and token granularity, never on a
//! full syntax tree. What they need from a lexer is exactly one thing:
//! **knowing which bytes are code and which are not**, so that a banned
//! token inside a string literal or a comment never produces a finding,
//! and so that `// SAFETY:` / `// lint:allow(...)` markers can be read
//! out of the comment channel. [`split_source`] provides that split:
//! every source line becomes a [`Line`] whose `code` field has comments
//! removed and string/char-literal *contents* blanked (delimiters kept),
//! and whose `comment` field carries the comment text.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! plain and raw (`r#"..."#`, byte) string literals spanning any number of
//! lines, char literals, and the char-literal/lifetime ambiguity (`'a'`
//! vs `'a`). Not handled (and not needed): macro token trees, nested
//! generics, or anything requiring a parse.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments removed and every string/char
    /// literal's contents replaced by spaces (delimiters preserved), so
    /// token scans cannot match inside literals.
    pub code: String,
    /// The comment text carried by this line (all of its `//...` tail
    /// and/or the part of a block comment crossing it).
    pub comment: String,
    /// The line exactly as written, literals included — for rules that
    /// must read string contents (e.g. registered instrument names) after
    /// locating the call site through the blanked `code` channel.
    pub raw: String,
}

impl Line {
    /// Whether the line carries neither code nor comment text.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }
}

/// Cross-line lexer state: inside a block comment of some depth, or
/// inside a (possibly raw) string literal.
enum State {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Splits source text into per-line code/comment channels; see the module
/// docs for the exact contract.
pub fn split_source(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                ..Line::default()
            });
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    while i < chars.len() && chars[i] != '\n' {
                        comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    state = State::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = raw_or_plain_string(&code);
                    i += 1;
                } else if c == '\'' {
                    i = consume_quote(&chars, i, &mut code);
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            State::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    state = State::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    code.push('"');
                    state = State::Code;
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                let closes =
                    c == '"' && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            ..Line::default()
        });
    }
    // The raw channel is the source itself, line for line; `lines()` and
    // the state machine agree on line boundaries ('\n' only), so a plain
    // zip pairs them up.
    for (line, raw) in lines.iter_mut().zip(src.lines()) {
        line.raw = raw.to_string();
    }
    lines
}

/// Decides, at an opening `"` already pushed onto `code`, whether the
/// literal is raw (`r"`, `r#"`, `br##"`, ...) by looking back at the code
/// emitted so far.
fn raw_or_plain_string(code: &str) -> State {
    let before_quote = &code[..code.len() - 1];
    let mut rev = before_quote.chars().rev();
    let mut hashes = 0u32;
    let mut c = rev.next();
    while c == Some('#') {
        hashes += 1;
        c = rev.next();
    }
    if c == Some('r') {
        let prev = rev.next();
        let prev_is_ident = prev.is_some_and(|p| (p.is_alphanumeric() || p == '_') && p != 'b');
        if !prev_is_ident {
            return State::RawStr(hashes);
        }
    }
    State::Str
}

/// Consumes a `'` at `chars[i]` in code position: a char literal (its
/// contents blanked) or a lifetime tick (kept verbatim). Returns the index
/// of the next unconsumed char.
fn consume_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    code.push('\'');
    match chars.get(i + 1) {
        // `'\n'`, `'\''`, `'\x7f'`: escaped char literal — scan to the
        // closing quote.
        Some('\\') => {
            let mut j = i + 1;
            while j < chars.len() {
                if chars[j] == '\\' {
                    code.push(' ');
                    if j + 1 < chars.len() {
                        code.push(' ');
                    }
                    j += 2;
                    continue;
                }
                if chars[j] == '\'' {
                    code.push('\'');
                    return j + 1;
                }
                code.push(' ');
                j += 1;
            }
            j
        }
        // `'x'` for any single char (including punctuation like `'|'`).
        Some(&n) if chars.get(i + 2) == Some(&'\'') && n != '\'' => {
            code.push(' ');
            code.push('\'');
            i + 3
        }
        // Anything else is a lifetime tick (`'a`, `'_`, `'static`).
        _ => i + 1,
    }
}

/// Calls `f(ident, following)` for every identifier token in a code line,
/// where `following` is the first non-whitespace char after the token
/// (`None` at end of line). Identifiers starting inside numeric literals
/// (`1e3`) may be over-approximated; the rules only match known names, so
/// that is harmless.
pub fn each_ident(code: &str, mut f: impl FnMut(&str, Option<char>)) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let mut j = i;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            f(&ident, chars.get(j).copied());
        } else {
            i += 1;
        }
    }
}

/// The line with all whitespace removed — for structural pattern matches
/// (`#[cfg(test)]`, `Instant::now`) that must not care about spacing.
pub fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_go_to_the_comment_channel() {
        let lines = split_source("let x = 1; // SAFETY: tail\n// whole line\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("SAFETY: tail"));
        assert_eq!(lines[1].code.trim(), "");
        assert!(lines[1].comment.contains("whole line"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_kept() {
        let lines = codes("let s = \"unsafe // HashMap\"; unwrap();\n");
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[0].contains("HashMap"));
        assert!(lines[0].contains("unwrap"));
        assert_eq!(lines[0].matches('"').count(), 2);
    }

    #[test]
    fn raw_strings_span_lines_and_hide_contents() {
        let lines = codes("let s = r#\"line one unsafe\nline two \" still\"#; done();\n");
        assert!(!lines[0].contains("unsafe"));
        assert!(!lines[1].contains("still"));
        assert!(lines[1].contains("done"));
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let lines = split_source("/* outer /* inner */ still comment */ code();\n");
        assert!(lines[0].code.contains("code"));
        assert!(lines[0].comment.contains("inner"));
        assert!(!lines[0].code.contains("comment"));
    }

    #[test]
    fn char_literals_are_not_confused_with_lifetimes() {
        let lines = codes("fn f<'a>(x: &'a str) { s.split('|'); let q = '\\''; }\n");
        assert!(lines[0].contains("'a"), "{}", lines[0]);
        assert!(!lines[0].contains('|'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let lines = codes("let s = \"a\\\"unsafe\\\"b\"; next();\n");
        assert!(!lines[0].contains("unsafe"));
        assert!(lines[0].contains("next"));
    }

    #[test]
    fn ident_scanner_reports_following_char() {
        let mut seen = Vec::new();
        each_ident(
            "x.unwrap(); y.unwrap_or_else(z); panic!(\"\")",
            |id, next| {
                seen.push((id.to_string(), next));
            },
        );
        assert!(seen.contains(&("unwrap".into(), Some('('))));
        assert!(seen.contains(&("unwrap_or_else".into(), Some('('))));
        assert!(seen.contains(&("panic".into(), Some('!'))));
    }
}
