//! End-to-end rule tests against the fixture trees in `tests/fixtures/`,
//! plus the meta-test that the real workspace lints clean.

use std::path::{Path, PathBuf};

use deepn_lint::{lint, Finding, Workspace};

fn scan_fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let ws = Workspace::scan(&root).expect("fixture tree scans");
    lint(&ws)
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn safety_ledger_fires_on_undocumented_unsafe_and_missing_ledger() {
    let findings = scan_fixture("safety_bad");
    let hits = rule_findings(&findings, "safety-ledger");
    assert!(
        hits.iter()
            .any(|f| f.file == "src/lib.rs" && f.message.contains("SAFETY")),
        "expected a missing-SAFETY-comment finding: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("missing ledger")),
        "expected a missing-ledger finding: {findings:?}"
    );
}

#[test]
fn safety_ledger_accepts_documented_and_ledgered_unsafe() {
    let findings = scan_fixture("safety_good");
    assert!(
        rule_findings(&findings, "safety-ledger").is_empty(),
        "expected no safety-ledger findings: {findings:?}"
    );
}

#[test]
fn safety_ledger_flags_stale_ledger_rows() {
    let findings = scan_fixture("safety_stale");
    assert!(
        rule_findings(&findings, "safety-ledger")
            .iter()
            .any(|f| f.message.contains("stale")),
        "expected a stale-entry finding: {findings:?}"
    );
}

#[test]
fn safety_ledger_flags_row_count_mismatch() {
    // Two unsafe sites, one ledger row: drift the fixture trees don't
    // cover, driven through an in-memory workspace.
    let src = "// SAFETY: a\npub unsafe fn a() {}\n\n// SAFETY: b\npub unsafe fn b() {}\n";
    let ws = Workspace {
        files: vec![deepn_lint::workspace::SourceFile::from_source(
            "crates/x/src/m.rs".into(),
            src,
        )],
        unsafe_ledger: Some(
            "| File | Context | Justification |\n|---|---|---|\n| `crates/x/src/m.rs` | a | a |\n"
                .into(),
        ),
        protocol_doc: None,
        observability_doc: None,
    };
    let findings = lint(&ws);
    assert!(
        rule_findings(&findings, "safety-ledger")
            .iter()
            .any(|f| f.message.contains("2 unsafe site(s) but 1 ledger row(s)")),
        "expected a count-mismatch finding: {findings:?}"
    );
}

#[test]
fn determinism_fires_in_byte_identity_crates() {
    let findings = scan_fixture("determinism_bad");
    let hits = rule_findings(&findings, "determinism");
    assert!(
        hits.iter().any(|f| f.message.contains("HashMap")),
        "expected a HashMap finding: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("Instant::now")),
        "expected an Instant::now finding: {findings:?}"
    );
    // The HashSet use is waived with a reason: no finding on it.
    assert!(
        !hits.iter().any(|f| f.message.contains("HashSet")),
        "the waived HashSet must not fire: {findings:?}"
    );
    // Banned names in strings, comments, and test code never fire.
    assert!(
        !hits.iter().any(|f| f.line >= 27),
        "strings/comments/test code must not fire: {findings:?}"
    );
}

#[test]
fn waiver_without_reason_keeps_the_finding_and_flags_the_marker() {
    let findings = scan_fixture("determinism_bad");
    // `Instant::now` carries a reasonless `lint:allow`: the determinism
    // finding stands (asserted above) and the marker itself is flagged.
    assert!(
        rule_findings(&findings, "waiver")
            .iter()
            .any(|f| f.message.contains("no reason")),
        "expected a reasonless-waiver finding: {findings:?}"
    );
}

#[test]
fn panic_policy_fires_on_real_panics_only() {
    let findings = scan_fixture("panic_bad");
    let hits = rule_findings(&findings, "panic-policy");
    assert!(
        hits.iter().any(|f| f.message.contains("`unwrap()`")),
        "expected an unwrap finding: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.message.contains("`panic!`")),
        "expected a panic! finding: {findings:?}"
    );
    // unwrap_or_else, string literals, and test code must not fire.
    assert_eq!(hits.len(), 2, "exactly the two real sites: {findings:?}");
}

#[test]
fn protocol_sync_detects_drift_in_every_direction() {
    let findings = scan_fixture("protocol_bad");
    let messages: Vec<&str> = rule_findings(&findings, "protocol-sync")
        .iter()
        .map(|f| f.message.as_str())
        .collect();
    let expect = [
        "`Decode` is not decoded by `Opcode::from_u8`",
        "`Encode` is 1 in code but 7 in the doc",
        "`Decode` (2) is defined in code but not documented",
        "`Stats` (4) is documented but not defined",
        "`STATUS_ERR` (1) is defined in code but not documented",
        "`STATUS_BUSY` (2) is documented but not defined",
        "`Encode` is defined but never dispatched",
    ];
    for needle in expect {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing {needle:?} in {messages:?}"
        );
    }
}

#[test]
fn protocol_sync_accepts_a_synchronized_protocol() {
    let findings = scan_fixture("protocol_good");
    assert!(
        rule_findings(&findings, "protocol-sync").is_empty(),
        "expected no protocol-sync findings: {findings:?}"
    );
}

#[test]
fn docs_gate_fires_on_ungated_crate_roots() {
    let findings = scan_fixture("docsgate_bad");
    assert!(
        rule_findings(&findings, "docs-gate")
            .iter()
            .any(|f| f.file == "crates/widget/src/lib.rs"),
        "expected a docs-gate finding: {findings:?}"
    );
}

#[test]
fn metrics_sync_detects_drift_in_both_directions() {
    let findings = scan_fixture("metrics_bad");
    let hits = rule_findings(&findings, "metrics-sync");
    assert!(
        hits.iter()
            .any(|f| f.file == "src/lib.rs"
                && f.message.contains("`deepn_fixture_undocumented_total`")),
        "expected an undocumented-instrument finding: {findings:?}"
    );
    // rustfmt wraps the name onto the next line; the rule must still
    // extract it through the joined raw channel.
    assert!(
        hits.iter()
            .any(|f| f.message.contains("`deepn_fixture_wrapped_seconds`")),
        "expected a finding for the wrapped registration: {findings:?}"
    );
    assert!(
        hits.iter().any(|f| f.file == "docs/OBSERVABILITY.md"
            && f.message.contains("`deepn_fixture_ghost_total`")),
        "expected a documented-but-unregistered finding: {findings:?}"
    );
    // The waived, documented, dynamic, and test-only registrations must
    // not fire.
    assert_eq!(hits.len(), 3, "exactly the three drift sites: {findings:?}");
}

#[test]
fn metrics_sync_accepts_a_synchronized_catalog() {
    let findings = scan_fixture("metrics_good");
    assert!(
        rule_findings(&findings, "metrics-sync").is_empty(),
        "expected no metrics-sync findings: {findings:?}"
    );
}

#[test]
fn the_real_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").exists(),
        "expected the workspace root at {root:?}"
    );
    let findings = deepn_lint::run(Path::new(&root)).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean:\n{}",
        findings
            .iter()
            .map(Finding::human)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
