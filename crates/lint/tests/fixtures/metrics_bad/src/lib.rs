//! Fixture: one undocumented registration, one waived, plus a catalog
//! row for an instrument that does not exist.

fn instruments() {
    let r = registry();
    // Undocumented: must fire.
    let _a = r.counter("deepn_fixture_undocumented_total", "not in the doc");
    // rustfmt-style wrap: the name sits on the line after the call.
    let _b = r.histogram(
        "deepn_fixture_wrapped_seconds",
        "also not in the doc, found via joined raw lines",
    );
    // lint:allow(metrics-sync): internal-only instrument, deliberately
    // kept out of the operator catalog.
    let _c = r.gauge("deepn_fixture_waived_depth", "waived");
    // Documented: must not fire.
    let _d = r.counter("deepn_fixture_ok_total", "in the doc");
    // Not a literal name: skipped, never flagged.
    let _e = r.counter(dynamic_name(), "computed");
}

#[cfg(test)]
mod tests {
    fn test_only() {
        let r = super::registry();
        let _ = r.counter("deepn_fixture_test_only_total", "test code never fires");
    }
}
