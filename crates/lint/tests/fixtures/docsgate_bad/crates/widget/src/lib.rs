// A fixture crate root without the missing_docs gate.
pub fn widget() -> u32 {
    42
}
