// A fixture: a properly documented and ledgered unsafe site.
pub fn peek(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
