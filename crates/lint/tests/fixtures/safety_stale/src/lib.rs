// A fixture: no unsafe code at all, but the ledger still lists a site.
pub fn peek(v: &[u8]) -> Option<u8> {
    v.first().copied()
}
