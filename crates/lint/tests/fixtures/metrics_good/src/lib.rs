//! Fixture: every registration documented, every row registered.

fn instruments() {
    let r = registry();
    let _a = r.counter("deepn_fixture_ok_total", "in the doc");
    let _b = r.histogram(
        "deepn_fixture_wrapped_seconds",
        "wrapped name, also in the doc",
    );
}
