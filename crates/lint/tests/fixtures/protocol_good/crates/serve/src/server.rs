// A fixture server dispatching every opcode.
pub fn dispatch(op: crate::protocol::Opcode) -> u8 {
    match op {
        crate::protocol::Opcode::Ping => 0,
        crate::protocol::Opcode::Encode => 1,
    }
}
