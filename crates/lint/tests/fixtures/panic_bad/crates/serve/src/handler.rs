// A fixture: panicking calls in the no-panic zone, plus lookalikes that
// must not fire.
pub fn handle(input: Option<u32>) -> u32 {
    let v = input.unwrap();
    if v > 100 {
        panic!("too big");
    }
    v
}

pub fn fine(input: Option<u32>) -> u32 {
    // unwrap_or_else is not unwrap; this line must not fire.
    input.unwrap_or_else(|| 0)
}

pub fn message() -> &'static str {
    // The words unwrap() and panic! inside a string must not fire.
    "never unwrap() or panic! in handlers"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
