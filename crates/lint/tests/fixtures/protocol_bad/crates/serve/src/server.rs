// A fixture server: dispatches Ping and Decode but never Encode.
pub fn dispatch(op: crate::protocol::Opcode) -> u8 {
    match op {
        crate::protocol::Opcode::Ping => 0,
        crate::protocol::Opcode::Decode => 2,
        _ => 1,
    }
}

pub fn dispatch2() {
    let _ = Opcode::Ping;
    let _ = Opcode::Decode;
}
