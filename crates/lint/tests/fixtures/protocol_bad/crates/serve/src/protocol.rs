// A fixture: drift in every direction the rule checks.
pub enum Opcode {
    Ping = 0,
    Encode = 1,
    Decode = 2,
}

impl Opcode {
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Opcode::Ping),
            1 => Some(Opcode::Encode),
            // Decode is missing here: defined but not decodable.
            _ => None,
        }
    }
}

pub const STATUS_OK: u8 = 0;
pub const STATUS_ERR: u8 = 1;
