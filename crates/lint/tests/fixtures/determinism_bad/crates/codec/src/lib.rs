// A fixture: banned APIs in a byte-identity crate, one of them waived
// with a reason, one "waived" without a reason.
use std::collections::HashMap;
use std::time::Instant;

pub fn tally(keys: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.len()
}

pub fn dedup(keys: &[u32]) -> Vec<u32> {
    // lint:allow(determinism): the set is drained in sorted order below
    let s: std::collections::HashSet<u32> = keys.iter().copied().collect();
    let mut v: Vec<u32> = s.into_iter().collect();
    v.sort_unstable();
    v
}

pub fn stamp() -> Instant {
    // lint:allow(determinism)
    Instant::now()
}

// In strings and comments these names must NOT fire: HashMap, Instant::now.
pub const DOC: &str = "uses HashMap and Instant::now in prose only";

#[cfg(test)]
mod tests {
    // Test code is out of scope for the determinism rule.
    use std::collections::HashMap;

    #[test]
    fn ok() {
        let _ = HashMap::<u32, u32>::new();
    }
}
