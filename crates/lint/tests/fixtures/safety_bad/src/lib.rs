// A fixture: unsafe with no SAFETY comment and no ledger.
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
