//! Class and dataset specifications.

/// The procedural recipe for one image class.
///
/// Pixel intensity (per channel `c`) is a clamped sum of frequency-banded
/// ingredients:
///
/// ```text
/// base[c]
///   + lf_amp   · smooth gradient along `lf_angle`          (low band)
///   + mf_amp   · sin(2π · mf_freq · r(θ=mf_angle) + φ)     (mid band)
///   + hf_amp   · checker(x, y)                             (Nyquist band)
///   + noise_amp · N(0, 1)                                  (broadband)
/// ```
///
/// with the grating phase `φ` and small angle/frequency jitters drawn per
/// image, so each class is a distribution rather than a single picture.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Human-readable class name.
    pub name: String,
    /// Mean color, per channel, in `[0, 255]`.
    pub base: [f32; 3],
    /// Low-frequency gradient amplitude (peak deviation from `base`).
    pub lf_amp: f32,
    /// Gradient direction in radians.
    pub lf_angle: f32,
    /// Mid-frequency grating amplitude.
    pub mf_amp: f32,
    /// Grating frequency in cycles per image width.
    pub mf_freq: f32,
    /// Grating direction in radians.
    pub mf_angle: f32,
    /// Pixel-checkerboard amplitude (the highest representable band).
    pub hf_amp: f32,
    /// Checker polarity: `+1` or `-1`; twins differ only here/in `hf_amp`.
    pub hf_sign: f32,
    /// Per-pixel Gaussian noise amplitude.
    pub noise_amp: f32,
}

impl ClassSpec {
    /// A neutral gray class with no structure (useful as a control).
    pub fn flat(name: &str) -> Self {
        ClassSpec {
            name: name.to_owned(),
            base: [128.0, 128.0, 128.0],
            lf_amp: 0.0,
            lf_angle: 0.0,
            mf_amp: 0.0,
            mf_freq: 0.0,
            mf_angle: 0.0,
            hf_amp: 0.0,
            hf_sign: 1.0,
            noise_amp: 0.0,
        }
    }
}

/// Two classes that agree in every low- and mid-frequency parameter and
/// differ only in the high-frequency checker — the reproduction's analogue
/// of the paper's junco/robin pair (Fig. 3), indistinguishable once the top
/// frequency bands are quantized away.
pub fn hf_twin_pair() -> (ClassSpec, ClassSpec) {
    let mut a = ClassSpec::flat("twin-plus");
    a.base = [140.0, 120.0, 110.0];
    a.lf_amp = 25.0;
    a.lf_angle = 0.6;
    a.mf_amp = 18.0;
    a.mf_freq = 3.0;
    a.mf_angle = 1.1;
    a.hf_amp = 22.0;
    a.hf_sign = 1.0;
    a.noise_amp = 4.0;
    let mut b = a.clone();
    b.name = "twin-minus".to_owned();
    b.hf_sign = -1.0;
    (a, b)
}

/// The full dataset recipe: image geometry, the class list, and per-class
/// counts for the train and test splits.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Image width (multiple of 8 recommended).
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Class recipes.
    pub classes: Vec<ClassSpec>,
    /// Training images generated per class.
    pub train_per_class: usize,
    /// Test images generated per class.
    pub test_per_class: usize,
}

impl DatasetSpec {
    /// The default ImageNet stand-in: 32×32, ten classes spanning the
    /// frequency spectrum, including one high-frequency twin pair (classes
    /// 8 and 9).
    pub fn imagenet_standin() -> Self {
        let mut classes = Vec::new();
        // LF-dominated classes: moderately separated colors and gradients.
        // The color margins are deliberately modest so that coarse
        // quantization of the low bands (what aggressive HVS compression
        // does to chroma) actually erodes their separability, as it does
        // between visually similar ImageNet classes.
        for (i, (base, angle)) in [
            ([152.0, 114.0, 110.0], 0.0f32),
            ([110.0, 150.0, 116.0], 1.3),
            ([112.0, 118.0, 154.0], 2.2),
        ]
        .iter()
        .enumerate()
        {
            let mut c = ClassSpec::flat(&format!("lf-{i}"));
            c.base = *base;
            c.lf_amp = 30.0;
            c.lf_angle = *angle;
            c.mf_amp = 8.0;
            c.mf_freq = 2.0;
            c.mf_angle = *angle + 0.4;
            c.noise_amp = 6.0;
            classes.push(c);
        }
        // MF-dominated classes: identical base color; identity rides on
        // the grating frequency/orientation alone.
        for (i, freq) in [3.0f32, 5.0, 7.0].iter().enumerate() {
            let mut c = ClassSpec::flat(&format!("mf-{i}"));
            c.base = [128.0, 124.0, 126.0];
            c.lf_amp = 10.0;
            c.lf_angle = 0.8 * i as f32;
            c.mf_amp = 30.0;
            c.mf_freq = *freq;
            c.mf_angle = 0.5 + 0.7 * i as f32;
            c.noise_amp = 6.0;
            classes.push(c);
        }
        // HF-textured classes: identical base and mid structure; identity
        // is the checker-to-noise ratio only.
        for (i, (hf, noise)) in [(30.0f32, 6.0f32), (12.0, 16.0)].iter().enumerate() {
            let mut c = ClassSpec::flat(&format!("hf-{i}"));
            c.base = [124.0, 128.0, 122.0];
            c.lf_amp = 10.0;
            c.mf_amp = 10.0;
            c.mf_freq = 4.0;
            c.mf_angle = 0.3;
            c.hf_amp = *hf;
            c.hf_sign = 1.0;
            c.noise_amp = *noise;
            classes.push(c);
        }
        // The high-frequency twins (classes 8 and 9).
        let (a, b) = hf_twin_pair();
        classes.push(a);
        classes.push(b);
        DatasetSpec {
            width: 32,
            height: 32,
            classes,
            train_per_class: 60,
            test_per_class: 24,
        }
    }

    /// A deliberately small configuration for unit tests and doctests:
    /// 16×16, four classes (one twin pair), a handful of images.
    pub fn tiny() -> Self {
        let (a, b) = hf_twin_pair();
        let mut lf = ClassSpec::flat("lf");
        lf.base = [170.0, 100.0, 90.0];
        lf.lf_amp = 40.0;
        lf.noise_amp = 4.0;
        let mut mf = ClassSpec::flat("mf");
        mf.mf_amp = 35.0;
        mf.mf_freq = 4.0;
        mf.mf_angle = 0.9;
        mf.noise_amp = 4.0;
        DatasetSpec {
            width: 16,
            height: 16,
            classes: vec![lf, mf, a, b],
            train_per_class: 6,
            test_per_class: 3,
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total images the spec will generate (train + test).
    pub fn total_images(&self) -> usize {
        self.class_count() * (self.train_per_class + self.test_per_class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twins_differ_only_in_hf() {
        let (a, b) = hf_twin_pair();
        assert_eq!(a.base, b.base);
        assert_eq!(a.lf_amp, b.lf_amp);
        assert_eq!(a.mf_amp, b.mf_amp);
        assert_eq!(a.mf_freq, b.mf_freq);
        assert_ne!(a.hf_sign, b.hf_sign);
    }

    #[test]
    fn standin_has_ten_classes_with_twins_last() {
        let spec = DatasetSpec::imagenet_standin();
        assert_eq!(spec.class_count(), 10);
        assert_eq!(spec.classes[8].name, "twin-plus");
        assert_eq!(spec.classes[9].name, "twin-minus");
        assert_eq!(spec.total_images(), 10 * 84);
        assert_eq!(spec.width % 8, 0);
    }

    #[test]
    fn tiny_is_small() {
        let spec = DatasetSpec::tiny();
        assert!(spec.total_images() <= 40);
        assert_eq!(spec.class_count(), 4);
    }
}
