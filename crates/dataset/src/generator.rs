//! Deterministic image synthesis from class specifications.

use crate::spec::{ClassSpec, DatasetSpec};
use deepn_codec::RgbImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated labeled dataset: parallel image and label vectors plus the
/// train/test boundary.
///
/// Images `0..train_len` are the training split; the rest are the test
/// split. Both splits interleave classes so any prefix is roughly balanced.
#[derive(Debug, Clone)]
pub struct ImageSet {
    images: Vec<RgbImage>,
    labels: Vec<usize>,
    train_len: usize,
    class_count: usize,
}

impl ImageSet {
    /// Generates the dataset described by `spec`, deterministically from
    /// `seed`. Each image gets its own RNG derived from
    /// `(seed, class, index)`, so regenerating with a different per-class
    /// count leaves earlier images bit-identical — and, because every
    /// stream is independent, rendering fans out over the `deepn-parallel`
    /// pool with the same bit-exact result at any `DEEPN_THREADS`.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no classes or zero-sized images.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        assert!(!spec.classes.is_empty(), "dataset needs at least one class");
        assert!(
            spec.width > 0 && spec.height > 0,
            "images must be non-empty"
        );
        // Interleave classes: image j of every class, then j+1, ...
        let mut plan = Vec::with_capacity(spec.total_images());
        let mut labels = Vec::with_capacity(spec.total_images());
        for split in 0..2usize {
            let count = if split == 0 {
                spec.train_per_class
            } else {
                spec.test_per_class
            };
            for j in 0..count {
                for label in 0..spec.classes.len() {
                    plan.push((split, j, label));
                    labels.push(label);
                }
            }
        }
        let images = deepn_parallel::par_map_collect(&plan, |_, &(split, j, label)| {
            // Distinct stream per (split, class, index).
            let stream = seed
                ^ (label as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((j as u64 + 1) << 20)
                ^ ((split as u64) << 60);
            let mut rng = StdRng::seed_from_u64(stream);
            render_class(&spec.classes[label], spec.width, spec.height, &mut rng)
        });
        let train_len = spec.train_per_class * spec.classes.len();
        ImageSet {
            images,
            labels,
            train_len,
            class_count: spec.classes.len(),
        }
    }

    /// Reassembles a set from stored parts (the inverse of the accessors,
    /// used by the artifact store to persist generated datasets).
    ///
    /// # Panics
    ///
    /// Panics if the invariants do not hold: `labels` must parallel
    /// `images`, `train_len` must not exceed the image count, and every
    /// label must be below `class_count`.
    pub fn from_parts(
        images: Vec<RgbImage>,
        labels: Vec<usize>,
        train_len: usize,
        class_count: usize,
    ) -> Self {
        assert_eq!(images.len(), labels.len(), "labels must parallel images");
        assert!(train_len <= images.len(), "train split exceeds image count");
        assert!(
            labels.iter().all(|&l| l < class_count),
            "label outside class range"
        );
        ImageSet {
            images,
            labels,
            train_len,
            class_count,
        }
    }

    /// All images (train split first).
    pub fn images(&self) -> &[RgbImage] {
        &self.images
    }

    /// Length of the training prefix of [`images`](Self::images).
    pub fn train_len(&self) -> usize {
        self.train_len
    }

    /// Labels parallel to [`images`](Self::images).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Total image count.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// The training split: `(images, labels)`.
    pub fn train(&self) -> (&[RgbImage], &[usize]) {
        (
            &self.images[..self.train_len],
            &self.labels[..self.train_len],
        )
    }

    /// The test split: `(images, labels)`.
    pub fn test(&self) -> (&[RgbImage], &[usize]) {
        (
            &self.images[self.train_len..],
            &self.labels[self.train_len..],
        )
    }

    /// Every `interval`-th image of each class from the training split, in
    /// class order — the paper's Algorithm 1 sampling step.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn sample_per_class(&self, interval: usize) -> Vec<&RgbImage> {
        assert!(interval > 0, "sampling interval must be positive");
        let mut out = Vec::new();
        let mut counters = vec![0usize; self.class_count];
        for (img, &label) in self.images[..self.train_len]
            .iter()
            .zip(&self.labels[..self.train_len])
        {
            counters[label] += 1;
            if counters[label].is_multiple_of(interval) {
                out.push(img);
            }
        }
        out
    }
}

/// Renders one image of a class with per-image jitter from `rng`.
fn render_class(class: &ClassSpec, width: usize, height: usize, rng: &mut StdRng) -> RgbImage {
    let mut img = RgbImage::new(width, height);
    // Per-image jitter: grating phase, small angle/frequency wobble,
    // gradient offset. These make each class a distribution.
    let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    let angle_jit: f32 = rng.gen_range(-0.08..0.08);
    let freq_jit: f32 = rng.gen_range(0.95..1.05);
    let grad_off: f32 = rng.gen_range(-0.15..0.15);
    let (w_f, h_f) = (width as f32, height as f32);
    let lf_dir = (class.lf_angle.cos(), class.lf_angle.sin());
    let mf_angle = class.mf_angle + angle_jit;
    let mf_dir = (mf_angle.cos(), mf_angle.sin());
    let mf_k = std::f32::consts::TAU * class.mf_freq * freq_jit / w_f;
    for y in 0..height {
        for x in 0..width {
            let (xf, yf) = (x as f32 / w_f - 0.5, y as f32 / h_f - 0.5);
            // Low band: smooth ramp in the gradient direction.
            let lf = class.lf_amp * ((xf * lf_dir.0 + yf * lf_dir.1) * 2.0 + grad_off);
            // Mid band: sinusoidal grating.
            let r = (x as f32) * mf_dir.0 + (y as f32) * mf_dir.1;
            let mf = class.mf_amp * (mf_k * r + phase).sin();
            // High band: pixel checker at Nyquist.
            let checker = if (x + y) % 2 == 0 { 1.0 } else { -1.0 };
            let hf = class.hf_amp * class.hf_sign * checker;
            // Broadband noise (Box–Muller).
            let noise = if class.noise_amp > 0.0 {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                class.noise_amp * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
            } else {
                0.0
            };
            let mut rgb = [0u8; 3];
            for (out, &base) in rgb.iter_mut().zip(class.base.iter()) {
                let v = base + lf + mf + hf + noise;
                *out = v.round().clamp(0.0, 255.0) as u8;
            }
            img.put(x, y, rgb);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::hf_twin_pair;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny();
        let a = ImageSet::generate(&spec, 11);
        let b = ImageSet::generate(&spec, 11);
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::tiny();
        let a = ImageSet::generate(&spec, 1);
        let b = ImageSet::generate(&spec, 2);
        assert_ne!(a.images()[0], b.images()[0]);
    }

    #[test]
    fn splits_have_expected_sizes_and_balance() {
        let spec = DatasetSpec::tiny();
        let set = ImageSet::generate(&spec, 5);
        let (tx, ty) = set.train();
        let (ex, ey) = set.test();
        assert_eq!(tx.len(), spec.train_per_class * spec.class_count());
        assert_eq!(ex.len(), spec.test_per_class * spec.class_count());
        for cls in 0..spec.class_count() {
            assert_eq!(
                ty.iter().filter(|&&l| l == cls).count(),
                spec.train_per_class
            );
            assert_eq!(
                ey.iter().filter(|&&l| l == cls).count(),
                spec.test_per_class
            );
        }
    }

    #[test]
    fn twin_classes_match_at_low_frequency() {
        // Average the twins' images: 2x2 box-filtered means must be close
        // (their low-frequency content is identical by construction) while
        // raw pixels differ (opposite checker).
        let (a, b) = hf_twin_pair();
        let spec = DatasetSpec {
            width: 16,
            height: 16,
            classes: vec![a, b],
            train_per_class: 8,
            test_per_class: 0,
        };
        let set = ImageSet::generate(&spec, 3);
        let (imgs, labels) = set.train();
        let mut mean = [[0.0f64; 2]; 2]; // [class][unused], keep per class mean
        let mut count = [0usize; 2];
        let mut lowpass = [0.0f64; 2];
        for (img, &l) in imgs.iter().zip(labels) {
            count[l] += 1;
            let mut acc = 0.0f64;
            for y in (0..16).step_by(2) {
                for x in (0..16).step_by(2) {
                    // 2x2 average kills the Nyquist checker.
                    let mut s = 0.0f64;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            s += f64::from(img.get(x + dx, y + dy)[1]);
                        }
                    }
                    acc += s / 4.0;
                }
            }
            lowpass[l] += acc / 64.0;
            mean[l][0] += f64::from(img.get(0, 0)[1]);
        }
        let lp0 = lowpass[0] / count[0] as f64;
        let lp1 = lowpass[1] / count[1] as f64;
        assert!(
            (lp0 - lp1).abs() < 4.0,
            "low-pass means diverge: {lp0} vs {lp1}"
        );
    }

    #[test]
    fn sample_per_class_honors_interval() {
        let spec = DatasetSpec::tiny(); // 6 train per class, 4 classes
        let set = ImageSet::generate(&spec, 9);
        assert_eq!(set.sample_per_class(2).len(), 3 * 4);
        assert_eq!(set.sample_per_class(1).len(), 6 * 4);
        assert_eq!(set.sample_per_class(7).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_spec_rejected() {
        let spec = DatasetSpec {
            width: 8,
            height: 8,
            classes: vec![],
            train_per_class: 1,
            test_per_class: 1,
        };
        ImageSet::generate(&spec, 0);
    }
}
