//! # deepn-dataset
//!
//! A seeded, procedural, labeled image dataset standing in for ImageNet in
//! the [DeepN-JPEG](https://arxiv.org/abs/1803.05788) reproduction.
//!
//! DeepN-JPEG's mechanism is statistical: it ranks the 64 DCT frequency
//! bands by the standard deviation of their coefficients over a sampled
//! dataset and assigns quantization steps accordingly. For the reproduction
//! to exercise the same code paths and produce the same *shape* of results,
//! the stand-in dataset must provide:
//!
//! 1. a natural-image-like coefficient spectrum — per-band σ decaying from
//!    low to high frequency (Reininger & Gibson's Laplacian model, the
//!    paper's \[24\]);
//! 2. classes whose discriminative features span **all** bands, including
//!    pairs that differ *only* in high-frequency content, so HVS-oriented
//!    compression visibly costs accuracy (the paper's Figs. 2–3);
//! 3. determinism, so every experiment is reproducible.
//!
//! Each [`ClassSpec`] mixes a low-frequency base (color + smooth gradient),
//! a mid-frequency grating, and a high-frequency checker/noise texture, with
//! per-image jitter drawn from a per-image RNG. The [`hf_twin_pair`]
//! constructor yields the "junco vs robin" analogue: two classes identical
//! at low/mid frequencies that only a high-frequency detail separates.
//!
//! ```
//! use deepn_dataset::{DatasetSpec, ImageSet};
//!
//! let set = ImageSet::generate(&DatasetSpec::tiny(), 7);
//! assert_eq!(set.len(), set.labels().len());
//! let again = ImageSet::generate(&DatasetSpec::tiny(), 7);
//! assert_eq!(set.images()[0], again.images()[0]); // fully deterministic
//! ```

#![deny(missing_docs)]

mod generator;
mod spec;
mod stats;

pub use generator::ImageSet;
pub use spec::{hf_twin_pair, ClassSpec, DatasetSpec};
pub use stats::{channel_mean_std, PlaneStats};
