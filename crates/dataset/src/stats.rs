//! Basic dataset statistics (used for sanity checks and normalization).

use deepn_codec::RgbImage;

/// Streaming mean/variance accumulator (Welford's algorithm), numerically
/// stable for the long coefficient streams the frequency analysis produces.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlaneStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl PlaneStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        PlaneStats::default()
    }

    /// Folds one sample into the statistics.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Reconstructs an accumulator from raw Welford state, the inverse of
    /// [`raw_parts`](Self::raw_parts) (used by the artifact store to
    /// persist analysis results).
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        PlaneStats { n, mean, m2 }
    }

    /// The raw Welford state `(n, mean, m2)`.
    pub fn raw_parts(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &PlaneStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let new_mean = self.mean + d * other.n as f64 / n;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.mean = new_mean;
        self.n += other.n;
    }
}

/// Per-channel `(mean, std)` over a set of images, in `[0, 255]` units.
pub fn channel_mean_std(images: &[RgbImage]) -> [(f64, f64); 3] {
    let mut acc = [PlaneStats::new(); 3];
    for img in images {
        for (i, &b) in img.as_bytes().iter().enumerate() {
            acc[i % 3].push(f64::from(b));
        }
    }
    [
        (acc[0].mean(), acc[0].std_dev()),
        (acc[1].mean(), acc[1].std_dev()),
        (acc[2].mean(), acc[2].std_dev()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = PlaneStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut whole = PlaneStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = PlaneStats::new();
        let mut b = PlaneStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PlaneStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn channel_stats_of_solid_color() {
        let mut img = RgbImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.put(x, y, [10, 20, 30]);
            }
        }
        let stats = channel_mean_std(&[img]);
        assert_eq!(stats[0].0, 10.0);
        assert_eq!(stats[1].0, 20.0);
        assert_eq!(stats[2].0, 30.0);
        assert_eq!(stats[0].1, 0.0);
    }
}
