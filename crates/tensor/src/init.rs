//! Weight initialization helpers.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// He-normal initialization: zero-mean Gaussian with variance `2 / fan_in`,
/// the standard choice for ReLU networks.
///
/// The Gaussian is sampled with Box–Muller from the provided seeded RNG so
/// every training run in this repository is reproducible.
pub fn he_normal(rng: &mut StdRng, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    let data = t.data_mut();
    let mut i = 0;
    while i < data.len() {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] = r * theta.cos() * std;
        if i + 1 < data.len() {
            data[i + 1] = r * theta.sin() * std;
        }
        i += 2;
    }
    t
}

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform_init(rng: &mut StdRng, dims: &[usize], limit: f32) -> Tensor {
    assert!(limit >= 0.0, "limit must be non-negative");
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.gen_range(-limit..=limit);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = he_normal(&mut rng, &[64, 64], 64);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let expect = 2.0 / 64.0;
        assert!(
            (var - expect).abs() < expect * 0.2,
            "var {var} vs expected {expect}"
        );
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = he_normal(&mut StdRng::seed_from_u64(7), &[10], 10);
        let b = he_normal(&mut StdRng::seed_from_u64(7), &[10], 10);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform_init(&mut rng, &[1000], 0.25);
        assert!(t.data().iter().all(|v| v.abs() <= 0.25));
    }
}
