//! Dense linear-algebra kernels.
//!
//! All three matmul variants use a blocked i-k-j loop order so the innermost
//! loop streams contiguously through both the output row and one input row,
//! which is the standard cache-friendly layout for row-major storage.
//!
//! Large products additionally split their **output rows** across the
//! `deepn-parallel` pool. Each output element still accumulates its terms
//! in exactly the scalar order (rows are whole units of work), so the
//! parallel results are bit-identical to the scalar ones at any
//! `DEEPN_THREADS` — asserted by the parity tests below and in
//! `tests/proptest_parallel.rs`.

use crate::Tensor;

/// Minimum `m·k·n` product (multiply-add count) before a matmul forks onto
/// the pool; below this the fork/join overhead dominates.
const PAR_MIN_FLOPS: usize = 1 << 15;

/// Whether a kernel with `rows` independent output rows and `flops` total
/// multiply-adds is worth running on the pool right now.
fn worth_forking(rows: usize, flops: usize) -> bool {
    rows >= 2 && flops >= PAR_MIN_FLOPS && deepn_parallel::current_threads() > 1
}

/// `C = A · B` for 2-D tensors.
///
/// # Panics
///
/// Panics if either operand is not 2-D or the inner dimensions disagree.
///
/// ```
/// use deepn_tensor::{matmul, Tensor};
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    let row_kernel = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    };
    if worth_forking(m, m * k * n) {
        par_rows(od, m, n, &row_kernel);
    } else {
        for (i, orow) in od.chunks_mut(n).enumerate() {
            row_kernel(i, orow);
        }
    }
    out
}

/// Runs `row_kernel(row_index, output_row)` over all `m` rows of `od`
/// (each `n` wide), splitting contiguous row ranges across the pool.
/// Shared by the matmul variants and `im2col`, so the chunking policy
/// lives in one place.
pub(crate) fn par_rows(
    od: &mut [f32],
    m: usize,
    n: usize,
    row_kernel: &(impl Fn(usize, &mut [f32]) + Sync),
) {
    let rows_per_chunk = deepn_parallel::chunk_size_for(deepn_parallel::global(), m);
    deepn_parallel::par_chunks_mut(od, rows_per_chunk * n, |ci, chunk| {
        let base = ci * rows_per_chunk;
        for (r, orow) in chunk.chunks_mut(n).enumerate() {
            row_kernel(base + r, orow);
        }
    });
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, and the result is `[m, n]`. Used by the
/// convolution backward pass (gradient with respect to the input columns).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the shared dimension disagrees.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b shared dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    if worth_forking(m, m * k * n) {
        // Row-parallel form: each output row accumulates over p in the
        // same ascending order as the scalar p-outer loop, so every
        // output element sees an identical addition sequence.
        par_rows(od, m, n, &|i: usize, orow: &mut [f32]| {
            for p in 0..k {
                let av = ad[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        });
        return out;
    }
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, and the result is `[m, n]`. Used by the
/// convolution backward pass (gradient with respect to the kernel matrix).
///
/// # Panics
///
/// Panics if either operand is not 2-D or the shared dimension disagrees.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt shared dimension mismatch: {k} vs {k2}");
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    let row_kernel = |i: usize, orow: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if worth_forking(m, m * k * n) {
        par_rows(od, m, n, &row_kernel);
    } else {
        for (i, orow) in od.chunks_mut(n).enumerate() {
            row_kernel(i, orow);
        }
    }
    out
}

/// `dst += src`, element-wise.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn add_assign(dst: &mut Tensor, src: &Tensor) {
    assert_eq!(dst.shape(), src.shape(), "add_assign shape mismatch");
    for (d, s) in dst.data_mut().iter_mut().zip(src.data().iter()) {
        *d += s;
    }
}

/// `dst += alpha * src`, element-wise (the BLAS `axpy`).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn axpy(alpha: f32, src: &Tensor, dst: &mut Tensor) {
    assert_eq!(dst.shape(), src.shape(), "axpy shape mismatch");
    for (d, s) in dst.data_mut().iter_mut().zip(src.data().iter()) {
        *d += alpha * s;
    }
}

/// Multiplies every element of `t` by `alpha` in place.
pub fn scale(t: &mut Tensor, alpha: f32) {
    for v in t.data_mut() {
        *v *= alpha;
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d)
    }

    #[test]
    fn matmul_identity() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        // [1 2; 3 4; 5 6] · [1; 1] = [3; 7; 11]
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(vec![1.0, 1.0], &[2, 1]);
        assert_eq!(matmul(&a, &b).data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[2, 3]);
        let b = t(vec![2.0, 1.0, 0.0, -1.0, 1.0, 3.0], &[2, 3]);
        // at_b: aT(3x2) · b(2x3) = 3x3
        let atb = matmul_at_b(&a, &b);
        let at = t(vec![1.0, 3.0, -2.0, 4.0, 0.5, -1.0], &[3, 2]);
        assert_eq!(atb.data(), matmul(&at, &b).data());
        // a_bt: a(2x3) · bT(3x2) = 2x2
        let abt = matmul_a_bt(&a, &b);
        let bt = t(vec![2.0, -1.0, 1.0, 1.0, 0.0, 3.0], &[3, 2]);
        assert_eq!(abt.data(), matmul(&a, &bt).data());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn parallel_matmuls_are_bit_identical_to_scalar() {
        // Large enough that `worth_forking` fires whenever the global pool
        // has more than one thread; under DEEPN_THREADS=1 both sides run
        // the same inline path and the assertion is trivially true.
        let m = 48;
        let k = 40;
        let n = 44;
        let mk: Vec<f32> = (0..m * k).map(|i| ((i * 31 % 17) as f32) - 8.0).collect();
        let kn: Vec<f32> = (0..k * n)
            .map(|i| ((i * 13 % 23) as f32) * 0.25 - 2.0)
            .collect();
        let a = t(mk.clone(), &[m, k]);
        let b = t(kn.clone(), &[k, n]);
        let par = matmul(&a, &b);
        let seq = deepn_parallel::run_sequential(|| matmul(&a, &b));
        assert_eq!(par.data(), seq.data());

        let at = t(
            (0..k * m).map(|i| ((i * 7 % 29) as f32) - 14.0).collect(),
            &[k, m],
        );
        let bt = t(kn, &[k, n]);
        let par = matmul_at_b(&at, &bt);
        let seq = deepn_parallel::run_sequential(|| matmul_at_b(&at, &bt));
        assert_eq!(par.data(), seq.data());

        let lhs = t(mk, &[m, k]);
        let rhs = t(
            (0..n * k).map(|i| ((i * 11 % 19) as f32) * 0.5).collect(),
            &[n, k],
        );
        let par = matmul_a_bt(&lhs, &rhs);
        let seq = deepn_parallel::run_sequential(|| matmul_a_bt(&lhs, &rhs));
        assert_eq!(par.data(), seq.data());
    }

    #[test]
    fn axpy_and_scale() {
        let mut d = t(vec![1.0, 2.0], &[2]);
        let s = t(vec![10.0, 20.0], &[2]);
        axpy(0.5, &s, &mut d);
        assert_eq!(d.data(), &[6.0, 12.0]);
        scale(&mut d, 2.0);
        assert_eq!(d.data(), &[12.0, 24.0]);
        add_assign(&mut d, &s);
        assert_eq!(d.data(), &[22.0, 44.0]);
    }
}
