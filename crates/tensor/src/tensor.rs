use crate::Shape;
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the workhorse value type of the `deepn-nn` training stack:
/// activations, weights, and gradients are all `Tensor`s. Layout is always
/// contiguous row-major (outermost dimension first), so a 4-D tensor indexed
/// as `[n][c][h][w]` is the conventional NCHW layout.
///
/// ```
/// use deepn_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.at(&[1, 2]), 5.0);
/// assert_eq!(t.sum(), 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor that takes ownership of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// The `n × n` identity matrix.
    ///
    /// ```
    /// use deepn_tensor::Tensor;
    /// let i = Tensor::eye(3);
    /// assert_eq!(i.at(&[1, 1]), 1.0);
    /// assert_eq!(i.at(&[1, 2]), 0.0);
    /// ```
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing storage in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing storage in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into {shape}",
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element along the last axis for each row of a
    /// 2-D tensor. This is the `argmax` used to turn logits into class
    /// predictions.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a 2-D tensor");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    /// Squared L2 norm of the tensor.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, .., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

impl Default for Tensor {
    /// A single-element zero tensor.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.sum(), 7.5);
    }

    #[test]
    fn from_vec_validates_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 9.0);
        assert_eq!(t.at(&[1, 2, 3]), 9.0);
        assert_eq!(t.data()[23], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).reshape(&[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_size_change() {
        Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn argmax_rows_picks_first_max_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn max_abs_diff_measures_distance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.5, 1.0], &[2]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(4);
        assert_eq!(i.sum(), 4.0);
        assert_eq!(i.at(&[2, 2]), 1.0);
        assert_eq!(i.at(&[0, 3]), 0.0);
    }
}
