use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first
/// (row-major / NCHW order).
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that caches nothing and
/// validates nothing beyond non-emptiness; the element count is the product
/// of all dimensions.
///
/// ```
/// use deepn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        Shape(dims.to_vec())
    }

    /// Number of elements a tensor of this shape holds.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The dimensions as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank()` or any index is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        for (i, (&x, &d)) in idx.iter().zip(self.0.iter()).enumerate() {
            assert!(x < d, "index {x} out of bounds for dim {i} of size {d}");
            off = off * d + x;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", dims.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
    }

    #[test]
    fn zero_dim_makes_empty() {
        let s = Shape::new(&[4, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn offset_is_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 0, 0]), 12);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_shape_rejected() {
        Shape::new(&[]);
    }

    #[test]
    fn display_and_debug() {
        let s = Shape::new(&[1, 28, 28]);
        assert_eq!(format!("{s}"), "[1x28x28]");
        assert_eq!(format!("{s:?}"), "Shape[1, 28, 28]");
    }
}
