//! The im2col/col2im lowering that turns 2-D convolution into matmul.

use crate::Tensor;

/// The static geometry of a 2-D convolution: input plane size, kernel size,
/// stride, and symmetric zero padding.
///
/// ```
/// use deepn_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 32, 32, 3, 1, 1);
/// assert_eq!((g.out_h(), g.out_w()), (32, 32)); // "same" conv
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both directions.
    pub stride: usize,
    /// Symmetric zero padding in both directions.
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero, or if the padded input is
    /// smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * pad >= kernel && in_w + 2 * pad >= kernel,
            "padded input {}x{} smaller than kernel {kernel}",
            in_h + 2 * pad,
            in_w + 2 * pad,
        );
        Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            pad,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Rows of the im2col matrix: one per kernel element per input channel.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: one per output pixel.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Lowers one CHW image into the `[C·K·K, outH·outW]` column matrix, so that
/// convolution with a `[outC, C·K·K]` kernel matrix is a single matmul.
///
/// Out-of-bounds taps (from padding) contribute zeros. Each output row is
/// an independent tap gather, so large lowerings split their rows across
/// the `deepn-parallel` pool; every row is written by exactly the scalar
/// loop, making the result bit-identical at any `DEEPN_THREADS`.
///
/// # Panics
///
/// Panics if `image` is not 3-D with the geometry's channel/size.
pub fn im2col(image: &Tensor, g: &Conv2dGeometry) -> Tensor {
    assert_eq!(image.shape().rank(), 3, "im2col expects a CHW image");
    assert_eq!(image.shape().dims(), &[g.in_channels, g.in_h, g.in_w]);
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    let rows = g.col_rows();
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = image.data();
    let dst = out.data_mut();
    let fill_row = |row: usize, drow: &mut [f32]| {
        let c = row / (g.kernel * g.kernel);
        let ky = row / g.kernel % g.kernel;
        let kx = row % g.kernel;
        let plane = &src[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
        for oy in 0..oh {
            let iy = (oy * g.stride + ky) as isize - g.pad as isize;
            if iy < 0 || iy >= g.in_h as isize {
                continue; // stays zero
            }
            let srow = &plane[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
            for ox in 0..ow {
                let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                if ix >= 0 && ix < g.in_w as isize {
                    drow[oy * ow + ox] = srow[ix as usize];
                }
            }
        }
    };
    if rows >= 2 && rows * cols >= PAR_MIN_ELEMS && deepn_parallel::current_threads() > 1 {
        crate::ops::par_rows(dst, rows, cols, &fill_row);
    } else {
        for (row, drow) in dst.chunks_mut(cols).enumerate() {
            fill_row(row, drow);
        }
    }
    out
}

/// Minimum column-matrix element count before `im2col` forks onto the
/// pool; the per-element work is a bounds check and a copy, so it takes a
/// fairly large lowering to amortize the fork.
const PAR_MIN_ELEMS: usize = 1 << 14;

/// Scatters a column-matrix gradient back into CHW image space — the adjoint
/// of [`im2col`]. Overlapping taps accumulate.
///
/// # Panics
///
/// Panics if `cols` does not have shape `[col_rows, col_cols]`.
pub fn col2im(cols: &Tensor, g: &Conv2dGeometry) -> Tensor {
    assert_eq!(cols.shape().dims(), &[g.col_rows(), g.col_cols()]);
    let (oh, ow) = (g.out_h(), g.out_w());
    let ncols = oh * ow;
    let mut out = Tensor::zeros(&[g.in_channels, g.in_h, g.in_w]);
    let src = cols.data();
    let dst = out.data_mut();
    let mut row = 0;
    for c in 0..g.in_channels {
        let plane_off = c * g.in_h * g.in_w;
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let srow = &src[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix >= 0 && ix < g.in_w as isize {
                            dst[plane_off + iy as usize * g.in_w + ix as usize] +=
                                srow[oy * ow + ox];
                        }
                    }
                }
                row += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul;

    #[test]
    fn geometry_same_conv() {
        let g = Conv2dGeometry::new(3, 8, 8, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (8, 8));
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 64);
    }

    #[test]
    fn geometry_strided() {
        let g = Conv2dGeometry::new(1, 9, 9, 3, 2, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn im2col_matches_naive_conv() {
        // 1 channel 4x4 input, 2x2 kernel, stride 1, no pad.
        let img = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 4, 4]);
        let g = Conv2dGeometry::new(1, 4, 4, 2, 1, 0);
        let cols = im2col(&img, &g);
        // Kernel [[1, 0], [0, -1]] -> row vector [1, 0, 0, -1]
        let kmat = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[1, 4]);
        let out = matmul(&kmat, &cols);
        // Naive: out[y][x] = img[y][x] - img[y+1][x+1] = -5 everywhere.
        assert!(out.data().iter().all(|&v| v == -5.0));
    }

    #[test]
    fn im2col_padding_zeroes_border_taps() {
        let img = Tensor::full(&[1, 2, 2], 1.0);
        let g = Conv2dGeometry::new(1, 2, 2, 3, 1, 1);
        let cols = im2col(&img, &g);
        // Center tap row (ky=1,kx=1) sees the full image: all ones.
        let ncols = g.col_cols();
        let center = &cols.data()[4 * ncols..5 * ncols];
        assert!(center.iter().all(|&v| v == 1.0));
        // Corner tap row (ky=0,kx=0) only hits the image at output (1,1).
        let corner = &cols.data()[0..ncols];
        assert_eq!(corner, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let g = Conv2dGeometry::new(2, 5, 5, 3, 2, 1);
        let x = Tensor::from_vec(
            (0..2 * 5 * 5)
                .map(|i| ((i * 7 % 13) as f32) - 6.0)
                .collect(),
            &[2, 5, 5],
        );
        let y = Tensor::from_vec(
            (0..g.col_rows() * g.col_cols())
                .map(|i| ((i * 5 % 11) as f32) - 5.0)
                .collect(),
            &[g.col_rows(), g.col_cols()],
        );
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn geometry_rejects_tiny_input() {
        Conv2dGeometry::new(1, 2, 2, 5, 1, 0);
    }

    #[test]
    fn parallel_im2col_is_bit_identical_to_scalar() {
        // 8·3·3 rows × 32·32 cols = 73728 elements: over the fork
        // threshold whenever the pool is multi-threaded.
        let g = Conv2dGeometry::new(8, 32, 32, 3, 1, 1);
        let img = Tensor::from_vec(
            (0..8 * 32 * 32)
                .map(|i| ((i * 37 % 251) as f32) - 125.0)
                .collect(),
            &[8, 32, 32],
        );
        let par = im2col(&img, &g);
        let seq = deepn_parallel::run_sequential(|| im2col(&img, &g));
        assert_eq!(par.data(), seq.data());
    }
}
