//! # deepn-tensor
//!
//! A minimal, dependency-light tensor library underpinning the
//! [DeepN-JPEG](https://arxiv.org/abs/1803.05788) reproduction.
//!
//! The library provides exactly what a small CNN training stack needs and
//! nothing more: a dense row-major [`Tensor`] of `f32` values with an
//! arbitrary-rank [`Shape`], cache-friendly [`matmul`], the
//! [`im2col`]/[`col2im`] lowering used by convolution layers, and a handful
//! of reductions.
//!
//! ## Example
//!
//! ```
//! use deepn_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]

mod im2col;
mod init;
mod ops;
mod shape;
mod tensor;

pub use im2col::{col2im, im2col, Conv2dGeometry};
pub use init::{he_normal, uniform_init};
pub use ops::{add_assign, axpy, matmul, matmul_a_bt, matmul_at_b, scale};
pub use shape::Shape;
pub use tensor::Tensor;
