//! Lightweight spans: RAII guards that record `(name, start, duration)`
//! events into bounded per-thread ring buffers.
//!
//! Recording is gated on one process-wide relaxed atomic ([`enabled`]):
//! a guard created while disabled never reads the clock and never
//! allocates, so leaving instrumentation in the hot path is near-free.
//! Each thread owns a ring of [`RING_CAP`] events; when full, the oldest
//! event is dropped and a per-thread drop counter advances, so a scrape
//! can report truncation honestly ([`dropped_spans`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::registry::thread_ordinal;

/// Per-thread span ring capacity. Oldest events are dropped when full.
pub(crate) const RING_CAP: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on (one relaxed load).
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One completed span: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// Start, in [`crate::tick`] nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread's process-wide ordinal.
    pub tid: u32,
}

struct Ring {
    events: std::collections::VecDeque<SpanEvent>,
    dropped: u64,
}

struct ThreadRing {
    ring: Mutex<Ring>,
}

/// All rings ever registered (threads register lazily on first record;
/// rings outlive their threads so late scrapes still see their events).
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            ring: Mutex::new(Ring {
                events: std::collections::VecDeque::with_capacity(RING_CAP),
                dropped: 0,
            }),
        });
        lock_unpoisoned(&RINGS).push(Arc::clone(&ring));
        ring
    };
}

fn push_event(ev: SpanEvent) {
    LOCAL.with(|tr| {
        let mut ring = lock_unpoisoned(&tr.ring);
        if ring.events.len() == RING_CAP {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    });
}

/// Records a completed interval directly — for phases whose start and end
/// are observed at different call sites (e.g. queue wait: submit time on
/// one thread, dequeue time on another). No-op while disabled.
pub fn record_span(name: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    push_event(SpanEvent {
        name,
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        tid: thread_ordinal() as u32,
    });
}

/// An RAII span guard: records one event when dropped. Created inactive
/// (no clock read, no allocation) while recording is disabled.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this guard will record on drop.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let end = crate::tick();
            push_event(SpanEvent {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                tid: thread_ordinal() as u32,
            });
        }
    }
}

/// Opens a span; the returned guard records `(name, start, duration)`
/// when dropped. While recording is disabled the guard is inert.
///
/// Bind the guard — `let _span = span("serve.request");` — a bare `_`
/// drops it immediately.
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard {
            name,
            start_ns: crate::tick(),
            active: true,
        }
    } else {
        SpanGuard {
            name,
            start_ns: 0,
            active: false,
        }
    }
}

/// Macro form of [`span`], for symmetry with conventional tracing APIs:
/// `let _g = span!("codec.encode_strip");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Clones every thread's ring into one list, sorted by `(start, tid)`.
/// Recording threads are not paused; events recorded during the snapshot
/// may or may not be included.
pub fn snapshot_spans() -> Vec<SpanEvent> {
    let rings: Vec<Arc<ThreadRing>> = lock_unpoisoned(&RINGS).iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    for tr in rings {
        let ring = lock_unpoisoned(&tr.ring);
        out.extend(ring.events.iter().cloned());
    }
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Total events dropped to ring overflow, across all threads.
pub fn dropped_spans() -> u64 {
    let rings: Vec<Arc<ThreadRing>> = lock_unpoisoned(&RINGS).iter().map(Arc::clone).collect();
    rings
        .iter()
        .map(|tr| lock_unpoisoned(&tr.ring).dropped)
        .sum()
}

/// Empties every ring and resets drop counters (rings stay registered).
pub fn clear_spans() {
    let rings: Vec<Arc<ThreadRing>> = lock_unpoisoned(&RINGS).iter().map(Arc::clone).collect();
    for tr in rings {
        let mut ring = lock_unpoisoned(&tr.ring);
        ring.events.clear();
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global enabled/ring state; serialize them.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_guard_records_nothing() {
        let _gate = lock_unpoisoned(&GATE);
        set_enabled(false);
        clear_spans();
        {
            let g = span("test.disabled");
            assert!(!g.is_active());
        }
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn guard_records_name_and_duration_on_drop() {
        let _gate = lock_unpoisoned(&GATE);
        set_enabled(true);
        clear_spans();
        {
            let _g = span!("test.guard");
        }
        record_span("test.manual", 10, 25);
        set_enabled(false);
        let spans = snapshot_spans();
        assert!(spans.iter().any(|e| e.name == "test.guard"));
        let manual = spans
            .iter()
            .find(|e| e.name == "test.manual")
            .expect("manual span recorded");
        assert_eq!(manual.dur_ns, 15);
        clear_spans();
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _gate = lock_unpoisoned(&GATE);
        set_enabled(true);
        clear_spans();
        for i in 0..(RING_CAP as u64 + 10) {
            record_span("test.flood", i, i + 1);
        }
        set_enabled(false);
        let spans: Vec<SpanEvent> = snapshot_spans()
            .into_iter()
            .filter(|e| e.name == "test.flood")
            .collect();
        assert_eq!(spans.len(), RING_CAP);
        assert!(dropped_spans() >= 10);
        // Oldest events are the ones dropped: the earliest start is gone.
        assert!(spans.iter().all(|e| e.start_ns >= 10));
        clear_spans();
    }
}
