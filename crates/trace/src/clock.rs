//! The clock seam: the **only** file in the workspace's byte-identity
//! scope that reads the monotonic clock.
//!
//! Every instrumented crate times work through [`now_ns`] (usually via
//! [`crate::tick`]), so the `deepn-lint` determinism rule can ban
//! `Instant::now` everywhere else and allowlist exactly this file.
//! Readings are nanoseconds since the first call in the process — a
//! process-private epoch, so values are compact and order-comparable but
//! carry no wall-clock meaning.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds elapsed since this function was first called in the
/// process. Monotonic and thread-safe; the first caller pins the epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    // A u64 of nanoseconds holds ~584 years of uptime; the cast is safe
    // for any real process lifetime.
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_never_go_backwards() {
        let mut prev = now_ns();
        for _ in 0..1000 {
            let now = now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }
}
