#![deny(missing_docs)]
//! deepn-trace: the observability substrate, built from scratch (the
//! offline build has no `tracing`/`metrics` crates, the same way
//! `deepn-parallel` replaced rayon).
//!
//! Three pieces:
//!
//! * an instrument [`Registry`] of named monotonic [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed latency [`Histogram`]s (per-thread
//!   shards merged on scrape), rendered in the Prometheus text format —
//!   one [`global`] registry for process-wide instruments plus
//!   instantiable registries for per-server ones;
//! * lightweight **spans**: [`span()`] / [`span!`] RAII guards recording
//!   `(name, start, duration)` events into bounded per-thread ring
//!   buffers, exported as Chrome trace-event JSON by [`export`]
//!   (loadable in `chrome://tracing` / Perfetto);
//! * a small Prometheus text [`prom`] parser/validator/pretty-printer so
//!   CI can check scrapes and the CLI can render histograms humanely —
//!   plus a [`prom::MetricsSeries`] layer turning repeated scrapes into
//!   counter deltas/rates and histogram-delta percentiles;
//! * structured, leveled logfmt [`log`]ging with a `DEEPN_LOG` filter, a
//!   pluggable writer seam, and a per-thread flight-recorder ring dumped
//!   by an installable panic hook.
//!
//! **Determinism contract.** The monotonic clock lives in exactly one
//! file, [`clock`] — the byte-identity crates (`codec`, `parallel`, ...)
//! call [`tick`] instead of `Instant::now`, and the `deepn-lint`
//! determinism rule's allowlist covers only that seam. Timing feeds
//! instruments, never results: output bytes are identical with tracing
//! enabled or disabled, which `tests/proptest_trace.rs` enforces.
//!
//! **Disabled cost.** Span recording is gated on one relaxed atomic
//! ([`enabled`]); a disabled [`SpanGuard`] never reads the clock and
//! never allocates. Counters and histograms are always live (plain
//! atomics — they are the service's metrics, not a debug mode).

pub mod clock;
pub mod export;
pub mod log;
pub mod prom;
mod registry;
mod span;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Reading, Registry, BUCKET_BOUNDS_NS,
};
pub use span::{
    clear_spans, dropped_spans, record_span, set_enabled, snapshot_spans, span, SpanEvent,
    SpanGuard,
};

use std::sync::OnceLock;

/// Whether span recording is currently enabled (one relaxed atomic load).
pub fn enabled() -> bool {
    span::enabled()
}

/// Reads the current monotonic time in nanoseconds since the first call
/// in this process. The single clock entry point every instrumented
/// crate uses — see the module docs for the determinism contract.
pub fn tick() -> u64 {
    clock::now_ns()
}

/// Enables span recording when the `DEEPN_TRACE` environment variable is
/// set to anything but `0` or the empty string. Never *disables*: an
/// explicit [`set_enabled`]`(true)` survives an unset variable.
pub fn enable_from_env() {
    if let Ok(v) = std::env::var("DEEPN_TRACE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
}

/// The process-global instrument registry, for instruments whose owner is
/// the whole process (pool, codec stages). Components with per-instance
/// scrape semantics (one server among several in a test process) own a
/// [`Registry`] instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotonic() {
        let a = tick();
        let b = tick();
        assert!(b >= a);
    }

    #[test]
    fn global_registry_is_idempotent() {
        let c1 = global().counter("deepn_test_lib_total", "test counter");
        let c2 = global().counter("deepn_test_lib_total", "test counter");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "both handles hit the same instrument");
    }
}
