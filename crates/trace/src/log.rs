//! Structured, leveled logfmt logging — dependency-free, like the rest
//! of the observability substrate.
//!
//! Every event renders as one `key=value` line in logfmt
//! (`level=info ts=0.001234 event=conn_accept conn_id=3 peer=…`), with
//! keys and values quoted/escaped so that [`render_pairs`] → [`parse_line`]
//! round-trips **losslessly** for arbitrary strings (spaces, quotes,
//! newlines, unicode — `tests/proptest_logfmt.rs` enforces this).
//!
//! Three layers:
//!
//! * a process-wide **level filter** (one relaxed atomic, set from the
//!   `DEEPN_LOG` environment variable via [`init_from_env`]) deciding
//!   which events reach the writer;
//! * a pluggable **writer seam** ([`set_writer`] / [`reset_writer`],
//!   default stderr) so tests capture output without process plumbing;
//! * a bounded per-thread **flight recorder**: the last [`RING_CAP`]
//!   events on each thread are retained *regardless of the level
//!   filter*, and [`install_panic_hook`] dumps them (plus span state)
//!   to stderr when the process panics — turning a dead worker into a
//!   diagnosable event stream.
//!
//! Determinism contract: timestamps come from [`crate::tick`] (the one
//! sanctioned clock seam) and logging writes only to the side channel —
//! output bytes of the codec pipeline are identical with logging on or
//! off.

use std::collections::VecDeque;
use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};

use crate::registry::thread_ordinal;

/// Per-thread flight-recorder capacity: the last N events (any level)
/// kept for the panic dump. Oldest events are dropped when full.
pub const RING_CAP: usize = 256;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A request or component failed.
    Error = 1,
    /// Something degraded but survivable (slow request, busy rejection).
    Warn = 2,
    /// Lifecycle milestones (server listening, shutdown).
    Info = 3,
    /// Per-connection lifecycle detail.
    Debug = 4,
    /// Per-request detail — the firehose.
    Trace = 5,
}

impl Level {
    /// The lowercase name used in the `level=` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `DEEPN_LOG` value: a level name (`error`…`trace`), a
    /// digit (`0`=off … `5`=trace), or `off`. Returns `None` for
    /// unrecognized input, `Some(None)` for "off".
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(None),
            "error" | "1" => Some(Some(Level::Error)),
            "warn" | "warning" | "2" => Some(Some(Level::Warn)),
            "info" | "3" => Some(Some(Level::Info)),
            "debug" | "4" => Some(Some(Level::Debug)),
            "trace" | "5" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

impl Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Current max level as a u8 (0 = off). Default: warn — slow requests
/// and errors are visible without configuration, lifecycle chatter is
/// opt-in.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the process-wide level filter; `None` silences the writer
/// entirely (the flight recorder still records).
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current max level (`None` = off).
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Whether an event at `level` would reach the writer (one relaxed load).
pub fn log_enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Applies the `DEEPN_LOG` environment variable to the level filter
/// (`error|warn|info|debug|trace|off` or `0`–`5`). Unset or
/// unrecognized values leave the default (warn) in place.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("DEEPN_LOG") {
        if let Some(level) = Level::parse(&v) {
            set_max_level(level);
        }
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Writer seam
// ---------------------------------------------------------------------

/// The installed writer; `None` means stderr. Behind a mutex because
/// lines from concurrent threads must not interleave mid-line.
static WRITER: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);

/// Routes emitted lines to `w` instead of stderr — the test seam.
pub fn set_writer(w: Box<dyn Write + Send>) {
    *lock_unpoisoned(&WRITER) = Some(w);
}

/// Restores the default stderr writer, returning the previous one (so a
/// test can inspect what it captured).
pub fn reset_writer() -> Option<Box<dyn Write + Send>> {
    lock_unpoisoned(&WRITER).take()
}

fn write_line(line: &str) {
    let mut slot = lock_unpoisoned(&WRITER);
    match slot.as_mut() {
        Some(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        None => {
            let stderr = std::io::stderr();
            let _ = writeln!(stderr.lock(), "{line}");
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder: per-thread rings of rendered lines
// ---------------------------------------------------------------------

struct LogRing {
    lines: Mutex<VecDeque<(u64, String)>>,
}

/// All rings ever registered; rings outlive their threads so a panic
/// dump still sees events from finished workers.
static LOG_RINGS: Mutex<Vec<Arc<LogRing>>> = Mutex::new(Vec::new());

/// Global event sequence — orders the merged dump across threads.
static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_RING: Arc<LogRing> = {
        let ring = Arc::new(LogRing {
            lines: Mutex::new(VecDeque::with_capacity(RING_CAP)),
        });
        lock_unpoisoned(&LOG_RINGS).push(Arc::clone(&ring));
        ring
    };
}

fn record_line(line: String) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL_RING.with(|r| {
        let mut lines = lock_unpoisoned(&r.lines);
        if lines.len() == RING_CAP {
            lines.pop_front();
        }
        lines.push_back((seq, line));
    });
}

/// The most recent events across all threads, oldest first (merged by
/// emission order). Includes events below the level filter — the flight
/// recorder sees everything.
pub fn recent_events() -> Vec<String> {
    let rings: Vec<Arc<LogRing>> = lock_unpoisoned(&LOG_RINGS).iter().map(Arc::clone).collect();
    let mut tagged: Vec<(u64, String)> = Vec::new();
    for r in rings {
        tagged.extend(lock_unpoisoned(&r.lines).iter().cloned());
    }
    tagged.sort_by_key(|(seq, _)| *seq);
    tagged.into_iter().map(|(_, line)| line).collect()
}

/// Empties every flight-recorder ring (rings stay registered).
pub fn clear_recent() {
    let rings: Vec<Arc<LogRing>> = lock_unpoisoned(&LOG_RINGS).iter().map(Arc::clone).collect();
    for r in rings {
        lock_unpoisoned(&r.lines).clear();
    }
}

/// Installs (once) a panic hook that dumps the flight-recorder rings and
/// span state to stderr before delegating to the previous hook — so a
/// worker panic ships the last [`RING_CAP`] events per thread with it.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            dump_flight_recorder();
        }));
    });
}

/// Writes the flight-recorder dump to stderr: span recording state,
/// span-ring drop count, then every retained event line oldest-first.
/// Public so a supervisor can trigger it without panicking.
pub fn dump_flight_recorder() {
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    let events = recent_events();
    let _ = writeln!(
        out,
        "--- deepn flight recorder: {} event(s), spans_enabled={} dropped_spans={} ---",
        events.len(),
        crate::enabled(),
        crate::dropped_spans(),
    );
    for line in events {
        let _ = writeln!(out, "{line}");
    }
    let _ = writeln!(out, "--- end flight recorder ---");
}

// ---------------------------------------------------------------------
// logfmt rendering and parsing
// ---------------------------------------------------------------------

/// Whether `s` can appear unquoted in a logfmt line. Conservative: only
/// alphanumerics and `_ - . : / +`, and never empty.
fn is_bare(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/' | '+'))
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{{{:x}}}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_token(out: &mut String, s: &str) {
    if is_bare(s) {
        out.push_str(s);
    } else {
        push_escaped(out, s);
    }
}

/// Renders `key=value` pairs as one logfmt line (no trailing newline).
/// Keys and values are quoted and escaped whenever they are not plain
/// bare tokens, so [`parse_line`] recovers the exact strings.
pub fn render_pairs(pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        push_token(&mut out, k);
        out.push('=');
        push_token(&mut out, v);
    }
    out
}

/// Parses one logfmt line back into `key=value` pairs — the inverse of
/// [`render_pairs`]. Returns a positioned message on malformed input.
pub fn parse_line(line: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(pairs);
        }
        let key = parse_token(&mut chars, true)?;
        match chars.next() {
            Some('=') => {}
            other => return Err(format!("expected '=' after key {key:?}, found {other:?}")),
        }
        let value = parse_token(&mut chars, false)?;
        pairs.push((key, value));
    }
}

fn parse_token(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    is_key: bool,
) -> Result<String, String> {
    if chars.peek() == Some(&'"') {
        return parse_quoted(chars);
    }
    let mut out = String::new();
    while let Some(&c) = chars.peek() {
        if c == ' ' || (is_key && c == '=') {
            break;
        }
        out.push(c);
        chars.next();
    }
    if is_key && out.is_empty() {
        return Err("empty bare key".to_string());
    }
    Ok(out)
}

fn parse_quoted(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    chars.next(); // consume opening quote
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated quoted token".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    if chars.next() != Some('{') {
                        return Err("expected '{' after \\u".to_string());
                    }
                    let mut hex = String::new();
                    loop {
                        match chars.next() {
                            Some('}') => break,
                            Some(c) if c.is_ascii_hexdigit() && hex.len() < 6 => hex.push(c),
                            other => return Err(format!("bad \\u escape near {other:?}")),
                        }
                    }
                    let cp = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("bad \\u codepoint: {e}"))?;
                    match char::from_u32(cp) {
                        Some(c) => out.push(c),
                        None => return Err(format!("\\u{{{hex}}} is not a scalar value")),
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

/// Timestamp field: seconds since process start with microsecond
/// precision, from the sanctioned clock seam.
fn ts_string(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000_000, (ns % 1_000_000_000) / 1_000)
}

// ---------------------------------------------------------------------
// Event builder
// ---------------------------------------------------------------------

/// A structured event under construction. Build with [`event`] (or the
/// level shorthands), add fields, then [`Event::emit`].
#[must_use = "an Event does nothing until .emit()"]
#[derive(Debug)]
pub struct Event {
    level: Level,
    pairs: Vec<(String, String)>,
}

impl Event {
    /// Appends one `key=value` field; the value renders via `Display`.
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.pairs.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the line, records it in the flight recorder (always),
    /// and writes it to the writer when the level filter allows.
    pub fn emit(self) {
        let ns = crate::tick();
        let mut pairs = Vec::with_capacity(self.pairs.len() + 3);
        pairs.push(("level".to_string(), self.level.as_str().to_string()));
        pairs.push(("ts".to_string(), ts_string(ns)));
        pairs.push(("tid".to_string(), thread_ordinal().to_string()));
        pairs.extend(self.pairs);
        let line = render_pairs(&pairs);
        let pass = log_enabled(self.level);
        record_line(line.clone());
        if pass {
            write_line(&line);
        }
    }
}

/// Starts an event at `level` named `name` (the `event=` field).
pub fn event(level: Level, name: &str) -> Event {
    Event {
        level,
        pairs: vec![("event".to_string(), name.to_string())],
    }
}

/// Starts an error-level event.
pub fn error(name: &str) -> Event {
    event(Level::Error, name)
}

/// Starts a warn-level event.
pub fn warn(name: &str) -> Event {
    event(Level::Warn, name)
}

/// Starts an info-level event.
pub fn info(name: &str) -> Event {
    event(Level::Info, name)
}

/// Starts a debug-level event.
pub fn debug(name: &str) -> Event {
    event(Level::Debug, name)
}

/// Starts a trace-level event.
pub fn trace(name: &str) -> Event {
    event(Level::Trace, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Logging shares process-global writer/filter/ring state; serialize.
    static GATE: Mutex<()> = Mutex::new(());

    /// A writer that appends into a shared buffer, for capture tests.
    #[derive(Clone)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Capture {
        fn new() -> Self {
            Capture(Arc::new(Mutex::new(Vec::new())))
        }
        fn text(&self) -> String {
            String::from_utf8_lossy(&lock_unpoisoned(&self.0)).into_owned()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock_unpoisoned(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn rt(pairs: &[(&str, &str)]) {
        let owned: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let line = render_pairs(&owned);
        let back = parse_line(&line).unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
        assert_eq!(owned, back, "round trip through {line:?}");
    }

    #[test]
    fn round_trips_bare_quoted_and_unicode() {
        rt(&[("event", "conn_accept"), ("conn_id", "3")]);
        rt(&[("msg", "two words"), ("path", "/tmp/x.bin")]);
        rt(&[("k", ""), ("empty key ok", "v"), ("", "even empty")]);
        rt(&[("quote", "say \"hi\""), ("bs", "a\\b")]);
        rt(&[("nl", "a\nb\r\tc"), ("nul", "\u{0}\u{1f}\u{7f}")]);
        rt(&[("uni", "héllo — 世界 🚀"), ("eq", "a=b=c")]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in ["key", "\"unterminated=1", "k=\"open", "k=\"\\q\"", "=v x"] {
            assert!(parse_line(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_accepts_extra_spacing() {
        let pairs = parse_line("  a=1   b=\"two words\" ").expect("lenient spacing");
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], ("b".to_string(), "two words".to_string()));
    }

    #[test]
    fn level_filter_gates_writer_but_not_ring() {
        let _gate = lock_unpoisoned(&GATE);
        let cap = Capture::new();
        set_writer(Box::new(cap.clone()));
        set_max_level(Some(Level::Warn));
        clear_recent();

        warn("visible").field("k", 1).emit();
        debug("hidden").field("k", 2).emit();

        reset_writer();
        let text = cap.text();
        assert!(text.contains("event=visible"), "warn passes: {text}");
        assert!(!text.contains("event=hidden"), "debug filtered: {text}");

        let ring = recent_events().join("\n");
        assert!(ring.contains("event=visible"));
        assert!(ring.contains("event=hidden"), "ring sees filtered events");
        clear_recent();
    }

    #[test]
    fn emitted_lines_parse_and_carry_metadata() {
        let _gate = lock_unpoisoned(&GATE);
        let cap = Capture::new();
        set_writer(Box::new(cap.clone()));
        set_max_level(Some(Level::Trace));

        info("lifecycle")
            .field("addr", "127.0.0.1:0")
            .field("n", 7)
            .emit();

        reset_writer();
        set_max_level(Some(Level::Warn));
        let text = cap.text();
        let line = text.lines().last().expect("one line");
        let pairs = parse_line(line).expect("emitted line parses");
        assert_eq!(pairs[0].0, "level");
        assert_eq!(pairs[0].1, "info");
        assert_eq!(pairs[1].0, "ts");
        assert!(pairs.iter().any(|(k, v)| k == "event" && v == "lifecycle"));
        assert!(pairs.iter().any(|(k, v)| k == "n" && v == "7"));
    }

    #[test]
    fn ring_is_bounded() {
        let _gate = lock_unpoisoned(&GATE);
        set_max_level(None);
        clear_recent();
        for i in 0..(RING_CAP + 50) {
            trace("flood").field("i", i).emit();
        }
        set_max_level(Some(Level::Warn));
        let events: Vec<String> = recent_events()
            .into_iter()
            .filter(|l| l.contains("event=flood"))
            .collect();
        assert_eq!(events.len(), RING_CAP);
        // Oldest events were dropped: i=0 is gone, the newest survives.
        assert!(!events.iter().any(|l| l.ends_with("i=0")));
        assert!(events
            .iter()
            .any(|l| l.contains(&format!("i={}", RING_CAP + 49))));
        clear_recent();
    }

    #[test]
    fn level_parsing_and_order() {
        assert_eq!(Level::parse("info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("OFF"), Some(None));
        assert_eq!(Level::parse("5"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Trace);
    }
}
