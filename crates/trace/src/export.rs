//! Exporters: Chrome trace-event JSON for span snapshots, plus a small
//! JSON parser/well-formedness checker so smoke tests and the perf gate
//! don't need a JSON crate.
//!
//! The trace format is the Chrome/Perfetto "JSON Array Format" with
//! complete (`"ph":"X"`) events: `ts` and `dur` are microseconds as
//! floats, `pid` is a constant 1 (one process), `tid` is the recording
//! thread's ordinal. Load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use crate::span::SpanEvent;

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as microseconds with sub-µs precision preserved
/// (`1234` ns → `1.234`).
fn micros(ns: u64) -> String {
    let mut s = format!("{}.{:03}", ns / 1_000, ns % 1_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Renders span events as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"deepn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            escape_json(ev.name),
            micros(ev.start_ns),
            micros(ev.dur_ns),
            ev.tid
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// A parsed JSON value. Objects keep their members in source order (a
/// `Vec`, not a map — the determinism rule bans `HashMap` here and the
/// documents we read are small).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `src` as one well-formed JSON value (objects, arrays, strings,
/// numbers, booleans, null) with nothing trailing. Returns a positioned
/// message on the first error. Depth is capped to keep the
/// recursive-descent parser safe on adversarial input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Checks that `src` is one well-formed JSON value — [`parse_json`] with
/// the value discarded.
pub fn validate_json(src: &str) -> Result<(), String> {
    parse_json(src).map(|_| ())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null").map(|_| Json::Null),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos).map(Json::Num),
        Some(&c) => Err(format!("unexpected byte '{}' at {}", c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => {
                        out.push(b'"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push(b'\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push(b'/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push(0x08);
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push(0x0c);
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push(b'\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push(b'\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push(b'\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow to form one supplementary codepoint.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(format!("unpaired surrogate at byte {}", *pos));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err(format!("unpaired surrogate at byte {}", *pos));
                            }
                        } else if (0xdc00..0xe000).contains(&hi) {
                            return Err(format!("unpaired surrogate at byte {}", *pos));
                        } else {
                            hi
                        };
                        match char::from_u32(cp) {
                            Some(c) => {
                                let mut buf = [0u8; 4];
                                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            }
                            None => return Err(format!("bad codepoint at byte {}", *pos)),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character in string at byte {}", *pos)),
            _ => {
                out.push(b);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut cp = 0u32;
    for _ in 0..4 {
        match bytes.get(*pos) {
            Some(c) if c.is_ascii_hexdigit() => {
                cp = cp * 16 + (*c as char).to_digit(16).unwrap_or(0);
                *pos += 1;
            }
            _ => return Err(format!("bad \\u escape at byte {}", *pos)),
        }
    }
    Ok(cp)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let mut digits = 0;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("expected digits at byte {start}"));
    }
    if digits > 1 && bytes[int_start] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unrepresentable number at byte {start}"))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start_ns: u64, dur_ns: u64, tid: u32) -> SpanEvent {
        SpanEvent {
            name,
            start_ns,
            dur_ns,
            tid,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let events = [
            ev("serve.request", 1_500, 2_250, 0),
            ev("codec.dct", 2_000, 100, 3),
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).expect("exporter output is well-formed JSON");
        assert!(json.contains("\"name\":\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5"), "ns converted to µs: {json}");
        assert!(json.contains("\"dur\":2.25"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn empty_snapshot_still_exports_a_valid_document() {
        let json = chrome_trace_json(&[]);
        validate_json(&json).expect("empty trace is valid");
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            " { \"x\" : [ ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "\"unterminated",
            "{} extra",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validator_caps_nesting_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate_json(&deep).is_err());
    }

    #[test]
    fn parser_builds_values_and_unescapes_strings() {
        let v =
            parse_json("{\"a\": [1, 2.5e1], \"s\": \"x\\n\\u00e9\\ud83d\\ude80\", \"b\": true}")
                .expect("parses");
        assert_eq!(
            v.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[1].as_f64()),
            Some(25.0)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x\né🚀"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert!(
            parse_json("\"\\ud800\"").is_err(),
            "unpaired surrogate rejected"
        );
    }
}
