//! Exporters: Chrome trace-event JSON for span snapshots, plus a small
//! JSON well-formedness checker so smoke tests don't need a JSON crate.
//!
//! The trace format is the Chrome/Perfetto "JSON Array Format" with
//! complete (`"ph":"X"`) events: `ts` and `dur` are microseconds as
//! floats, `pid` is a constant 1 (one process), `tid` is the recording
//! thread's ordinal. Load the file at `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use crate::span::SpanEvent;

/// Escapes a string for a JSON string literal (quotes, backslashes,
/// control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as microseconds with sub-µs precision preserved
/// (`1234` ns → `1.234`).
fn micros(ns: u64) -> String {
    let mut s = format!("{}.{:03}", ns / 1_000, ns % 1_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Renders span events as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"deepn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            escape_json(ev.name),
            micros(ev.start_ns),
            micros(ev.dur_ns),
            ev.tid
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Checks that `src` is one well-formed JSON value (objects, arrays,
/// strings, numbers, booleans, null) with nothing trailing. Returns a
/// positioned message on the first error. Depth is capped to keep the
/// recursive-descent parser safe on adversarial input.
pub fn validate_json(src: &str) -> Result<(), String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(b'-') | Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(format!("unexpected byte '{}' at {}", c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(bytes, pos, b'"')?;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control character in string at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let mut digits = 0;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("expected digits at byte {start}"));
    }
    if digits > 1 && bytes[int_start] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start_ns: u64, dur_ns: u64, tid: u32) -> SpanEvent {
        SpanEvent {
            name,
            start_ns,
            dur_ns,
            tid,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let events = [
            ev("serve.request", 1_500, 2_250, 0),
            ev("codec.dct", 2_000, 100, 3),
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).expect("exporter output is well-formed JSON");
        assert!(json.contains("\"name\":\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.5"), "ns converted to µs: {json}");
        assert!(json.contains("\"dur\":2.25"));
        assert!(json.contains("\"tid\":3"));
    }

    #[test]
    fn empty_snapshot_still_exports_a_valid_document() {
        let json = chrome_trace_json(&[]);
        validate_json(&json).expect("empty trace is valid");
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00e9\\n\"",
            "{\"a\":[1,2,{\"b\":false}]}",
            " { \"x\" : [ ] } ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "\"unterminated",
            "{} extra",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validator_caps_nesting_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(validate_json(&deep).is_err());
    }
}
