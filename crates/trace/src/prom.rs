//! A small Prometheus text-exposition parser, validator, and
//! pretty-printer.
//!
//! Enough of the format to check our own scrapes in CI and to render
//! `deepn metrics` humanely: `# HELP` / `# TYPE` metadata, bare and
//! `{le="..."}`-labelled samples, and histogram families whose
//! `_bucket` / `_sum` / `_count` series fold back into the base name.

/// One sample line: full sample name, optional labels, numeric value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The sample's full name, including any `_bucket`/`_sum`/`_count`
    /// suffix.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// One metric family: `# HELP`/`# TYPE` metadata plus its samples.
#[derive(Debug, Clone)]
pub struct Family {
    /// Base metric name.
    pub name: String,
    /// Help text from `# HELP`.
    pub help: String,
    /// Kind from `# TYPE` (`counter`, `gauge`, `histogram`, ...).
    pub kind: String,
    /// Samples belonging to this family, in source order.
    pub samples: Vec<Sample>,
}

impl Sample {
    /// The sample's labels minus `le`, sorted — the identity of the
    /// series this sample belongs to. Histogram bucket/`_sum`/`_count`
    /// samples of one labelled series (e.g. one `shard="N"`) share a
    /// group key; samples from different shards do not.
    fn group_key(&self) -> Vec<(String, String)> {
        let mut key: Vec<(String, String)> = self
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        key.sort();
        key
    }
}

impl Family {
    /// Sum of every sample named `name` across all label sets — the
    /// fleet-wide value when a front end re-exposes per-shard series
    /// under one family. `None` when no sample carries the name.
    fn value_sum(&self, name: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut any = false;
        for s in self.samples.iter().filter(|s| s.name == name) {
            sum += s.value;
            any = true;
        }
        any.then_some(sum)
    }

    /// Histogram bucket samples folded across label groups: for each
    /// `le` bound, the summed cumulative count over every labelled
    /// series, sorted by bound; `+Inf` maps to `f64::INFINITY`. For an
    /// unlabelled single-process scrape this is the plain bucket list.
    pub fn buckets(&self) -> Vec<(f64, f64)> {
        let bucket_name = format!("{}_bucket", self.name);
        let mut folded: Vec<(f64, f64)> = Vec::new();
        for s in self.samples.iter().filter(|s| s.name == bucket_name) {
            let Some(bound) = bucket_bound(s) else {
                continue;
            };
            match folded.iter_mut().find(|(b, _)| b == &bound) {
                Some((_, count)) => *count += s.value,
                None => folded.push((bound, s.value)),
            }
        }
        folded.sort_by(|a, b| a.0.total_cmp(&b.0));
        folded
    }
}

/// The `le` bound of a bucket sample, if it has one.
fn bucket_bound(s: &Sample) -> Option<f64> {
    let le = s.labels.iter().find(|(k, _)| k == "le")?;
    if le.1 == "+Inf" {
        Some(f64::INFINITY)
    } else {
        le.1.parse().ok()
    }
}

/// Parses a Prometheus text exposition into families. Strict about what
/// we emit: every sample must belong to a family declared with `# HELP`
/// and `# TYPE` above it, and a family may be declared only once.
pub fn parse(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    let mut pending_help: Option<(String, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: malformed # HELP"))?;
            if pending_help.is_some() {
                return Err(format!("line {n}: # HELP without a following # TYPE"));
            }
            pending_help = Some((name.to_string(), help.to_string()));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: malformed # TYPE"))?;
            let (help_name, help) = pending_help
                .take()
                .ok_or_else(|| format!("line {n}: # TYPE {name} without a # HELP"))?;
            if help_name != name {
                return Err(format!(
                    "line {n}: # HELP names {help_name} but # TYPE names {name}"
                ));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {n}: family {name} declared twice"));
            }
            families.push(Family {
                name: name.to_string(),
                help,
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| owns_sample(&f.name, &f.kind, &sample.name))
            .ok_or_else(|| format!("line {n}: sample {} has no declared family", sample.name))?;
        family.samples.push(sample);
    }
    if pending_help.is_some() {
        return Err("trailing # HELP without a # TYPE".to_string());
    }
    Ok(families)
}

fn owns_sample(family: &str, kind: &str, sample: &str) -> bool {
    if sample == family {
        return true;
    }
    if kind == "histogram" {
        if let Some(base) = sample
            .strip_suffix("_bucket")
            .or_else(|| sample.strip_suffix("_sum"))
            .or_else(|| sample.strip_suffix("_count"))
        {
            return base == family;
        }
    }
    false
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (
                (&line[..open], &line[open + 1..close]),
                line[close + 1..].trim(),
            )
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| "missing value".to_string())?;
            ((name, ""), value.trim())
        }
    };
    let (name, labels_src) = name_part;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if !labels_src.is_empty() {
        for pair in labels_src.split(',') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad label pair {pair:?}"))?;
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
            labels.push((k.trim().to_string(), v.to_string()));
        }
    }
    let value: f64 = value_part
        .parse()
        .map_err(|_| format!("bad sample value {value_part:?}"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses and then cross-checks a scrape: every family has samples;
/// histogram families have cumulative non-decreasing buckets, a `+Inf`
/// bucket equal to `_count`, and a `_sum` — checked **per label group**
/// (the labels minus `le`), so a fleet exposition carrying one series
/// per `shard="N"` validates each shard's ladder independently. Returns
/// the families on success so callers can assert on contents.
pub fn validate(text: &str) -> Result<Vec<Family>, String> {
    let families = parse(text)?;
    for f in &families {
        if f.samples.is_empty() {
            return Err(format!("family {} has no samples", f.name));
        }
        if f.kind == "histogram" {
            validate_histogram(f)?;
        }
    }
    Ok(families)
}

/// Per-label-group histogram checks for one family.
fn validate_histogram(f: &Family) -> Result<(), String> {
    let bucket_name = format!("{}_bucket", f.name);
    let count_name = format!("{}_count", f.name);
    let sum_name = format!("{}_sum", f.name);
    let mut groups: Vec<Vec<(String, String)>> = Vec::new();
    for s in &f.samples {
        let key = s.group_key();
        if !groups.contains(&key) {
            groups.push(key);
        }
    }
    for key in &groups {
        let in_group = |s: &&Sample| s.group_key() == *key;
        let mut buckets: Vec<(f64, f64)> = f
            .samples
            .iter()
            .filter(in_group)
            .filter(|s| s.name == bucket_name)
            .filter_map(|s| Some((bucket_bound(s)?, s.value)))
            .collect();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        if buckets.is_empty() {
            return Err(format!("histogram {} has no buckets", f.name));
        }
        for w in buckets.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("histogram {}: le bounds not increasing", f.name));
            }
            if w[0].1 > w[1].1 {
                return Err(format!(
                    "histogram {}: cumulative bucket counts decrease",
                    f.name
                ));
            }
        }
        let inf = buckets
            .last()
            .filter(|(le, _)| le.is_infinite())
            .ok_or_else(|| format!("histogram {}: missing +Inf bucket", f.name))?;
        let count = f
            .samples
            .iter()
            .filter(in_group)
            .find(|s| s.name == count_name)
            .ok_or_else(|| format!("histogram {}: missing _count", f.name))?;
        if inf.1 != count.value {
            return Err(format!(
                "histogram {}: +Inf bucket {} != _count {}",
                f.name, inf.1, count.value
            ));
        }
        f.samples
            .iter()
            .filter(in_group)
            .find(|s| s.name == sum_name)
            .ok_or_else(|| format!("histogram {}: missing _sum", f.name))?;
    }
    Ok(())
}

/// Renders families back to Prometheus text exposition — the inverse of
/// [`parse`]. A front end uses this to re-expose per-shard scrapes it
/// has parsed, relabelled, and merged; the output round-trips through
/// [`validate`].
pub fn render(families: &[Family]) -> String {
    let mut out = String::new();
    for f in families {
        out.push_str("# HELP ");
        out.push_str(&f.name);
        out.push(' ');
        out.push_str(&f.help);
        out.push_str("\n# TYPE ");
        out.push_str(&f.name);
        out.push(' ');
        out.push_str(&f.kind);
        out.push('\n');
        for s in &f.samples {
            out.push_str(&s.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&v.replace('\\', "\\\\").replace('"', "\\\""));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&format_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// A sample value formatted so it parses back to the same `f64`.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Interpolated `q`-quantile in seconds from cumulative `(le, count)`
/// buckets (bucket resolution; the `+Inf` bucket reports its lower
/// bound, the truth being unknowable from a scrape).
pub fn bucket_quantile(buckets: &[(f64, f64)], q: f64) -> f64 {
    let total = match buckets.last() {
        Some(&(_, c)) if c > 0.0 => c,
        _ => return 0.0,
    };
    let target = (q * total).ceil().max(1.0);
    let mut prev_bound = 0.0;
    let mut prev_cum = 0.0;
    for &(bound, cum) in buckets {
        if cum >= target {
            if bound.is_infinite() {
                return prev_bound;
            }
            let in_bucket = cum - prev_cum;
            let frac = if in_bucket > 0.0 {
                (target - prev_cum) / in_bucket
            } else {
                1.0
            };
            return prev_bound + frac * (bound - prev_bound);
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    prev_bound
}

/// Formats seconds as a human duration (`0.0000015` → `1.50µs`).
pub fn human_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// Renders a scrape for humans: counters and gauges one per line,
/// histograms as `count / mean / p50 / p90 / p99` summaries.
pub fn pretty(text: &str) -> Result<String, String> {
    let families = validate(text)?;
    let mut out = String::new();
    for f in &families {
        match f.kind.as_str() {
            "histogram" => {
                let buckets = f.buckets();
                let count = f.value_sum(&format!("{}_count", f.name)).unwrap_or(0.0);
                let sum = f.value_sum(&format!("{}_sum", f.name)).unwrap_or(0.0);
                let mean = if count > 0.0 { sum / count } else { 0.0 };
                out.push_str(&format!(
                    "{:<44} count={:<8} mean={:<10} p50={:<10} p90={:<10} p99={}\n",
                    f.name,
                    count,
                    human_seconds(mean),
                    human_seconds(bucket_quantile(&buckets, 0.5)),
                    human_seconds(bucket_quantile(&buckets, 0.9)),
                    human_seconds(bucket_quantile(&buckets, 0.99)),
                ));
            }
            _ => {
                for s in &f.samples {
                    let mut shown = s.name.clone();
                    if !s.labels.is_empty() {
                        let pairs: Vec<String> = s
                            .labels
                            .iter()
                            .map(|(k, v)| format!("{k}=\"{v}\""))
                            .collect();
                        shown = format!("{}{{{}}}", shown, pairs.join(","));
                    }
                    out.push_str(&format!("{:<44} {}\n", shown, s.value));
                }
            }
        }
    }
    Ok(out)
}

/// A time-ordered series of validated scrapes of one metrics endpoint.
///
/// Point scrapes answer "what is the counter now"; a series answers the
/// load-test questions: how fast did it grow ([`counter_rate`]), did it
/// ever stall ([`counter_interval_deltas`]), what envelope did a gauge
/// sweep ([`gauge_envelope`]), and what were the latency percentiles
/// *during the window* ([`histogram_delta_quantile`] — the delta between
/// first and last cumulative buckets, so pre-test history is excluded).
///
/// [`counter_rate`]: MetricsSeries::counter_rate
/// [`counter_interval_deltas`]: MetricsSeries::counter_interval_deltas
/// [`gauge_envelope`]: MetricsSeries::gauge_envelope
/// [`histogram_delta_quantile`]: MetricsSeries::histogram_delta_quantile
#[derive(Debug, Default)]
pub struct MetricsSeries {
    scrapes: Vec<(u64, Vec<Family>)>,
}

impl MetricsSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses, validates, and appends one scrape taken at `at_ns`
    /// ([`crate::tick`] time). Scrapes must be pushed in time order.
    pub fn push(&mut self, at_ns: u64, text: &str) -> Result<(), String> {
        if let Some(&(last, _)) = self.scrapes.last() {
            if at_ns < last {
                return Err(format!("scrape at {at_ns}ns is older than {last}ns"));
            }
        }
        let families = validate(text)?;
        self.scrapes.push((at_ns, families));
        Ok(())
    }

    /// Number of scrapes recorded.
    pub fn len(&self) -> usize {
        self.scrapes.len()
    }

    /// Whether no scrapes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.scrapes.is_empty()
    }

    /// Wall time covered, in seconds (first scrape to last).
    pub fn span_seconds(&self) -> f64 {
        match (self.scrapes.first(), self.scrapes.last()) {
            (Some(&(first, _)), Some(&(last, _))) => (last - first) as f64 / 1e9,
            _ => 0.0,
        }
    }

    fn family_at(&self, idx: usize, name: &str) -> Option<&Family> {
        self.scrapes.get(idx)?.1.iter().find(|f| f.name == name)
    }

    /// A sample's value (counter, gauge, or histogram `_count`/`_sum`
    /// series) in scrape `idx`, searched across all families and
    /// **summed across label sets** — so a fleet exposition exposing
    /// one series per `shard="N"` reads as its fleet-wide total.
    pub fn value_at(&self, idx: usize, name: &str) -> Option<f64> {
        self.scrapes
            .get(idx)?
            .1
            .iter()
            .find_map(|f| f.value_sum(name))
    }

    /// Counter growth across the whole series (`last − first`). `None`
    /// until two scrapes exist or if the counter is missing from either.
    pub fn counter_delta(&self, name: &str) -> Option<f64> {
        if self.scrapes.len() < 2 {
            return None;
        }
        let first = self.value_at(0, name)?;
        let last = self.value_at(self.scrapes.len() - 1, name)?;
        Some(last - first)
    }

    /// Mean counter rate over the series, per second.
    pub fn counter_rate(&self, name: &str) -> Option<f64> {
        let span = self.span_seconds();
        if span <= 0.0 {
            return None;
        }
        Some(self.counter_delta(name)? / span)
    }

    /// Counter growth in each inter-scrape interval — the stall
    /// detector's view. Missing samples yield an empty list.
    pub fn counter_interval_deltas(&self, name: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.scrapes.len() {
            match (self.value_at(i - 1, name), self.value_at(i, name)) {
                (Some(a), Some(b)) => out.push(b - a),
                _ => return Vec::new(),
            }
        }
        out
    }

    /// The `(min, max)` a gauge swept across all scrapes.
    pub fn gauge_envelope(&self, name: &str) -> Option<(f64, f64)> {
        let mut envelope: Option<(f64, f64)> = None;
        for i in 0..self.scrapes.len() {
            let v = self.value_at(i, name)?;
            envelope = Some(match envelope {
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
                None => (v, v),
            });
        }
        envelope
    }

    /// Cumulative `(le, count)` buckets of the *window*: last scrape's
    /// buckets minus the first's, bound by bound.
    fn delta_buckets(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        if self.scrapes.len() < 2 {
            return None;
        }
        let first = self.family_at(0, name)?.buckets();
        let last = self.family_at(self.scrapes.len() - 1, name)?.buckets();
        if first.len() != last.len() {
            return None;
        }
        let mut out = Vec::with_capacity(last.len());
        for (&(lb, lc), &(fb, fc)) in last.iter().zip(first.iter()) {
            if lb != fb && !(lb.is_infinite() && fb.is_infinite()) {
                return None;
            }
            out.push((lb, (lc - fc).max(0.0)));
        }
        Some(out)
    }

    /// Observations recorded in the window (`_count` delta).
    pub fn histogram_delta_count(&self, name: &str) -> Option<f64> {
        self.counter_delta(&format!("{name}_count"))
    }

    /// Mean observation in the window, in seconds (`_sum`/`_count`
    /// deltas). `None` when the window saw no observations.
    pub fn histogram_delta_mean(&self, name: &str) -> Option<f64> {
        let count = self.counter_delta(&format!("{name}_count"))?;
        if count <= 0.0 {
            return None;
        }
        Some(self.counter_delta(&format!("{name}_sum"))? / count)
    }

    /// Interpolated `q`-quantile in seconds of observations recorded in
    /// the window (bucket resolution, like [`bucket_quantile`]).
    pub fn histogram_delta_quantile(&self, name: &str, q: f64) -> Option<f64> {
        Some(bucket_quantile(&self.delta_buckets(name)?, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn scrape() -> String {
        let r = Registry::new();
        let c = r.counter("deepn_test_requests_total", "requests");
        c.add(7);
        let g = r.gauge("deepn_test_depth", "queue depth");
        g.set(3);
        let h = r.histogram("deepn_test_latency_seconds", "latency");
        for v in [500u64, 1_500, 80_000, 2_000_000, 3_000_000_000] {
            h.record_ns(v);
        }
        r.render()
    }

    #[test]
    fn our_renderer_round_trips_through_the_validator() {
        let text = scrape();
        let families = validate(&text).expect("own scrape validates");
        assert_eq!(families.len(), 3);
        let h = families
            .iter()
            .find(|f| f.kind == "histogram")
            .expect("histogram family");
        assert_eq!(h.name, "deepn_test_latency_seconds");
        assert_eq!(h.buckets().len(), crate::BUCKET_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn validator_rejects_decreasing_buckets() {
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        let err = validate(bad).expect_err("decreasing buckets rejected");
        assert!(err.contains("decrease"), "{err}");
    }

    #[test]
    fn validator_rejects_inf_count_mismatch() {
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n";
        let err = validate(bad).expect_err("+Inf != _count rejected");
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn validator_rejects_undeclared_samples() {
        let bad = "# HELP a x\n# TYPE a counter\na 1\nb 2\n";
        assert!(validate(bad).is_err());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 10 observations all in (0.1, 0.2].
        let buckets = vec![(0.1, 0.0), (0.2, 10.0), (f64::INFINITY, 10.0)];
        let p50 = bucket_quantile(&buckets, 0.5);
        assert!(p50 > 0.1 && p50 <= 0.2, "{p50}");
        assert_eq!(bucket_quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn pretty_summarizes_histograms() {
        let out = pretty(&scrape()).expect("pretty-print own scrape");
        assert!(out.contains("deepn_test_requests_total"));
        assert!(out.contains("count=5"));
        assert!(out.contains("p99="), "{out}");
    }

    #[test]
    fn series_computes_deltas_rates_and_envelopes() {
        let r = Registry::new();
        let c = r.counter("deepn_series_total", "reqs");
        let g = r.gauge("deepn_series_depth", "depth");
        let h = r.histogram("deepn_series_latency_seconds", "lat");

        let mut series = MetricsSeries::new();
        c.add(10);
        g.set(2);
        h.record_ns(1_000_000); // 1ms, pre-window history
        series.push(0, &r.render()).expect("scrape 0");

        c.add(40);
        g.set(9);
        for _ in 0..10 {
            h.record_ns(150_000_000); // 150ms, inside the window
        }
        series.push(2_000_000_000, &r.render()).expect("scrape 1");

        assert_eq!(series.len(), 2);
        assert_eq!(series.span_seconds(), 2.0);
        assert_eq!(series.counter_delta("deepn_series_total"), Some(40.0));
        assert_eq!(series.counter_rate("deepn_series_total"), Some(20.0));
        assert_eq!(
            series.counter_interval_deltas("deepn_series_total"),
            vec![40.0]
        );
        assert_eq!(
            series.gauge_envelope("deepn_series_depth"),
            Some((2.0, 9.0))
        );

        assert_eq!(
            series.histogram_delta_count("deepn_series_latency_seconds"),
            Some(10.0)
        );
        // The 1ms pre-window observation is excluded: the window's p50
        // lands in the 150ms region, not dragged down toward 1ms.
        let p50 = series
            .histogram_delta_quantile("deepn_series_latency_seconds", 0.5)
            .expect("p50");
        assert!(p50 > 0.05, "window p50 {p50} should be ~150ms");
        let mean = series
            .histogram_delta_mean("deepn_series_latency_seconds")
            .expect("mean");
        assert!((mean - 0.15).abs() < 0.01, "window mean {mean}");
    }

    #[test]
    fn series_rejects_time_travel_and_handles_missing_metrics() {
        let r = Registry::new();
        r.counter("deepn_series2_total", "reqs").inc();
        let mut series = MetricsSeries::new();
        series.push(100, &r.render()).expect("first");
        assert!(
            series.push(50, &r.render()).is_err(),
            "older scrape rejected"
        );
        assert_eq!(
            series.counter_delta("deepn_series2_total"),
            None,
            "one scrape"
        );
        series.push(200, &r.render()).expect("second");
        assert_eq!(series.counter_delta("deepn_no_such_total"), None);
        assert_eq!(series.gauge_envelope("deepn_no_such_depth"), None);
        assert!(series
            .counter_interval_deltas("deepn_no_such_total")
            .is_empty());
    }

    /// A hand-built two-shard fleet exposition: one counter family with
    /// per-shard samples, one histogram family with per-shard ladders.
    fn fleet_scrape(c0: u64, c1: u64, h0: u64, h1: u64) -> String {
        let mut text =
            String::from("# HELP deepn_fleet_total reqs\n# TYPE deepn_fleet_total counter\n");
        text.push_str(&format!("deepn_fleet_total{{shard=\"0\"}} {c0}\n"));
        text.push_str(&format!("deepn_fleet_total{{shard=\"1\"}} {c1}\n"));
        text.push_str("# HELP deepn_fleet_seconds lat\n# TYPE deepn_fleet_seconds histogram\n");
        for (shard, n) in [(0, h0), (1, h1)] {
            let lo = n / 2;
            text.push_str(&format!(
                "deepn_fleet_seconds_bucket{{le=\"0.1\",shard=\"{shard}\"}} {lo}\n"
            ));
            text.push_str(&format!(
                "deepn_fleet_seconds_bucket{{le=\"+Inf\",shard=\"{shard}\"}} {n}\n"
            ));
            text.push_str(&format!(
                "deepn_fleet_seconds_sum{{shard=\"{shard}\"}} {}\n",
                n as f64 * 0.05
            ));
            text.push_str(&format!(
                "deepn_fleet_seconds_count{{shard=\"{shard}\"}} {n}\n"
            ));
        }
        text
    }

    #[test]
    fn validate_checks_histograms_per_label_group() {
        let families = validate(&fleet_scrape(3, 4, 10, 6)).expect("fleet scrape validates");
        let h = families
            .iter()
            .find(|f| f.name == "deepn_fleet_seconds")
            .expect("histogram family");
        // Folded buckets: per-bound counts summed across shards.
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0.1, 8.0));
        assert_eq!(buckets[1].1, 16.0);

        // A +Inf/_count mismatch inside ONE shard's group still fails,
        // even though the cross-shard sums happen to agree.
        let bad = fleet_scrape(1, 1, 4, 4).replace(
            "deepn_fleet_seconds_count{shard=\"0\"} 4",
            "deepn_fleet_seconds_count{shard=\"0\"} 5",
        );
        let err = validate(&bad).expect_err("per-group mismatch rejected");
        assert!(err.contains("_count"), "{err}");
    }

    #[test]
    fn render_round_trips_labelled_families() {
        let families = validate(&fleet_scrape(7, 9, 2, 2)).expect("validates");
        let rendered = render(&families);
        let reparsed = validate(&rendered).expect("re-rendered text validates");
        assert_eq!(reparsed.len(), families.len());
        let total: f64 = reparsed
            .iter()
            .find(|f| f.name == "deepn_fleet_total")
            .expect("counter family")
            .samples
            .iter()
            .map(|s| s.value)
            .sum();
        assert_eq!(total, 16.0);
        // Our own Registry output survives a parse→render→parse loop too.
        let own = scrape();
        let round = render(&validate(&own).expect("own scrape"));
        let a = validate(&own).expect("a");
        let b = validate(&round).expect("b");
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.name, fb.name);
            assert_eq!(fa.samples.len(), fb.samples.len());
            for (sa, sb) in fa.samples.iter().zip(fb.samples.iter()) {
                assert_eq!(sa.value, sb.value, "{}", sa.name);
            }
        }
    }

    #[test]
    fn series_sums_across_label_sets() {
        let mut series = MetricsSeries::new();
        series.push(0, &fleet_scrape(10, 20, 2, 2)).expect("first");
        series
            .push(1_000_000_000, &fleet_scrape(15, 40, 6, 4))
            .expect("second");
        assert_eq!(series.counter_delta("deepn_fleet_total"), Some(25.0));
        assert_eq!(
            series.histogram_delta_count("deepn_fleet_seconds"),
            Some(6.0)
        );
        let p50 = series
            .histogram_delta_quantile("deepn_fleet_seconds", 0.5)
            .expect("p50");
        assert!(p50 > 0.0);
    }

    #[test]
    fn human_seconds_picks_sane_units() {
        assert_eq!(human_seconds(2.5), "2.50s");
        assert_eq!(human_seconds(0.0025), "2.50ms");
        assert_eq!(human_seconds(0.0000025), "2.50µs");
        assert_eq!(human_seconds(0.000000005), "5ns");
    }
}
