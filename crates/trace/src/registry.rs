//! Named instruments — counters, gauges, log-bucketed histograms — and
//! the registry that renders them in the Prometheus text format.
//!
//! Histograms are sharded: each recording thread picks a shard by a
//! process-wide thread ordinal, so concurrent `record_ns` calls from the
//! worker pool mostly touch distinct cache lines; a scrape merges the
//! shards into one [`HistogramSnapshot`]. The bucket ladder is fixed
//! ([`BUCKET_BOUNDS_NS`], a 1–2–5 progression from 100 ns to 60 s), so
//! merging is plain counter addition and therefore associative — which
//! `tests/proptest_trace.rs` checks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Upper bounds (inclusive, in nanoseconds) of the histogram buckets: a
/// 1–2–5 ladder from 100 ns to 60 s. One implicit `+Inf` bucket follows.
pub const BUCKET_BOUNDS_NS: [u64; 27] = [
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
    60_000_000_000,
];

/// Bucket count including the `+Inf` overflow bucket.
const NBUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// Histogram shard count. Recording threads are spread over the shards by
/// thread ordinal; more shards than this would buy little on the target
/// machines.
const NSHARDS: usize = 8;

/// Locks a mutex, recovering from poisoning (registration and scrape
/// critical sections hold no user code, so the data is always
/// consistent).
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small dense per-thread ordinal: 0 for the first thread that asks,
/// 1 for the second, ... Used to pick histogram shards and to label span
/// events, without `thread::current()` (banned by the determinism rule).
pub(crate) fn thread_ordinal() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (or ratchet up via
/// [`set_max`](Gauge::set_max)).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Ratchets the value up to `v` if it is larger — for high-water
    /// marks.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One histogram shard: bucket counts plus sum/count/max, all relaxed
/// atomics.
struct Shard {
    counts: [AtomicU64; NBUCKETS],
    sum_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// A latency histogram over the fixed [`BUCKET_BOUNDS_NS`] ladder,
/// sharded per thread ordinal and merged on scrape.
pub struct Histogram {
    shards: [Shard; NSHARDS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum_ns", &snap.sum_ns)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shards: std::array::from_fn(|_| Shard::new()),
        }
    }

    /// The bucket index a value of `ns` nanoseconds lands in (`le` bounds
    /// are inclusive; past the ladder is the `+Inf` bucket).
    pub fn bucket_index(ns: u64) -> usize {
        BUCKET_BOUNDS_NS.partition_point(|&b| b < ns)
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let shard = &self.shards[thread_ordinal() % NSHARDS];
        shard.counts[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records the time elapsed since a [`crate::tick`] reading.
    pub fn record_since(&self, start_tick_ns: u64) {
        self.record_ns(crate::tick().saturating_sub(start_tick_ns));
    }

    /// Merges every shard into one point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in &self.shards {
            for (i, c) in shard.counts.iter().enumerate() {
                snap.buckets[i] += c.load(Ordering::Relaxed);
            }
            // Wrapping, to match `fetch_add` on the shard atomics: a sum
            // past u64 nanoseconds (585 years) wraps instead of panicking
            // in debug builds.
            snap.sum_ns = snap
                .sum_ns
                .wrapping_add(shard.sum_ns.load(Ordering::Relaxed));
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.max_ns = snap.max_ns.max(shard.max_ns.load(Ordering::Relaxed));
        }
        snap
    }
}

/// A merged point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (not cumulative); the last entry is
    /// the `+Inf` overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of every observation, in nanoseconds.
    pub sum_ns: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest single observation, in nanoseconds (exact, not
    /// bucket-resolution).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NBUCKETS],
            sum_ns: 0,
            count: 0,
            max_ns: 0,
        }
    }

    /// Merges another snapshot into this one (plain addition, so merging
    /// is associative and commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_ns = self.sum_ns.wrapping_add(other.sum_ns);
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds, interpolated
    /// linearly inside the bucket it falls in — bucket-resolution, except
    /// `q = 1`, which returns the exact maximum.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max_ns as f64;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                let upper = if i < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[i]
                } else {
                    // The +Inf bucket has no upper bound; the exact max is
                    // the tightest honest one.
                    self.max_ns.max(lower)
                };
                let frac = (target - cum) as f64 / c as f64;
                return lower as f64 + frac * (upper - lower) as f64;
            }
            cum += c;
        }
        self.max_ns as f64
    }
}

/// A point-in-time reading of one registered instrument.
#[derive(Debug, Clone)]
pub enum Reading {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's merged snapshot.
    Histogram(HistogramSnapshot),
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

/// A set of named instruments, registered once and rendered on scrape.
///
/// Registration is idempotent: asking for an existing name of the same
/// kind returns a handle to the same instrument (so instrumented code
/// can register eagerly without coordination). Asking for an existing
/// name with a *different* kind is a programming error; the call returns
/// a fresh detached instrument rather than panicking, and the registered
/// one is untouched.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entries = lock_unpoisoned(&self.entries);
        f.debug_struct("Registry")
            .field("instruments", &entries.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Counter(c) = &e.instrument {
                return Arc::clone(c);
            }
            return Arc::new(Counter::new());
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Gauge(g) = &e.instrument {
                return Arc::clone(g);
            }
            return Arc::new(Gauge::new());
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            if let Instrument::Histogram(h) = &e.instrument {
                return Arc::clone(h);
            }
            return Arc::new(Histogram::new());
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name,
            help,
            instrument: Instrument::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Point-in-time readings of every instrument, sorted by name.
    pub fn readings(&self) -> Vec<(&'static str, &'static str, Reading)> {
        let entries = lock_unpoisoned(&self.entries);
        let mut out: Vec<(&'static str, &'static str, Reading)> = entries
            .iter()
            .map(|e| {
                let reading = match &e.instrument {
                    Instrument::Counter(c) => Reading::Counter(c.get()),
                    Instrument::Gauge(g) => Reading::Gauge(g.get()),
                    Instrument::Histogram(h) => Reading::Histogram(h.snapshot()),
                };
                (e.name, e.help, reading)
            })
            .collect();
        out.sort_by_key(|(name, _, _)| *name);
        out
    }

    /// The reading of one instrument, if registered.
    pub fn reading(&self, name: &str) -> Option<Reading> {
        self.readings()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, _, r)| r)
    }

    /// Renders every instrument in the Prometheus text exposition format.
    /// Histograms render cumulative `_bucket{le=...}` series (bounds in
    /// seconds) plus `_sum` (seconds) and `_count`.
    pub fn render(&self) -> String {
        let entries = lock_unpoisoned(&self.entries);
        let mut sorted: Vec<&Entry> = entries.iter().collect();
        sorted.sort_by_key(|e| e.name);
        let mut out = String::new();
        for e in sorted {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.instrument.kind()));
            match &e.instrument {
                Instrument::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Instrument::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
                        cum += snap.buckets[i];
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            e.name,
                            seconds_string(bound),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"+Inf\"}} {}\n",
                        e.name, snap.count
                    ));
                    out.push_str(&format!("{}_sum {}\n", e.name, seconds_string(snap.sum_ns)));
                    out.push_str(&format!("{}_count {}\n", e.name, snap.count));
                }
            }
        }
        out
    }
}

/// Formats nanoseconds as a decimal seconds string with trailing zeros
/// trimmed (`1500` → `0.0000015`, `2_000_000_000` → `2`).
pub(crate) fn seconds_string(ns: u64) -> String {
    let mut s = format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for w in BUCKET_BOUNDS_NS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn boundary_values_land_in_their_inclusive_bucket() {
        // `le` is inclusive: a value equal to a bound counts in that
        // bucket, one more spills into the next.
        for (i, &b) in BUCKET_BOUNDS_NS.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(b), i, "bound {b}");
            assert_eq!(Histogram::bucket_index(b + 1), i + 1, "bound {b}+1");
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(
            Histogram::bucket_index(u64::MAX),
            BUCKET_BOUNDS_NS.len(),
            "overflow goes to +Inf"
        );
    }

    #[test]
    fn snapshot_sums_and_counts_are_exact() {
        let h = Histogram::new();
        let values = [0u64, 100, 101, 999, 1_000, 70_000_000_000];
        for &v in &values {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, values.len() as u64);
        assert_eq!(s.sum_ns, values.iter().sum::<u64>());
        assert_eq!(s.max_ns, 70_000_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(*s.buckets.last().expect("has +Inf bucket"), 1);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record_ns(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (
            mk(&[10, 2_000]),
            mk(&[500_000]),
            mk(&[5, 5, 61_000_000_000]),
        );
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c, c_ba);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_ns(v * 1_000); // 1µs .. 1ms
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.5);
        let p99 = s.quantile_ns(0.99);
        assert!(p50 > 200_000.0 && p50 < 1_000_000.0, "p50 {p50}");
        assert!(p99 > p50 && p99 <= 1_000_000.0, "p99 {p99}");
        assert_eq!(s.quantile_ns(1.0), 1_000_000.0, "q=1 is the exact max");
        assert_eq!(HistogramSnapshot::empty().quantile_ns(0.5), 0.0);
    }

    #[test]
    fn seconds_strings_trim_trailing_zeros() {
        assert_eq!(seconds_string(0), "0");
        assert_eq!(seconds_string(100), "0.0000001");
        assert_eq!(seconds_string(1_500), "0.0000015");
        assert_eq!(seconds_string(2_000_000_000), "2");
        assert_eq!(seconds_string(60_000_000_000), "60");
        assert_eq!(seconds_string(1_234_567_890), "1.23456789");
    }

    #[test]
    fn render_produces_cumulative_monotone_buckets() {
        let r = Registry::new();
        let h = r.histogram("deepn_test_render_seconds", "test histogram");
        for v in [50u64, 150, 1_000, 2_000_000, 90_000_000_000] {
            h.record_ns(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE deepn_test_render_seconds histogram"));
        assert!(text.contains("deepn_test_render_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("deepn_test_render_seconds_count 5"));
        let mut prev = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("deepn_test_render_seconds_bucket") {
                let v: u64 = rest
                    .rsplit(' ')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("bucket value");
                assert!(v >= prev, "cumulative buckets never decrease");
                prev = v;
            }
        }
    }

    #[test]
    fn kind_mismatch_returns_a_detached_instrument() {
        let r = Registry::new();
        let c = r.counter("deepn_test_kind", "as a counter");
        c.inc();
        let g = r.gauge("deepn_test_kind", "as a gauge");
        g.set(7);
        // The registered counter is untouched and still renders.
        assert_eq!(c.get(), 1);
        assert!(r.render().contains("deepn_test_kind 1"));
    }
}
