//! Drain-on-shutdown: once a drain is requested, the front stops
//! accepting but every already-in-flight request — serial pipelined,
//! tagged window, and streaming — completes with a real reply before the
//! fleet is stopped. `sigterm.rs` covers the same contract via a real
//! SIGTERM (its sticky process-global flag needs its own binary).

mod common;

use std::time::Duration;

use deepn_codec::RgbImage;
use deepn_serve::{Client, PipelineReply};

/// Backend alter ego — see `common::backend_entry_if_requested`.
#[test]
fn backend_entry() {
    common::backend_entry_if_requested();
}

/// Submits `n` encode batches, lets them reach the backends, then drains
/// — every reply must still arrive intact.
fn drain_mid_window(tagged: bool, window: usize) {
    let handle = common::start_front(2);
    let mut client = Client::connect(handle.addr()).expect("client connects");
    if tagged {
        assert!(
            client.upgrade_tagged().expect("hello round-trip"),
            "backend must grant tagged framing"
        );
    }
    let images: Vec<RgbImage> = (0..2).map(|_| RgbImage::gradient(64, 64)).collect();

    let mut pipeline = client.pipeline(window);
    for _ in 0..window {
        pipeline
            .submit_encode_batch(&images)
            .expect("submission accepted");
    }
    // Let the upstream splice forward the whole window so the requests
    // are genuinely in flight — not still buffered client-side — when
    // the drain begins.
    std::thread::sleep(Duration::from_millis(300));
    handle.request_drain();

    for _ in 0..window {
        match pipeline.recv().expect("in-flight reply survives the drain") {
            PipelineReply::Encoded(blobs) => {
                assert_eq!(blobs.len(), images.len());
                assert!(blobs.iter().all(|b| !b.is_empty()));
            }
            other => panic!("expected Encoded, got {other:?}"),
        }
    }
    drop(pipeline);
    handle.join().expect("front drains cleanly");
}

#[test]
fn drain_completes_inflight_serial_window() {
    drain_mid_window(false, 4);
}

#[test]
fn drain_completes_inflight_tagged_window() {
    drain_mid_window(true, 8);
}

/// A compression stream caught by a drain finishes on intact frame
/// boundaries: the remaining strips upload and the single reply arrives.
#[test]
fn drain_lets_a_streaming_op_finish() {
    let handle = common::start_front(2);
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let img = RgbImage::gradient(64, 256); // 32 strips of 8 rows
    let mut stream = client.begin_compress_stream(64, 256).expect("stream opens");
    let row_bytes = 64 * 3;
    let mut sent_rows = 0usize;
    for strip in 0..stream.strip_count() {
        if strip == 4 {
            // Mid-stream, start the drain: the op is in flight, so the
            // front must keep the splice alive until the reply.
            handle.request_drain();
        }
        let rows = stream.strip_rows(strip);
        let start = sent_rows * row_bytes;
        stream
            .send_strip(&img.as_bytes()[start..start + rows * row_bytes])
            .expect("strip upload survives the drain");
        sent_rows += rows;
    }
    let blob = stream.finish().expect("stream reply survives the drain");
    assert!(!blob.is_empty());
    handle.join().expect("front drains cleanly");
}
