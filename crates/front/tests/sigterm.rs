//! The real-signal half of the drain contract: an actual SIGTERM (not a
//! handle call) flips the front into its drain, in-flight work still
//! completes, and the process-level run loop exits cleanly. This lives
//! in its own test binary because the term flag is process-global and
//! sticky — it must not leak into the other drain tests.

mod common;

use std::process::Command;
use std::time::Duration;

use deepn_codec::RgbImage;
use deepn_front::signal;
use deepn_serve::{Client, PipelineReply};

/// Backend alter ego — see `common::backend_entry_if_requested`.
#[test]
fn backend_entry() {
    common::backend_entry_if_requested();
}

#[test]
fn sigterm_drains_inflight_work_then_exits() {
    signal::install_term_handler();
    let handle = common::start_front(2);

    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.ping().expect("fleet serves before the signal");

    let images: Vec<RgbImage> = (0..2).map(|_| RgbImage::gradient(64, 64)).collect();
    let window = 4;
    let mut pipeline = client.pipeline(window);
    for _ in 0..window {
        pipeline
            .submit_encode_batch(&images)
            .expect("submission accepted");
    }
    std::thread::sleep(Duration::from_millis(300));

    // Deliver a genuine SIGTERM to this process; the installed handler
    // turns it into a drain request instead of death. glibc/musl
    // `signal()` registers with BSD semantics (SA_RESTART), so the
    // blocking reads below resume rather than failing with EINTR.
    let status = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -TERM {}", std::process::id()))
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed: {status}");
    assert!(
        common::wait_for(Duration::from_secs(5), signal::term_requested),
        "SIGTERM never reached the handler"
    );

    for _ in 0..window {
        match pipeline.recv().expect("in-flight reply survives SIGTERM") {
            PipelineReply::Encoded(blobs) => assert_eq!(blobs.len(), images.len()),
            other => panic!("expected Encoded, got {other:?}"),
        }
    }
    drop(pipeline);
    handle.join().expect("front drains cleanly after SIGTERM");
}
