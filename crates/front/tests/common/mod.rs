//! Shared harness for the front-end integration tests.
//!
//! Every test binary here doubles as a backend executable: the front's
//! supervisor relaunches the *current test binary* filtered down to its
//! `backend_entry` test with [`BACKEND_ENV`] set, and that test becomes
//! a real `deepn-serve` server — ephemeral port, readiness line on
//! stdout, killable with SIGKILL like any production backend. Without
//! the env var, `backend_entry` is an instant no-op, so a plain
//! `cargo test` run is unaffected.

use std::io::Write;
use std::time::Duration;

use deepn_codec::QuantTablePair;
use deepn_front::{BackendCommand, Front, FrontConfig, FrontHandle, READY_PREFIX};
use deepn_serve::{Server, ServerConfig};

/// Env var that flips a relaunched test binary into backend-server mode.
pub const BACKEND_ENV: &str = "DEEPN_FRONT_TEST_BACKEND";

/// The body of each binary's `backend_entry` test: when [`BACKEND_ENV`]
/// is set, become a backend server and serve until a `Shutdown` request
/// (or a kill); otherwise return immediately.
pub fn backend_entry_if_requested() {
    if std::env::var_os(BACKEND_ENV).is_none() {
        return;
    }
    let config = ServerConfig {
        workers: 2,
        queue_depth: 64,
        max_connections: 32,
        request_timeout: Some(Duration::from_secs(10)),
        slow_threshold: None,
        tagged_window: 16,
    };
    let server = Server::bind("127.0.0.1:0", QuantTablePair::standard(75), None, config)
        .expect("backend bind");
    let addr = server.local_addr().expect("backend addr");
    // The readiness line the supervisor parses. Stdout is a pipe here,
    // so flush past the block buffer or the supervisor never sees it.
    println!("{READY_PREFIX}{addr} (test backend)");
    std::io::stdout().flush().expect("flush readiness line");
    server.run().expect("backend run");
}

/// The backend template: relaunch this test binary, filtered to its
/// `backend_entry` test, with [`BACKEND_ENV`] set. `--nocapture` keeps
/// the readiness line on real stdout (libtest captures by default).
pub fn backend_cmd() -> BackendCommand {
    let exe = std::env::current_exe().expect("test binary path");
    BackendCommand::new(
        exe,
        vec![
            "backend_entry".into(),
            "--exact".into(),
            "--nocapture".into(),
            "--test-threads=1".into(),
        ],
    )
    .env(BACKEND_ENV, "1")
}

/// Binds and spawns a front over `backends` test-binary shards with
/// snappy supervision (fast restart backoff, tight health cadence) so
/// chaos recovery fits a test budget.
pub fn start_front(backends: usize) -> FrontHandle {
    let mut config = FrontConfig::new(backends, backend_cmd());
    config.supervisor.backoff_base = Duration::from_millis(50);
    config.supervisor.backoff_cap = Duration::from_millis(400);
    config.supervisor.health_interval = Duration::from_millis(250);
    let front = Front::bind("127.0.0.1:0", config).expect("front binds and fleet comes up");
    front.spawn()
}

/// Polls `cond` until it holds or `budget` elapses; returns whether it
/// held. (Each test binary compiles this module separately; not all of
/// them poll.)
#[allow(dead_code)]
pub fn wait_for(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + budget;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}
