//! The fault-injection harness from `ISSUE` — SIGKILL a backend in the
//! middle of a load-generator storm and hold the fleet to the contract
//! `docs/SHARDING.md` promises: no client-visible lost request (exact
//! reconciliation within the documented io/replay slack), the supervisor
//! restarts the corpse, and the fleet returns to full strength.

mod common;

use std::thread;
use std::time::Duration;

use deepn_front::{splitmix64, Ring};
use deepn_serve::loadgen::{self, LoadgenConfig};

/// Backend alter ego — see `common::backend_entry_if_requested`.
#[test]
fn backend_entry() {
    common::backend_entry_if_requested();
}

#[test]
fn killing_a_backend_mid_storm_loses_no_requests() {
    const BACKENDS: usize = 3;
    const CLIENTS: usize = 6;

    let handle = common::start_front(BACKENDS);

    // Aim the kill where the traffic is: load clients advertise routing
    // key `splitmix64(index + 1)`, and the ring is a pure function of
    // (vnodes, membership), so the busiest shard is computable up front
    // — the kill is guaranteed to break live splices, not an idle shard.
    let ring = Ring::with_shards(64, BACKENDS as u32);
    let mut per_shard = [0u32; BACKENDS];
    for index in 0..CLIENTS as u64 {
        per_shard[ring.route(splitmix64(index + 1)).expect("populated ring") as usize] += 1;
    }
    let victim = (0..BACKENDS)
        .max_by_key(|&s| per_shard[s])
        .expect("non-empty fleet") as u32;
    assert!(
        per_shard
            .iter()
            .enumerate()
            .any(|(s, &n)| s != victim as usize && n > 0),
        "storm must also hit a surviving shard or the stall check is vacuous"
    );

    let mut lg = LoadgenConfig::new(handle.addr());
    lg.clients = CLIENTS;
    lg.duration = Duration::from_secs(6);
    lg.pipeline_window = 4;
    lg.churn = true;
    lg.tagged = true;
    lg.image_side = 32;
    lg.batch = 2;
    lg.scrape_interval = Duration::from_millis(300);
    // A SIGKILL mid-storm is *supposed* to surface a handful of
    // transport errors before the replay path heals them; budget for
    // that without loosening the exact reconciliation check.
    lg.max_error_rate = 0.05;
    let storm = thread::spawn(move || loadgen::run(&lg));

    // Let the storm reach steady state, then murder the busiest backend.
    thread::sleep(Duration::from_secs(2));
    let restarts_before = handle.restarts();
    handle.kill_backend(victim);

    let report = storm
        .join()
        .expect("loadgen thread")
        .expect("loadgen setup succeeds");

    assert!(
        report.is_clean(),
        "reconciliation must absorb the kill: anomalies {:?}",
        report.anomalies
    );
    assert!(
        report.totals.ok > 0,
        "storm produced no successful requests"
    );
    assert!(
        handle.restarts() > restarts_before,
        "supervisor never restarted the killed backend"
    );
    assert!(
        common::wait_for(Duration::from_secs(10), || handle.live_backends()
            == BACKENDS),
        "fleet did not heal to {BACKENDS} live backends (now {})",
        handle.live_backends()
    );

    handle.request_drain();
    handle.join().expect("front drains cleanly after the storm");
}
