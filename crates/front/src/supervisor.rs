//! Backend fleet supervision: spawn, readiness, health, restart,
//! graceful stop.
//!
//! One supervisor thread owns the backend `Child` processes outright and
//! publishes a [`FleetView`] — per-shard address, incarnation, and pid —
//! that the proxy side reads when routing. Children bind ephemeral ports
//! (`--addr 127.0.0.1:0` or equivalent) and report where they actually
//! landed on stdout via the `deepn-serve listening on ADDR …` readiness
//! line, which the supervisor parses; nothing else about the child's
//! output is interpreted (its structured logs go to stderr, inherited).
//!
//! A child that dies is restarted with exponential backoff (reset after a
//! stable run); a child that stops answering health pings is killed and
//! takes the same restart path. Fault injection for the chaos harness
//! goes through [`FleetView::request_kill`] — a SIGKILL delivered by the
//! owner thread, exactly like an external `kill -9`.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use deepn_serve::protocol::{self, Opcode, STATUS_OK};
use deepn_trace::log;

/// The stdout prefix a backend prints once it is accepting connections;
/// the token after it is the bound address.
pub const READY_PREFIX: &str = "deepn-serve listening on ";

/// How to launch one backend process. The same template serves every
/// shard: each child must bind an ephemeral port and print the
/// [`READY_PREFIX`] readiness line on stdout.
#[derive(Debug, Clone)]
pub struct BackendCommand {
    /// Executable to run.
    pub program: PathBuf,
    /// Arguments, passed verbatim.
    pub args: Vec<String>,
    /// Extra environment variables for the child.
    pub envs: Vec<(String, String)>,
}

impl BackendCommand {
    /// A command template running `program` with `args`.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        BackendCommand {
            program: program.into(),
            args,
            envs: Vec::new(),
        }
    }

    /// Adds an environment variable to the template.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    fn build(&self, shard: u32) -> Command {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .env("DEEPN_SHARD", shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        cmd
    }
}

/// One shard as the proxy sees it.
#[derive(Debug, Clone, Default)]
pub struct ShardView {
    /// Where the current incarnation listens; `None` while down.
    pub addr: Option<SocketAddr>,
    /// Bumped on every (re)spawn — metric-floor folding keys on it.
    pub incarnation: u64,
    /// The current child's pid, for external fault injection.
    pub pid: Option<u32>,
}

/// Shared fleet state: the supervisor writes, the proxy and metrics
/// aggregator read.
#[derive(Debug)]
pub struct FleetView {
    shards: Mutex<Vec<ShardView>>,
    /// Cumulative successful backend restarts (respawns after the first
    /// spawn of each shard).
    pub restarts: AtomicU64,
    /// Set when the front end starts draining: the supervisor stops
    /// respawning dead shards.
    pub draining: AtomicBool,
    /// Set to terminate the supervisor: it shuts the fleet down
    /// gracefully and exits its loop.
    pub stop: AtomicBool,
    kills: Mutex<Vec<u32>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FleetView {
    /// A view over `n` shards, all initially down.
    pub fn new(n: usize) -> Self {
        FleetView {
            shards: Mutex::new(vec![ShardView::default(); n]),
            restarts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            kills: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of one shard.
    pub fn shard(&self, i: u32) -> ShardView {
        lock(&self.shards)
            .get(i as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Snapshot of every shard.
    pub fn snapshot(&self) -> Vec<ShardView> {
        lock(&self.shards).clone()
    }

    /// Number of shards currently up (address published).
    pub fn live(&self) -> usize {
        lock(&self.shards)
            .iter()
            .filter(|s| s.addr.is_some())
            .count()
    }

    /// Asks the supervisor to SIGKILL shard `i`'s current child — the
    /// chaos harness's fault-injection hook. The kill is delivered by
    /// the owning thread on its next tick; the normal crash/restart path
    /// then takes over.
    pub fn request_kill(&self, i: u32) {
        lock(&self.kills).push(i);
    }

    fn set(&self, i: usize, view: ShardView) {
        let mut shards = lock(&self.shards);
        if let Some(slot) = shards.get_mut(i) {
            *slot = view;
        }
    }

    fn mark_down(&self, i: usize) {
        let mut shards = lock(&self.shards);
        if let Some(slot) = shards.get_mut(i) {
            slot.addr = None;
            slot.pid = None;
        }
    }

    fn take_kills(&self) -> Vec<u32> {
        std::mem::take(&mut lock(&self.kills))
    }
}

/// Supervisor tuning knobs (all durations in nanoseconds of
/// [`deepn_trace::tick`] time).
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// First restart delay after a crash.
    pub backoff_base: Duration,
    /// Restart delay ceiling.
    pub backoff_cap: Duration,
    /// A child healthy at least this long resets its backoff.
    pub backoff_reset_after: Duration,
    /// How long a spawned child may take to print readiness.
    pub readiness_timeout: Duration,
    /// Health-check ping cadence (0 disables pings).
    pub health_interval: Duration,
    /// Consecutive failed pings before the child is killed and
    /// restarted.
    pub health_strikes: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(3200),
            backoff_reset_after: Duration::from_secs(10),
            readiness_timeout: Duration::from_secs(10),
            health_interval: Duration::from_millis(500),
            health_strikes: 3,
        }
    }
}

/// One shard's private supervision state (owned by the supervisor
/// thread).
struct Slot {
    child: Option<Child>,
    addr: Option<SocketAddr>,
    backoff: Duration,
    next_spawn_ns: u64,
    up_since_ns: u64,
    next_ping_ns: u64,
    ping_fails: u32,
    ever_up: bool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            child: None,
            addr: None,
            backoff: Duration::ZERO,
            next_spawn_ns: 0,
            up_since_ns: 0,
            next_ping_ns: 0,
            ping_fails: 0,
            ever_up: false,
        }
    }
}

/// The supervisor: owns the children, publishes the view.
pub struct Supervisor {
    cmd: BackendCommand,
    cfg: SupervisorConfig,
    view: Arc<FleetView>,
    slots: Vec<Slot>,
    restarts_counter: Option<Arc<deepn_trace::Counter>>,
    healthy_gauge: Option<Arc<deepn_trace::Gauge>>,
}

impl Supervisor {
    /// A supervisor for `n` shards launched from `cmd`, publishing into
    /// `view`. Instruments are optional so the supervisor stays usable
    /// without a registry.
    pub fn new(
        n: usize,
        cmd: BackendCommand,
        cfg: SupervisorConfig,
        view: Arc<FleetView>,
        restarts_counter: Option<Arc<deepn_trace::Counter>>,
        healthy_gauge: Option<Arc<deepn_trace::Gauge>>,
    ) -> Self {
        Supervisor {
            cmd,
            cfg,
            view,
            slots: (0..n).map(|_| Slot::new()).collect(),
            restarts_counter,
            healthy_gauge,
        }
    }

    /// Runs the supervision loop until [`FleetView::stop`] is set, then
    /// shuts the fleet down gracefully and returns.
    pub fn run(mut self) {
        loop {
            if self.view.stop.load(Ordering::SeqCst) {
                self.stop_fleet();
                return;
            }
            for shard in self.view.take_kills() {
                self.kill(shard);
            }
            for i in 0..self.slots.len() {
                self.poll(i);
            }
            if let Some(g) = &self.healthy_gauge {
                g.set(self.view.live() as u64);
            }
            thread::sleep(Duration::from_millis(20));
        }
    }

    /// Delivers a requested SIGKILL to shard `i`'s current child.
    fn kill(&mut self, i: u32) {
        if let Some(slot) = self.slots.get_mut(i as usize) {
            if let Some(child) = slot.child.as_mut() {
                log::warn("backend_killed")
                    .field("shard", i)
                    .field("pid", child.id())
                    .emit();
                let _ = child.kill();
            }
        }
    }

    /// One supervision tick for shard `i`: reap, backoff, respawn,
    /// health-check.
    fn poll(&mut self, i: usize) {
        let now = deepn_trace::tick();
        let draining = self.view.draining.load(Ordering::SeqCst);
        let Some(slot) = self.slots.get_mut(i) else {
            return;
        };

        // Reap a dead child and schedule its respawn.
        if let Some(child) = slot.child.as_mut() {
            match child.try_wait() {
                Ok(Some(status)) => {
                    log::warn("backend_died")
                        .field("shard", i)
                        .field("status", status)
                        .emit();
                    slot.child = None;
                    slot.addr = None;
                    self.view.mark_down(i);
                    let stable =
                        now.saturating_sub(slot.up_since_ns) >= ns(self.cfg.backoff_reset_after);
                    slot.backoff = if stable || slot.backoff.is_zero() {
                        self.cfg.backoff_base
                    } else {
                        (slot.backoff * 2).min(self.cfg.backoff_cap)
                    };
                    slot.next_spawn_ns = now + ns(slot.backoff);
                }
                Ok(None) => {}
                Err(e) => {
                    log::error("backend_wait_failed")
                        .field("shard", i)
                        .field("error", e)
                        .emit();
                }
            }
        }

        // Respawn once the backoff expires (never while draining).
        if slot.child.is_none() && !draining && now >= slot.next_spawn_ns {
            self.spawn(i);
            return;
        }

        // Health-check ping; a silent child is killed and restarted.
        if self.cfg.health_interval.is_zero() {
            return;
        }
        let Some(slot) = self.slots.get_mut(i) else {
            return;
        };
        if let (Some(addr), true) = (slot.addr, slot.child.is_some()) {
            if now >= slot.next_ping_ns {
                slot.next_ping_ns = now + ns(self.cfg.health_interval);
                if ping(addr) {
                    slot.ping_fails = 0;
                } else {
                    slot.ping_fails += 1;
                    if slot.ping_fails >= self.cfg.health_strikes {
                        log::error("backend_unresponsive")
                            .field("shard", i)
                            .field("strikes", slot.ping_fails)
                            .emit();
                        slot.ping_fails = 0;
                        if let Some(child) = slot.child.as_mut() {
                            let _ = child.kill();
                        }
                    }
                }
            }
        }
    }

    /// Spawns shard `i`, waits for its readiness line, and publishes the
    /// new incarnation. Failure escalates the backoff.
    fn spawn(&mut self, i: usize) {
        let now = deepn_trace::tick();
        let Some(slot) = self.slots.get_mut(i) else {
            return;
        };
        let mut child = match self.cmd.build(i as u32).spawn() {
            Ok(c) => c,
            Err(e) => {
                log::error("backend_spawn_failed")
                    .field("shard", i)
                    .field("error", e)
                    .emit();
                slot.backoff = if slot.backoff.is_zero() {
                    self.cfg.backoff_base
                } else {
                    (slot.backoff * 2).min(self.cfg.backoff_cap)
                };
                slot.next_spawn_ns = now + ns(slot.backoff);
                return;
            }
        };
        match await_ready(&mut child, self.cfg.readiness_timeout) {
            Some(addr) => {
                let pid = child.id();
                let was_respawn = slot.ever_up;
                slot.child = Some(child);
                slot.addr = Some(addr);
                slot.up_since_ns = deepn_trace::tick();
                slot.next_ping_ns = slot.up_since_ns + ns(self.cfg.health_interval);
                slot.ping_fails = 0;
                slot.ever_up = true;
                let incarnation = self.view.shard(i as u32).incarnation + 1;
                self.view.set(
                    i,
                    ShardView {
                        addr: Some(addr),
                        incarnation,
                        pid: Some(pid),
                    },
                );
                if was_respawn {
                    self.view.restarts.fetch_add(1, Ordering::SeqCst);
                    if let Some(c) = &self.restarts_counter {
                        c.inc();
                    }
                }
                log::info("backend_up")
                    .field("shard", i)
                    .field("addr", addr)
                    .field("pid", pid)
                    .field("incarnation", incarnation)
                    .emit();
            }
            None => {
                log::error("backend_not_ready")
                    .field("shard", i)
                    .field("timeout_ms", self.cfg.readiness_timeout.as_millis())
                    .emit();
                let _ = child.kill();
                let _ = child.wait();
                slot.backoff = if slot.backoff.is_zero() {
                    self.cfg.backoff_base
                } else {
                    (slot.backoff * 2).min(self.cfg.backoff_cap)
                };
                slot.next_spawn_ns = deepn_trace::tick() + ns(slot.backoff);
            }
        }
    }

    /// Graceful fleet stop: a `Shutdown` request to every live backend,
    /// a bounded wait, SIGKILL for stragglers, reap everything.
    fn stop_fleet(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let Some(mut child) = slot.child.take() else {
                continue;
            };
            if let Some(addr) = slot.addr {
                let _ = shutdown_backend(addr);
            }
            let deadline = deepn_trace::tick() + ns(Duration::from_secs(2));
            let exited = loop {
                match child.try_wait() {
                    Ok(Some(_)) => break true,
                    Ok(None) if deepn_trace::tick() < deadline => {
                        thread::sleep(Duration::from_millis(10));
                    }
                    _ => break false,
                }
            };
            if !exited {
                let _ = child.kill();
                let _ = child.wait();
            }
            self.view.mark_down(i);
            log::info("backend_stopped").field("shard", i).emit();
        }
    }
}

fn ns(d: Duration) -> u64 {
    d.as_nanos() as u64
}

/// Reads the child's stdout until the readiness line appears, then hands
/// the rest of the stream to a drain thread (so the child can never
/// block on a full stdout pipe). `None` on timeout or EOF-before-ready.
fn await_ready(child: &mut Child, timeout: Duration) -> Option<SocketAddr> {
    let stdout = child.stdout.take()?;
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        let mut sent = false;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if !sent {
                        // Accept the marker anywhere in the line, not
                        // just at column 0: harnesses that wrap a
                        // backend (libtest, for one) often print their
                        // own unterminated preamble first.
                        if let Some(at) = line.find(READY_PREFIX) {
                            let rest = &line[at + READY_PREFIX.len()..];
                            let token = rest.split_whitespace().next().unwrap_or("");
                            if let Ok(addr) = token.parse::<SocketAddr>() {
                                // The receiver may have timed out and
                                // gone away; keep draining regardless.
                                let _ = tx.send(addr);
                                sent = true;
                            }
                        }
                    }
                }
            }
        }
    });
    rx.recv_timeout(timeout).ok()
}

/// One `Ping` round trip with tight timeouts — the health probe.
fn ping(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    if protocol::write_frame(&mut stream, &[Opcode::Ping as u8]).is_err() {
        return false;
    }
    matches!(
        protocol::read_frame(&mut stream),
        Ok(Some(reply)) if reply.first() == Some(&STATUS_OK)
    )
}

/// One `Shutdown` request, best-effort, with tight timeouts.
fn shutdown_backend(addr: SocketAddr) -> Result<(), ()> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_millis(250)).map_err(|_| ())?;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    protocol::write_frame(&mut stream, &[Opcode::Shutdown as u8]).map_err(|_| ())?;
    let _ = protocol::read_frame(&mut stream);
    Ok(())
}
