//! The per-connection frame splice: client ↔ front ↔ backend.
//!
//! Each accepted client connection gets two threads. The **upstream**
//! thread reads request frames from the client, intercepts the ops the
//! front answers itself (`Metrics`, `Shutdown`), and forwards everything
//! else to one sticky backend chosen on the first forwarded frame — by
//! the `Hello` table fingerprint when the client advertises one, by the
//! connection id otherwise. The **downstream** thread reads reply frames
//! from that backend and forwards them to the client, tracking reply
//! boundaries so multi-frame exchanges (`DecompressStream`) and the
//! `Hello` upgrade to tagged framing are spliced intact.
//!
//! The front never replays: when a backend dies mid-exchange both
//! directions are torn down and the client's own reconnect+replay
//! contract re-sends the unacknowledged window through a fresh
//! connection, which the ring then routes to the next live shard.
//!
//! Request accounting happens on the *reply* side: one completed,
//! non-busy logical reply increments the owning shard's splice counter.
//! Counting completions (rather than forwards) keeps the fleet-wide
//! `deepn_serve_requests_total` aligned with the single-server
//! convention — a connection-limit `BUSY` rejection is not a counted
//! request there either — and a request that dies with its backend is
//! exactly the client-visible transport error the load generator's
//! reconciliation slack already covers.

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use deepn_serve::protocol::{self, Opcode, FEATURE_TAGGED, STATUS_BUSY, STATUS_OK};
use deepn_serve::ServeError;
use deepn_trace::log;

use crate::FrontState;

/// Read-timeout used on both spliced sockets: short enough that the
/// threads notice drain/teardown promptly, long enough to stay off the
/// hot path.
const POLL_TIMEOUT: Duration = Duration::from_millis(200);

/// How long the upstream thread waits for a live shard to appear before
/// rejecting the connection busy — covers the supervisor's restart
/// backoff after a whole-fleet stumble.
const ROUTE_WAIT: Duration = Duration::from_secs(2);

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What the downstream thread must do with the next backend frame, in
/// request order. An entry stays queued until its whole reply has been
/// written to the client, so front-answered replies never jump ahead of
/// a backend reply already in flight.
enum ReplyKind {
    /// One reply frame, forwarded as-is.
    Simple,
    /// One reply frame; a `FEATURE_TAGGED` grant flips the connection to
    /// tagged framing (flag set *before* the grant reaches the client).
    Hello,
    /// A begin frame followed by strip frames, early-terminated by any
    /// non-OK status on an intact boundary.
    DecompressStream,
    /// A front-answered reply queued behind in-flight backend replies
    /// (the v1 pipelined case); written when it reaches the queue head.
    Intercepted(Vec<u8>),
}

/// State shared by a connection's two splice threads.
struct ConnShared {
    /// Write half of the client socket, shared by both threads.
    client_out: Mutex<TcpStream>,
    /// Reply descriptors for v1 framing, in request order.
    pending: Mutex<VecDeque<ReplyKind>>,
    /// Whether the connection upgraded to tagged (protocol v2) framing.
    tagged: AtomicBool,
    /// Requests forwarded to the backend whose replies have not finished.
    outstanding: AtomicI64,
    /// Set by whichever side tears down first.
    done: AtomicBool,
}

/// Writes one frame to the client, returning `false` on failure.
fn write_client(shared: &ConnShared, body: &[u8]) -> bool {
    protocol::write_frame(&mut *lock(&shared.client_out), body).is_ok()
}

/// Whether a read error is the idle-poll timeout (retryable) rather than
/// a real failure.
fn retryable(e: &ServeError) -> bool {
    matches!(
        e,
        ServeError::Io(io) if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

/// Reads one frame, looping over idle-poll timeouts until `done` is set.
fn read_frame_patient(
    stream: &mut TcpStream,
    shared: &ConnShared,
) -> Result<Option<Vec<u8>>, ServeError> {
    loop {
        match protocol::read_frame(stream) {
            Err(e) if retryable(&e) => {
                if shared.done.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            other => return other,
        }
    }
}

/// Drives one client connection to completion. Spawned per accept by
/// [`crate::Front::run`].
pub(crate) fn handle_conn(state: Arc<FrontState>, mut client_in: TcpStream, conn_id: u64) {
    let _ = client_in.set_nodelay(true);
    let _ = client_in.set_read_timeout(Some(POLL_TIMEOUT));
    let Ok(client_out) = client_in.try_clone() else {
        return;
    };
    let shared = Arc::new(ConnShared {
        client_out: Mutex::new(client_out),
        pending: Mutex::new(VecDeque::new()),
        tagged: AtomicBool::new(false),
        outstanding: AtomicI64::new(0),
        done: AtomicBool::new(false),
    });
    state.connections_total.inc();
    state.set_active(state.active_conns.fetch_add(1, Ordering::SeqCst) + 1);

    let mut backend: Option<BackendLink> = None;
    upstream(&state, &shared, &mut client_in, &mut backend, conn_id);

    // Teardown: kick both sockets so the peer thread unblocks, then
    // reconcile the global in-flight count with whatever this connection
    // still had outstanding.
    shared.done.store(true, Ordering::SeqCst);
    let _ = client_in.shutdown(Shutdown::Both);
    if let Some(link) = backend {
        let _ = link.write.shutdown(Shutdown::Both);
        let _ = link.reader.join();
    }
    let residue = shared.outstanding.swap(0, Ordering::SeqCst);
    if residue != 0 {
        state.outstanding.fetch_sub(residue, Ordering::SeqCst);
    }
    state.set_active(state.active_conns.fetch_sub(1, Ordering::SeqCst) - 1);
}

/// The sticky backend leg of one client connection.
struct BackendLink {
    write: TcpStream,
    reader: thread::JoinHandle<()>,
}

/// The upstream loop: client frames in, backend frames (or intercepted
/// replies) out. Returns when the client closes, a socket fails, or a
/// drain completes.
fn upstream(
    state: &Arc<FrontState>,
    shared: &Arc<ConnShared>,
    client_in: &mut TcpStream,
    backend: &mut Option<BackendLink>,
    conn_id: u64,
) {
    // Strip frames still owed by an in-progress CompressStream exchange;
    // they are spliced verbatim, not parsed as requests.
    let mut strips_remaining: u64 = 0;
    loop {
        let body = match protocol::read_frame(client_in) {
            Ok(Some(b)) => b,
            Ok(None) => return,
            Err(e) if retryable(&e) => {
                if shared.done.load(Ordering::SeqCst) {
                    return;
                }
                if state.draining() && shared.outstanding.load(Ordering::SeqCst) == 0 {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if strips_remaining > 0 {
            strips_remaining -= 1;
            let Some(link) = backend.as_mut() else { return };
            if protocol::write_frame(&mut link.write, &body).is_err() {
                return;
            }
            continue;
        }
        let tagged = shared.tagged.load(Ordering::SeqCst);
        let (tag, inner): (u32, &[u8]) = if tagged {
            match protocol::split_tagged(&body) {
                Ok((t, i)) => (t, i),
                Err(_) => return,
            }
        } else {
            (0, &body[..])
        };
        let Some(&op) = inner.first() else { return };

        // Front-answered ops.
        if op == Opcode::Metrics as u8 {
            let reply = metrics_reply(state);
            if !send_intercepted(shared, tagged, tag, reply) {
                return;
            }
            continue;
        }
        if op == Opcode::Shutdown as u8 {
            state.front_requests.fetch_add(1, Ordering::SeqCst);
            log::info("front_shutdown_requested")
                .field("conn_id", conn_id)
                .emit();
            let sent = send_intercepted(shared, tagged, tag, vec![STATUS_OK]);
            state.begin_drain();
            if !sent {
                return;
            }
            continue;
        }

        // Everything else needs the sticky backend leg.
        if backend.is_none() {
            let key = routing_key(conn_id, tagged, inner);
            match connect_backend(state, shared, key, conn_id) {
                Some(link) => *backend = Some(link),
                None => {
                    // Count the rejection so the fleet exposition's
                    // `shard="front"` rejected sample keeps the loadgen
                    // busy cross-check (`rejected_delta >= busy`) exact
                    // even during a full outage.
                    state.front_rejected.fetch_add(1, Ordering::SeqCst);
                    let mut reply = vec![STATUS_BUSY];
                    put_string(&mut reply, "no live backend shard; retry later");
                    let _ = send_intercepted(shared, tagged, tag, reply);
                    return;
                }
            }
        }
        let Some(link) = backend.as_mut() else { return };

        if !tagged {
            let kind = if op == Opcode::Hello as u8 {
                ReplyKind::Hello
            } else if op == Opcode::DecompressStream as u8 {
                ReplyKind::DecompressStream
            } else {
                if op == Opcode::CompressStream as u8 {
                    strips_remaining = compress_strips(inner);
                }
                ReplyKind::Simple
            };
            lock(&shared.pending).push_back(kind);
        }
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        state.outstanding.fetch_add(1, Ordering::SeqCst);
        if protocol::write_frame(&mut link.write, &body).is_err() {
            return;
        }
    }
}

/// The routing key for a connection's first forwarded frame: the table
/// fingerprint when the frame is a `Hello` advertising one (so every
/// connection working one table lands on the shard whose caches hold
/// it), a mixed connection id otherwise.
fn routing_key(conn_id: u64, tagged: bool, inner: &[u8]) -> u64 {
    if !tagged && inner.first() == Some(&(Opcode::Hello as u8)) && inner.len() >= 13 {
        let mut fp = [0u8; 8];
        fp.copy_from_slice(&inner[5..13]);
        let fp = u64::from_le_bytes(fp);
        if fp != 0 {
            return fp;
        }
    }
    crate::ring::splitmix64(conn_id)
}

/// Strip frames owed after a v1 `CompressStream` begin frame
/// (`op | u32 width | u32 height`): `ceil(height / 8)`.
fn compress_strips(inner: &[u8]) -> u64 {
    if inner.len() < 9 {
        return 0;
    }
    let mut h = [0u8; 4];
    h.copy_from_slice(&inner[5..9]);
    (u32::from_le_bytes(h) as u64).div_ceil(8)
}

/// Appends a length-prefixed UTF-8 string (the reply-payload string
/// encoding).
fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// One fleet-wide `Metrics` exposition, counted against the front itself
/// *before* rendering so a scrape's own request is visible in it — the
/// single-server convention the load generator's `scrapes − 1`
/// reconciliation term assumes.
fn metrics_reply(state: &FrontState) -> Vec<u8> {
    state.front_requests.fetch_add(1, Ordering::SeqCst);
    let text = state.render_metrics();
    let mut reply = Vec::with_capacity(5 + text.len());
    reply.push(STATUS_OK);
    put_string(&mut reply, &text);
    reply
}

/// Delivers a front-answered reply without ever overtaking a backend
/// reply already in flight: written directly when nothing is pending
/// (the serial-scraper fast path; the `pending` lock is held across the
/// write so the check and the write are one atomic step against the
/// downstream thread), queued as [`ReplyKind::Intercepted`] otherwise.
/// Tagged connections carry the reply's tag and may reorder freely.
fn send_intercepted(shared: &ConnShared, tagged: bool, tag: u32, reply: Vec<u8>) -> bool {
    if tagged {
        return write_client(shared, &protocol::tagged_body(tag, &reply));
    }
    let mut pending = lock(&shared.pending);
    if pending.is_empty() {
        return write_client(shared, &reply);
    }
    pending.push_back(ReplyKind::Intercepted(reply));
    true
}

/// Routes `key` on the ring, skipping dead shards, and connects — the
/// failover walk. Waits out a whole-fleet outage up to [`ROUTE_WAIT`]
/// before giving up. On success the downstream splice thread is already
/// running on the returned link.
fn connect_backend(
    state: &Arc<FrontState>,
    shared: &Arc<ConnShared>,
    key: u64,
    conn_id: u64,
) -> Option<BackendLink> {
    let home = state.ring.route(key);
    let ticks = (ROUTE_WAIT.as_millis() / 50).max(1);
    for _ in 0..ticks {
        if shared.done.load(Ordering::SeqCst) {
            return None;
        }
        let fleet = state.view.snapshot();
        // Shards whose connect failed this pass: the view is a snapshot,
        // so a just-died backend can still be listed as up. The exclusion
        // resets every tick — a restarted shard comes back at a new
        // address.
        let mut failed: Vec<u32> = Vec::new();
        while let Some(shard) = state.ring.route_live(key, |s| {
            !failed.contains(&s) && fleet.get(s as usize).map(|v| v.addr.is_some()) == Some(true)
        }) {
            let Some(addr) = fleet.get(shard as usize).and_then(|v| v.addr) else {
                break;
            };
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(stream) => {
                    if home.is_some() && home != Some(shard) {
                        state.failovers_total.inc();
                        log::info("conn_failover")
                            .field("conn_id", conn_id)
                            .field("home", home.unwrap_or(u32::MAX))
                            .field("shard", shard)
                            .emit();
                    }
                    return open_link(state, shared, shard, stream);
                }
                Err(_) => failed.push(shard),
            }
        }
        thread::sleep(Duration::from_millis(50));
    }
    None
}

/// Finishes a connected backend leg: socket options plus the downstream
/// splice thread.
fn open_link(
    state: &Arc<FrontState>,
    shared: &Arc<ConnShared>,
    shard: u32,
    stream: TcpStream,
) -> Option<BackendLink> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TIMEOUT));
    let read = stream.try_clone().ok()?;
    let state = Arc::clone(state);
    let shared_dn = Arc::clone(shared);
    let reader = thread::Builder::new()
        .name(format!("front-dn-{shard}"))
        .spawn(move || downstream(state, shared_dn, shard, read))
        .ok()?;
    Some(BackendLink {
        write: stream,
        reader,
    })
}

/// The downstream loop: backend reply frames in, client frames out, one
/// shard-counter increment per completed non-busy logical reply.
fn downstream(state: Arc<FrontState>, shared: Arc<ConnShared>, shard: u32, mut from: TcpStream) {
    while let Ok(Some(frame)) = read_frame_patient(&mut from, &shared) {
        // Pop up to the descriptor this frame answers, flushing any
        // front-answered replies queued ahead of it. The lock is held
        // until the whole logical reply is on the client socket, which is
        // what keeps `send_intercepted`'s fast path ordered.
        let mut pending = lock(&shared.pending);
        let kind = loop {
            match pending.pop_front() {
                Some(ReplyKind::Intercepted(reply)) => {
                    if !write_client(&shared, &reply) {
                        drop(pending);
                        teardown(&shared, &from);
                        return;
                    }
                }
                Some(other) => break Some(other),
                None => break None,
            }
        };
        let counted = match kind {
            None => {
                // No descriptor means tagged framing: every frame is one
                // complete reply, tag spliced through inside the body.
                let busy = protocol::split_tagged(&frame)
                    .map(|(_, inner)| inner.first() == Some(&STATUS_BUSY))
                    .unwrap_or(false);
                if !write_client(&shared, &frame) {
                    break;
                }
                !busy
            }
            Some(ReplyKind::Simple) => {
                let busy = frame.first() == Some(&STATUS_BUSY);
                if !write_client(&shared, &frame) {
                    break;
                }
                !busy
            }
            Some(ReplyKind::Intercepted(reply)) => {
                // Unreachable by construction — the flush loop above pops
                // every queued intercept — but stay lossless if it ever
                // happens: deliver the intercept, then the backend frame
                // as a simple reply.
                let busy = frame.first() == Some(&STATUS_BUSY);
                if !write_client(&shared, &reply) || !write_client(&shared, &frame) {
                    break;
                }
                !busy
            }
            Some(ReplyKind::Hello) => {
                if frame.first() == Some(&STATUS_OK) && frame.len() >= 5 {
                    let mut g = [0u8; 4];
                    g.copy_from_slice(&frame[1..5]);
                    if u32::from_le_bytes(g) & FEATURE_TAGGED != 0 {
                        // Set before the grant is forwarded: the client
                        // only sends tagged frames after reading it, so
                        // the upstream thread observes the flag in time.
                        shared.tagged.store(true, Ordering::SeqCst);
                    }
                }
                let busy = frame.first() == Some(&STATUS_BUSY);
                if !write_client(&shared, &frame) {
                    break;
                }
                !busy
            }
            Some(ReplyKind::DecompressStream) => {
                let busy = frame.first() == Some(&STATUS_BUSY);
                let strips = if frame.first() == Some(&STATUS_OK) && frame.len() >= 9 {
                    let mut h = [0u8; 4];
                    h.copy_from_slice(&frame[5..9]);
                    (u32::from_le_bytes(h) as u64).div_ceil(8)
                } else {
                    0
                };
                if !write_client(&shared, &frame) {
                    break;
                }
                let mut failed = false;
                for _ in 0..strips {
                    let strip = match read_frame_patient(&mut from, &shared) {
                        Ok(Some(s)) => s,
                        Ok(None) | Err(_) => {
                            failed = true;
                            break;
                        }
                    };
                    // A typed error frame replaces a strip and ends the
                    // session on an intact boundary.
                    let terminal = strip.first() != Some(&STATUS_OK);
                    if !write_client(&shared, &strip) {
                        failed = true;
                        break;
                    }
                    if terminal {
                        break;
                    }
                }
                if failed {
                    // The session died mid-stream: the client sees the
                    // broken connection, not a completed reply, so it is
                    // neither counted nor left outstanding.
                    drop(pending);
                    complete(&state, &shared, shard, false);
                    teardown(&shared, &from);
                    return;
                }
                !busy
            }
        };
        drop(pending);
        complete(&state, &shared, shard, counted);
    }
    teardown(&shared, &from);
}

/// Marks one logical reply finished: in-flight counters down, shard
/// splice counter up (unless the reply was a connection-limit `BUSY`
/// rejection, which a directly-served backend would not have counted as
/// a request either).
fn complete(state: &FrontState, shared: &ConnShared, shard: u32, counted: bool) {
    shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    state.outstanding.fetch_sub(1, Ordering::SeqCst);
    if counted {
        if let Some(ctr) = state.shard_requests.get(shard as usize) {
            ctr.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Downstream-side teardown: mark the connection done and kick both
/// sockets so the upstream thread unblocks; the client's next read sees
/// a closed connection and its reconnect+replay takes over.
fn teardown(shared: &ConnShared, backend: &TcpStream) {
    shared.done.store(true, Ordering::SeqCst);
    let _ = backend.shutdown(Shutdown::Both);
    let _ = lock(&shared.client_out).shutdown(Shutdown::Both);
}
