//! SIGTERM wiring for the drain-on-shutdown contract.
//!
//! The workspace vendors no `libc` crate, so the one registration call
//! goes straight to the C library's `signal(2)`, which is always linked
//! on the platforms the service targets. The handler body is a single
//! atomic store — the only thing that is async-signal-safe to do — and
//! the front end's accept loop polls the flag and starts its drain.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM arrives; polled by the accept loop.
static TERM_FLAG: AtomicBool = AtomicBool::new(false);

/// `SIGTERM` on every platform this service targets (Linux, BSDs,
/// macOS all agree on 15).
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// C library `signal(2)`. The handler is passed as a plain address
    /// (`sighandler_t` is a function pointer; an `extern "C" fn(i32)`
    /// address is ABI-compatible).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The SIGTERM handler: one atomic store, nothing else — the only kind
/// of work that is async-signal-safe.
extern "C" fn on_term(_signum: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler and returns the flag it sets. Idempotent;
/// on non-Unix targets the flag is returned without installing anything
/// (SIGTERM does not exist there).
pub fn install_term_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        // SAFETY: `signal` is the C library's own registration call with
        // the documented `(c_int, sighandler_t)` ABI; `on_term` is an
        // `extern "C" fn(i32)` whose address is a valid `sighandler_t`,
        // it stays alive for the whole program (it is a static fn), and
        // its body performs only an async-signal-safe atomic store.
        unsafe {
            let _ = signal(SIGTERM, on_term as *const () as usize);
        }
    }
    &TERM_FLAG
}

/// Whether SIGTERM has arrived since the handler was installed.
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}
