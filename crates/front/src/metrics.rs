//! Fleet-wide metrics aggregation.
//!
//! The front end answers `Metrics` requests itself: it scrapes every live
//! backend, relabels each passthrough sample with a `shard="N"` label, and
//! merges the shards into one exposition alongside the front's own
//! `deepn_front_*` instruments. Backend restarts must not make counters go
//! backwards, so retired incarnations are **folded into a floor**: when a
//! shard's incarnation bumps, its last-seen counter and histogram samples
//! are added to a per-shard floor that every later emission includes.
//! Gauges describe the current process only and are discarded with it.
//!
//! `deepn_serve_requests_total` is special-cased: a SIGKILLed backend takes
//! its not-yet-scraped tail of that counter to the grave, which would break
//! the load generator's exact reconciliation. The front therefore counts
//! requests itself at the splice layer (the counters live in
//! [`crate::Front`] and survive restarts) and the aggregator emits the
//! family from those counters exclusively, dropping the backend copies.

use std::net::SocketAddr;

use deepn_serve::Client;
use deepn_trace::prom::{self, Family, Sample};

use crate::supervisor::ShardView;

/// The passthrough family replaced by splice-layer counters.
const REQUESTS_FAMILY: &str = "deepn_serve_requests_total";
const REQUESTS_HELP: &str = "Requests handled, all opcodes.";

/// The rejection family the front contributes its own sample to: a
/// "no live backend" busy issued at the splice layer has no backend
/// counterpart, and the load generator cross-checks client-side busy
/// outcomes against this counter's fleet-wide delta.
const REJECTED_FAMILY: &str = "deepn_serve_connections_rejected_total";
const REJECTED_HELP: &str = "Connections rejected with a typed busy frame.";

/// Per-shard scrape state: a cached connection to the current
/// incarnation, its latest scrape, and the floor folded from dead
/// incarnations.
struct ShardMetrics {
    incarnation: u64,
    client: Option<Client>,
    last: Vec<Family>,
    floor: Vec<Family>,
}

impl ShardMetrics {
    fn new() -> Self {
        ShardMetrics {
            incarnation: 0,
            client: None,
            last: Vec::new(),
            floor: Vec::new(),
        }
    }
}

/// Scrapes the backend fleet and renders one merged exposition.
pub(crate) struct MetricsAggregator {
    shards: Vec<ShardMetrics>,
}

impl MetricsAggregator {
    /// An aggregator over `n` shards.
    pub(crate) fn new(n: usize) -> Self {
        MetricsAggregator {
            shards: (0..n).map(|_| ShardMetrics::new()).collect(),
        }
    }

    /// Refreshes every shard's scrape from the given fleet snapshot. A
    /// shard that cannot be scraped keeps its last-seen (stale but
    /// monotone) samples; an incarnation bump folds the dead process's
    /// totals into the shard's floor first.
    pub(crate) fn scrape(&mut self, fleet: &[ShardView]) {
        for (state, view) in self.shards.iter_mut().zip(fleet) {
            if view.incarnation != state.incarnation {
                let last = std::mem::take(&mut state.last);
                fold_retired(&mut state.floor, &last);
                state.client = None;
                state.incarnation = view.incarnation;
            }
            let Some(addr) = view.addr else {
                state.client = None;
                continue;
            };
            if state.client.is_none() {
                state.client = connect(addr);
            }
            let Some(client) = state.client.as_mut() else {
                continue;
            };
            match client.metrics().ok().and_then(|t| prom::parse(&t).ok()) {
                Some(families) => state.last = families,
                None => state.client = None,
            }
        }
    }

    /// Renders the merged fleet exposition. `shard_requests` and
    /// `front_requests` are the splice-layer request counters that
    /// replace the passthrough `deepn_serve_requests_total` family;
    /// `front_rejected` joins the backend rejection counters as a
    /// `shard="front"` sample; `front_text` is the front's own registry
    /// render, appended verbatim (its `deepn_front_*` names are
    /// disjoint).
    pub(crate) fn render(
        &self,
        shard_requests: &[u64],
        front_requests: u64,
        front_rejected: u64,
        front_text: &str,
    ) -> String {
        let mut merged: Vec<Family> = Vec::new();
        for (i, state) in self.shards.iter().enumerate() {
            let mut combined = state.floor.clone();
            fold_retired(&mut combined, &state.last);
            // Gauges never enter the floor, so re-merge them from the
            // live scrape only.
            for f in &state.last {
                if f.kind == "gauge" && !combined.iter().any(|c| c.name == f.name) {
                    combined.push(f.clone());
                }
            }
            for family in &combined {
                if family.name == REQUESTS_FAMILY {
                    continue;
                }
                let target = merged_entry(&mut merged, family);
                for s in &family.samples {
                    let mut s = s.clone();
                    s.labels.push(("shard".to_string(), i.to_string()));
                    target.samples.push(s);
                }
            }
        }
        let mut requests = Family {
            name: REQUESTS_FAMILY.to_string(),
            help: REQUESTS_HELP.to_string(),
            kind: "counter".to_string(),
            samples: Vec::new(),
        };
        for (i, &v) in shard_requests.iter().enumerate() {
            requests.samples.push(Sample {
                name: REQUESTS_FAMILY.to_string(),
                labels: vec![("shard".to_string(), i.to_string())],
                value: v as f64,
            });
        }
        requests.samples.push(Sample {
            name: REQUESTS_FAMILY.to_string(),
            labels: vec![("shard".to_string(), "front".to_string())],
            value: front_requests as f64,
        });
        merged.push(requests);
        let rejected = merged_entry(
            &mut merged,
            &Family {
                name: REJECTED_FAMILY.to_string(),
                help: REJECTED_HELP.to_string(),
                kind: "counter".to_string(),
                samples: Vec::new(),
            },
        );
        rejected.samples.push(Sample {
            name: REJECTED_FAMILY.to_string(),
            labels: vec![("shard".to_string(), "front".to_string())],
            value: front_rejected as f64,
        });
        let mut out = prom::render(&merged);
        out.push_str(front_text);
        out
    }
}

/// A cached metrics connection to one backend incarnation. A dead
/// backend closes the socket, so a scrape against it errors out rather
/// than hanging; a wedged-but-alive backend is the supervisor's problem
/// (health pings kill it, bumping the incarnation and this client).
fn connect(addr: SocketAddr) -> Option<Client> {
    Client::connect(addr).ok()
}

/// Adds `fresh`'s counter and histogram samples into `acc`, matching
/// families by name and samples by `(name, labels)`. Gauges are skipped:
/// a dead process's gauge readings describe nothing that still exists.
fn fold_retired(acc: &mut Vec<Family>, fresh: &[Family]) {
    for f in fresh {
        if f.kind != "counter" && f.kind != "histogram" {
            continue;
        }
        let target = merged_entry(acc, f);
        for s in &f.samples {
            match target
                .samples
                .iter_mut()
                .find(|t| t.name == s.name && t.labels == s.labels)
            {
                Some(t) => t.value += s.value,
                None => target.samples.push(s.clone()),
            }
        }
    }
}

/// The family named like `f` in `acc`, created (empty, with `f`'s
/// help/kind) on first sight.
fn merged_entry<'a>(acc: &'a mut Vec<Family>, f: &Family) -> &'a mut Family {
    if let Some(pos) = acc.iter().position(|a| a.name == f.name) {
        return &mut acc[pos];
    }
    acc.push(Family {
        name: f.name.clone(),
        help: f.help.clone(),
        kind: f.kind.clone(),
        samples: Vec::new(),
    });
    let idx = acc.len() - 1;
    &mut acc[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fam(name: &str, kind: &str, samples: &[(&[(&str, &str)], f64)]) -> Family {
        Family {
            name: name.to_string(),
            help: "h".to_string(),
            kind: kind.to_string(),
            samples: samples
                .iter()
                .map(|(labels, v)| Sample {
                    name: name.to_string(),
                    labels: labels
                        .iter()
                        .map(|(k, vv)| (k.to_string(), vv.to_string()))
                        .collect(),
                    value: *v,
                })
                .collect(),
        }
    }

    #[test]
    fn fold_sums_counters_and_drops_gauges() {
        let mut acc = vec![fam("c", "counter", &[(&[], 5.0)])];
        let fresh = vec![
            fam("c", "counter", &[(&[], 3.0)]),
            fam("g", "gauge", &[(&[], 7.0)]),
        ];
        fold_retired(&mut acc, &fresh);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].samples[0].value, 8.0);
    }

    #[test]
    fn render_replaces_requests_family_and_relabels() {
        let mut agg = MetricsAggregator::new(2);
        agg.shards[0].last = vec![
            fam(REQUESTS_FAMILY, "counter", &[(&[], 100.0)]),
            fam("deepn_serve_active_connections", "gauge", &[(&[], 2.0)]),
        ];
        agg.shards[1].last = vec![fam(REQUESTS_FAMILY, "counter", &[(&[], 50.0)])];
        let out = agg.render(&[7, 9], 3, 4, "");
        prom::validate(&out).expect("merged exposition validates");
        assert!(out.contains("deepn_serve_requests_total{shard=\"0\"} 7"));
        assert!(out.contains("deepn_serve_requests_total{shard=\"1\"} 9"));
        assert!(out.contains("deepn_serve_requests_total{shard=\"front\"} 3"));
        assert!(out.contains("deepn_serve_connections_rejected_total{shard=\"front\"} 4"));
        assert!(!out.contains(" 100"));
        assert!(out.contains("deepn_serve_active_connections{shard=\"0\"} 2"));
    }

    #[test]
    fn incarnation_totals_survive_in_the_floor() {
        let mut agg = MetricsAggregator::new(1);
        agg.shards[0].last = vec![fam("deepn_serve_bytes_in_total", "counter", &[(&[], 40.0)])];
        let dead = std::mem::take(&mut agg.shards[0].last);
        fold_retired(&mut agg.shards[0].floor, &dead);
        agg.shards[0].last = vec![fam("deepn_serve_bytes_in_total", "counter", &[(&[], 2.0)])];
        let out = agg.render(&[0], 0, 0, "");
        assert!(out.contains("deepn_serve_bytes_in_total{shard=\"0\"} 42"));
    }
}
