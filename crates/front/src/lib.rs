//! # deepn-front
//!
//! A sharded, self-healing front end for the DeepN-JPEG compression
//! service. One front process listens on a single address, spawns and
//! supervises `N` backend `deepn serve` processes, and splices every
//! client connection onto one backend chosen by **consistent hashing**:
//! a client that advertises a table fingerprint in its `Hello` lands on
//! the shard whose caches already hold that table, and stays there for
//! the life of the connection (so the streaming ops never straddle
//! shards).
//!
//! Failure handling leans on the protocol's existing client contract
//! rather than front-side buffering: when a backend dies, its spliced
//! connections are torn down, the client's reconnect+replay re-sends the
//! unacknowledged window, and the ring routes the fresh connection to
//! the next live shard while the supervisor restarts the dead one with
//! exponential backoff. A request is thus at most *retried*, never
//! silently dropped — `crates/front/tests/chaos.rs` kills a backend
//! mid-storm and holds the load generator's reconciliation to that
//! contract.
//!
//! The front answers `Metrics` itself with a fleet-wide exposition
//! (per-shard samples labelled `shard="N"`, restart-proof counter
//! floors, splice-level request counting) and `Shutdown` with a drain:
//! stop accepting, let every in-flight request finish, then stop the
//! fleet. `docs/SHARDING.md` is the full design document.
//!
//! ```no_run
//! use deepn_front::{BackendCommand, Front, FrontConfig};
//!
//! # fn main() -> Result<(), deepn_serve::ServeError> {
//! let cmd = BackendCommand::new(
//!     "deepn",
//!     vec!["serve".into(), "--tables".into(), "tables.deepn".into(),
//!          "--addr".into(), "127.0.0.1:0".into()],
//! );
//! let front = Front::bind("127.0.0.1:7077", FrontConfig::new(3, cmd))?;
//! front.run() // serves until SIGTERM or a Shutdown request, then drains
//! # }
//! ```

#![deny(missing_docs)]

pub mod ring;
pub mod signal;

mod metrics;
mod proxy;
mod supervisor;

pub use ring::{fingerprint_bytes, splitmix64, Ring};
pub use supervisor::{BackendCommand, FleetView, ShardView, SupervisorConfig, READY_PREFIX};

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use deepn_serve::ServeError;
use deepn_trace::log;
use deepn_trace::{Counter, Gauge, Registry};

use metrics::MetricsAggregator;
use supervisor::Supervisor;

/// Front-end configuration: fleet shape plus supervision and drain
/// tuning.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Number of backend shards to spawn and route across.
    pub backends: usize,
    /// How to launch one backend (each must bind an ephemeral port and
    /// print the [`READY_PREFIX`] readiness line on stdout).
    pub backend_cmd: BackendCommand,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: u32,
    /// Supervision knobs: backoff, readiness, health pings.
    pub supervisor: SupervisorConfig,
    /// How long a drain waits for in-flight requests before giving up.
    pub drain_timeout: Duration,
}

impl FrontConfig {
    /// A standard fleet: `backends` shards from `backend_cmd`, 64 vnodes
    /// per shard, default supervision, a 30 s drain budget.
    pub fn new(backends: usize, backend_cmd: BackendCommand) -> Self {
        FrontConfig {
            backends: backends.max(1),
            backend_cmd,
            vnodes: 64,
            supervisor: SupervisorConfig::default(),
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// Shared front state: routing, fleet view, instruments, and the splice
/// counters the fleet exposition is built from.
pub(crate) struct FrontState {
    pub(crate) view: Arc<FleetView>,
    pub(crate) ring: Ring,
    registry: Registry,
    /// Fleet-wide in-flight requests (forwarded, reply not yet done).
    pub(crate) outstanding: AtomicI64,
    /// Per-shard completed-request counters — the authoritative
    /// `deepn_serve_requests_total{shard="N"}` source, surviving backend
    /// restarts (see `crates/front/src/metrics.rs`).
    pub(crate) shard_requests: Vec<AtomicU64>,
    /// Requests the front answered itself (`shard="front"`).
    pub(crate) front_requests: AtomicU64,
    /// Busy rejections the front issued itself ("no live backend") —
    /// the `shard="front"` sample of the fleet rejection counter.
    pub(crate) front_rejected: AtomicU64,
    pub(crate) active_conns: AtomicI64,
    pub(crate) connections_total: Arc<Counter>,
    pub(crate) failovers_total: Arc<Counter>,
    active_gauge: Arc<Gauge>,
    aggregator: Mutex<MetricsAggregator>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FrontState {
    /// Whether the front is draining (no new accepts, no respawns).
    pub(crate) fn draining(&self) -> bool {
        self.view.draining.load(Ordering::SeqCst)
    }

    /// Starts the drain; idempotent.
    pub(crate) fn begin_drain(&self) {
        self.view.draining.store(true, Ordering::SeqCst);
    }

    /// Publishes the active-connection count to the gauge.
    pub(crate) fn set_active(&self, n: i64) {
        self.active_gauge.set(n.max(0) as u64);
    }

    /// One fleet-wide Prometheus exposition: scrape every live backend,
    /// merge with restart floors, splice in the front's own counters.
    pub(crate) fn render_metrics(&self) -> String {
        let mut agg = lock(&self.aggregator);
        agg.scrape(&self.view.snapshot());
        let shard_requests: Vec<u64> = self
            .shard_requests
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect();
        agg.render(
            &shard_requests,
            self.front_requests.load(Ordering::SeqCst),
            self.front_rejected.load(Ordering::SeqCst),
            &self.registry.render(),
        )
    }
}

/// A bound front end, ready to [`Front::run`].
pub struct Front {
    listener: TcpListener,
    state: Arc<FrontState>,
    supervisor: thread::JoinHandle<()>,
    drain_timeout: Duration,
}

impl Front {
    /// Binds the client listener, spawns the backend fleet, and waits
    /// until every shard is up.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the listener cannot bind;
    /// [`ServeError::Remote`] if the fleet does not come up within the
    /// readiness budget.
    pub fn bind(addr: impl ToSocketAddrs, config: FrontConfig) -> Result<Front, ServeError> {
        let n = config.backends;
        let registry = Registry::new();
        let connections_total = registry.counter(
            "deepn_front_connections_total",
            "Client connections accepted by the front end.",
        );
        let active_gauge = registry.gauge(
            "deepn_front_active_connections",
            "Client connections currently spliced.",
        );
        let restarts_total = registry.counter(
            "deepn_front_backend_restarts_total",
            "Backend processes respawned after a crash or kill.",
        );
        let failovers_total = registry.counter(
            "deepn_front_failovers_total",
            "Connections diverted off their home shard by a dead backend.",
        );
        let backends_gauge =
            registry.gauge("deepn_front_backends", "Configured backend shard count.");
        let healthy_gauge = registry.gauge(
            "deepn_front_backends_healthy",
            "Backend shards currently up and routable.",
        );
        backends_gauge.set(n as u64);

        let view = Arc::new(FleetView::new(n));
        let supervisor = Supervisor::new(
            n,
            config.backend_cmd.clone(),
            config.supervisor.clone(),
            Arc::clone(&view),
            Some(restarts_total),
            Some(healthy_gauge),
        );
        let sup_thread = thread::Builder::new()
            .name("front-supervisor".to_string())
            .spawn(move || supervisor.run())?;

        // Initial readiness: every shard up before we accept traffic.
        // Spawns are serialized by the supervisor, so the budget scales
        // with the fleet.
        let deadline =
            deepn_trace::tick() + config.supervisor.readiness_timeout.as_nanos() as u64 * n as u64;
        while view.live() < n {
            if deepn_trace::tick() > deadline {
                view.stop.store(true, Ordering::SeqCst);
                let _ = sup_thread.join();
                return Err(ServeError::Remote(format!(
                    "only {} of {n} backends became ready",
                    view.live()
                )));
            }
            thread::sleep(Duration::from_millis(10));
        }

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(FrontState {
            view,
            ring: Ring::with_shards(config.vnodes, n as u32),
            registry,
            outstanding: AtomicI64::new(0),
            shard_requests: (0..n).map(|_| AtomicU64::new(0)).collect(),
            front_requests: AtomicU64::new(0),
            front_rejected: AtomicU64::new(0),
            active_conns: AtomicI64::new(0),
            connections_total,
            failovers_total,
            active_gauge,
            aggregator: Mutex::new(MetricsAggregator::new(n)),
        });
        log::info("front_up")
            .field("addr", listener.local_addr()?)
            .field("backends", n)
            .emit();
        Ok(Front {
            listener,
            state,
            supervisor: sup_thread,
            drain_timeout: config.drain_timeout,
        })
    }

    /// The address clients connect to.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket's local address is unavailable.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves until a drain is requested — by SIGTERM (when
    /// [`signal::install_term_handler`] was called), a client `Shutdown`
    /// request, or [`FrontHandle::request_drain`] — then completes every
    /// in-flight request, stops the fleet, and returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on listener failures.
    pub fn run(self) -> Result<(), ServeError> {
        let mut conn_id: u64 = 0;
        loop {
            if self.state.draining() || signal::term_requested() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    conn_id += 1;
                    let state = Arc::clone(&self.state);
                    thread::Builder::new()
                        .name(format!("front-up-{conn_id}"))
                        .spawn(move || proxy::handle_conn(state, stream, conn_id))?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        }

        // Drain: no new connections (loop exited), in-flight requests run
        // to completion, then the fleet is stopped gracefully.
        self.state.begin_drain();
        let deadline = deepn_trace::tick() + self.drain_timeout.as_nanos() as u64;
        loop {
            let inflight = self.state.outstanding.load(Ordering::SeqCst);
            if inflight <= 0 {
                break;
            }
            if deepn_trace::tick() > deadline {
                log::warn("front_drain_timeout")
                    .field("outstanding", inflight)
                    .emit();
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.state.view.stop.store(true, Ordering::SeqCst);
        let _ = self.supervisor.join();
        log::info("front_drained")
            .field("outstanding", self.state.outstanding.load(Ordering::SeqCst))
            .emit();
        Ok(())
    }

    /// Current pid of each backend shard (`None` while down) — printed
    /// by the CLI so external harnesses can inject faults with `kill`.
    pub fn backend_pids(&self) -> Vec<Option<u32>> {
        self.state.view.snapshot().iter().map(|s| s.pid).collect()
    }

    /// Runs the front on its own thread, returning a handle for drains
    /// and fault injection.
    pub fn spawn(self) -> FrontHandle {
        let addr = self
            .listener
            .local_addr()
            .unwrap_or_else(|_| SocketAddr::from(([127, 0, 0, 1], 0)));
        let state = Arc::clone(&self.state);
        let thread = thread::spawn(move || self.run());
        FrontHandle {
            addr,
            state,
            thread,
        }
    }
}

/// Handle to a front end running on its own thread.
pub struct FrontHandle {
    addr: SocketAddr,
    state: Arc<FrontState>,
    thread: thread::JoinHandle<Result<(), ServeError>>,
}

impl FrontHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the drain-and-stop sequence (idempotent, returns
    /// immediately; [`FrontHandle::join`] observes completion).
    pub fn request_drain(&self) {
        self.state.begin_drain();
    }

    /// SIGKILLs backend shard `i` — the fault-injection hook the chaos
    /// harness uses; the supervisor observes the death and restarts the
    /// shard with backoff.
    pub fn kill_backend(&self, i: u32) {
        self.state.view.request_kill(i);
    }

    /// Cumulative backend respawns.
    pub fn restarts(&self) -> u64 {
        self.state.view.restarts.load(Ordering::SeqCst)
    }

    /// Backend shards currently up.
    pub fn live_backends(&self) -> usize {
        self.state.view.live()
    }

    /// Current pid of each shard (`None` while down).
    pub fn backend_pids(&self) -> Vec<Option<u32>> {
        self.state.view.snapshot().iter().map(|s| s.pid).collect()
    }

    /// Waits for the front to drain and stop.
    ///
    /// # Errors
    ///
    /// The run loop's terminal error, if any; a panicked run thread
    /// surfaces as [`ServeError::Remote`].
    pub fn join(self) -> Result<(), ServeError> {
        match self.thread.join() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Remote("front run thread panicked".into())),
        }
    }
}
