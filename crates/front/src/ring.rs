//! The consistent-hash ring behind shard routing.
//!
//! Pure and deterministic: shard placement depends only on the shard ids
//! and the virtual-node count, never on insertion order, thread count, or
//! any process state — `tests/proptest_front.rs` (workspace root) pins
//! the stability, balance, and determinism contracts. Each shard owns
//! `vnodes` points on a 64-bit ring; a key routes to the owner of the
//! first point at or after it (wrapping). Adding or removing one shard
//! therefore moves only the keys falling in the arcs that shard gains or
//! loses — roughly `K/N` of them — while every other key keeps its home.

/// SplitMix64 finalizer — the ring's point hash and the recommended
/// spreader for synthetic routing keys (`deepn-serve`'s load generator
/// uses the same mixer for its per-client keys).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice — the table-fingerprint hash. A client
/// fingerprints the quantization-table artifact it works against (the
/// raw artifact file bytes are the canonical input) and advertises the
/// result in its `Hello`, so every connection using one table lands on
/// the backend whose caches already hold it.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // 0 means "no fingerprint" on the wire; remap the (astronomically
    // unlikely) zero digest so real fingerprints are always routable.
    if h == 0 {
        1
    } else {
        h
    }
}

/// A consistent-hash ring mapping 64-bit keys to shard ids.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: u32,
    /// Ring points sorted by `(hash, shard)`: each shard contributes
    /// `vnodes` entries.
    points: Vec<(u64, u32)>,
    /// Member shard ids, sorted.
    shards: Vec<u32>,
}

impl Ring {
    /// An empty ring whose shards will each own `vnodes` points
    /// (clamped to at least 1).
    pub fn new(vnodes: u32) -> Self {
        Ring {
            vnodes: vnodes.max(1),
            points: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// A ring populated with shard ids `0..shards`.
    pub fn with_shards(vnodes: u32, shards: u32) -> Self {
        let mut ring = Ring::new(vnodes);
        for shard in 0..shards {
            ring.insert(shard);
        }
        ring
    }

    /// Number of member shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The member shard ids, sorted.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// The hash of shard `shard`'s virtual node `v` — where that vnode
    /// sits on the ring. The salt domain-separates vnode points from
    /// routing keys: without it, shard 0's points are `splitmix64(v)` for
    /// small `v` — exactly the recommended `splitmix64(i)` key spreader —
    /// so every small-seed key would land on its own shard-0 point and
    /// the fleet would collapse onto one backend.
    fn point(shard: u32, v: u32) -> u64 {
        splitmix64(0x6a09_e667_f3bc_c909 ^ ((shard as u64) << 32) ^ v as u64)
    }

    /// Adds a shard (idempotent).
    pub fn insert(&mut self, shard: u32) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        for v in 0..self.vnodes {
            self.points.push((Self::point(shard, v), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard (idempotent).
    pub fn remove(&mut self, shard: u32) {
        self.shards.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning `key`: the owner of the first ring point at or
    /// after the key, wrapping past the top. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<u32> {
        self.route_live(key, |_| true)
    }

    /// Like [`Ring::route`], but walks past points whose shard `alive`
    /// rejects — the failover path: a key whose home shard is down lands
    /// on the next live shard clockwise, and returns home as soon as the
    /// shard does. `None` when no live shard exists.
    pub fn route_live(&self, key: u64, alive: impl Fn(u32) -> bool) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(h, _)| h < key);
        let n = self.points.len();
        for i in 0..n {
            let (_, shard) = self.points[(start + i) % n];
            if alive(shard) {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_key_and_respects_membership() {
        let ring = Ring::with_shards(64, 3);
        assert_eq!(ring.len(), 3);
        for k in 0..1000u64 {
            let shard = ring.route(splitmix64(k)).expect("non-empty ring routes");
            assert!(shard < 3);
        }
        assert_eq!(Ring::new(8).route(42), None);
    }

    #[test]
    fn failover_walks_to_next_live_shard_and_returns_home() {
        let ring = Ring::with_shards(64, 4);
        for k in 0..500u64 {
            let key = splitmix64(k.wrapping_mul(0x9e37));
            let home = ring.route(key).expect("home");
            let diverted = ring
                .route_live(key, |s| s != home)
                .expect("three live shards remain");
            assert_ne!(diverted, home);
            // A key not homed on the dead shard is unaffected.
            let other = ring
                .route_live(key, |s| s == home || s != diverted)
                .expect("route");
            assert_eq!(other, home);
        }
    }

    #[test]
    fn fingerprints_never_collide_with_the_unset_sentinel() {
        assert_ne!(fingerprint_bytes(b""), 0);
        assert_ne!(fingerprint_bytes(b"tables.deepn"), 0);
        assert_ne!(fingerprint_bytes(b"a"), fingerprint_bytes(b"b"));
    }
}
