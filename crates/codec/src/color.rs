//! JFIF RGB ↔ YCbCr color transforms (ITU-R BT.601 full range).

use crate::RgbImage;

/// One luma/chroma plane of `f32` samples in display order.
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    /// Plane width in samples.
    pub width: usize,
    /// Plane height in samples.
    pub height: usize,
    /// Row-major samples, nominally in `[0, 255]`.
    pub samples: Vec<f32>,
}

impl Plane {
    /// Creates a zeroed plane.
    pub fn new(width: usize, height: usize) -> Self {
        Plane {
            width,
            height,
            samples: vec![0.0; width * height],
        }
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "sample out of bounds");
        self.samples[y * self.width + x]
    }
}

/// Converts one RGB pixel to YCbCr (all components in `[0, 255]`,
/// chroma centered at 128).
pub fn rgb_to_ycbcr(rgb: [u8; 3]) -> [f32; 3] {
    let (r, g, b) = (f32::from(rgb[0]), f32::from(rgb[1]), f32::from(rgb[2]));
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    [y, cb, cr]
}

/// Converts one YCbCr triple back to clamped 8-bit RGB.
pub fn ycbcr_to_rgb(ycc: [f32; 3]) -> [u8; 3] {
    let (y, cb, cr) = (ycc[0], ycc[1] - 128.0, ycc[2] - 128.0);
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    [clamp_u8(r), clamp_u8(g), clamp_u8(b)]
}

fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// Splits an RGB image into full-resolution Y, Cb, Cr planes (4:4:4).
pub fn image_to_planes(img: &RgbImage) -> [Plane; 3] {
    let (w, h) = (img.width(), img.height());
    let mut planes = [Plane::new(w, h), Plane::new(w, h), Plane::new(w, h)];
    for y in 0..h {
        for x in 0..w {
            let ycc = rgb_to_ycbcr(img.get(x, y));
            for (p, &v) in planes.iter_mut().zip(ycc.iter()) {
                p.samples[y * w + x] = v;
            }
        }
    }
    planes
}

/// Recombines Y, Cb, Cr planes into an RGB image.
///
/// # Panics
///
/// Panics if the planes disagree in size.
pub fn planes_to_image(planes: &[Plane; 3]) -> RgbImage {
    let (w, h) = (planes[0].width, planes[0].height);
    assert!(
        planes.iter().all(|p| p.width == w && p.height == h),
        "plane size mismatch"
    );
    let mut img = RgbImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let ycc = [
                planes[0].samples[y * w + x],
                planes[1].samples[y * w + x],
                planes[2].samples[y * w + x],
            ];
            img.put(x, y, ycbcr_to_rgb(ycc));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_expected_luma() {
        // White has max luma, black zero, and the BT.601 weights order
        // green > red > blue in luma contribution.
        assert!((rgb_to_ycbcr([255, 255, 255])[0] - 255.0).abs() < 0.1);
        assert!(rgb_to_ycbcr([0, 0, 0])[0].abs() < 0.1);
        let yr = rgb_to_ycbcr([255, 0, 0])[0];
        let yg = rgb_to_ycbcr([0, 255, 0])[0];
        let yb = rgb_to_ycbcr([0, 0, 255])[0];
        assert!(yg > yr && yr > yb);
    }

    #[test]
    fn gray_has_neutral_chroma() {
        let ycc = rgb_to_ycbcr([100, 100, 100]);
        assert!((ycc[1] - 128.0).abs() < 0.1);
        assert!((ycc[2] - 128.0).abs() < 0.1);
    }

    #[test]
    fn round_trip_is_near_lossless() {
        for rgb in [[0, 0, 0], [255, 255, 255], [12, 200, 94], [255, 0, 128]] {
            let back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
            for c in 0..3 {
                assert!(
                    (i16::from(back[c]) - i16::from(rgb[c])).abs() <= 1,
                    "{rgb:?} -> {back:?}"
                );
            }
        }
    }

    #[test]
    fn plane_round_trip_preserves_image() {
        let img = RgbImage::gradient(9, 7);
        let back = planes_to_image(&image_to_planes(&img));
        for y in 0..7 {
            for x in 0..9 {
                let a = img.get(x, y);
                let b = back.get(x, y);
                for c in 0..3 {
                    assert!((i16::from(a[c]) - i16::from(b[c])).abs() <= 2);
                }
            }
        }
    }
}
