//! 8×8 two-dimensional DCT-II (forward) and DCT-III (inverse), the exact
//! orthonormal transform used by JPEG (ITU T.81 §A.3.3).
//!
//! The implementation is separable — an 8-point 1-D transform applied to
//! rows then columns — with the cosine basis precomputed once. The forward
//! and inverse transforms are exact adjoints, so `idct(dct(x)) == x` up to
//! floating-point rounding; the codec's only loss comes from quantization.

use crate::block::Block;

/// `COS[u][x] = cos((2x+1)uπ/16)`, the 8-point DCT basis.
fn cos_table() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; 8]; 8];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = (((2 * x + 1) as f32) * (u as f32) * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

fn alpha(u: usize) -> f32 {
    if u == 0 {
        std::f32::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Forward 2-D DCT-II of a level-shifted 8×8 block.
///
/// Output index `[v*8 + u]` holds the coefficient for vertical frequency
/// `v` and horizontal frequency `u`; `[0]` is the DC coefficient.
///
/// ```
/// use deepn_codec::dct::forward_dct_8x8;
///
/// let flat = [10.0f32; 64];
/// let c = forward_dct_8x8(&flat);
/// assert!((c[0] - 80.0).abs() < 1e-3); // DC = 8 * mean
/// assert!(c[1..].iter().all(|v| v.abs() < 1e-3));
/// ```
pub fn forward_dct_8x8(block: &Block) -> Block {
    let cos = cos_table();
    // Rows first.
    let mut tmp = [0.0f32; 64];
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for x in 0..8 {
                acc += block[y * 8 + x] * cos[u][x];
            }
            tmp[y * 8 + u] = acc * alpha(u) * 0.5;
        }
    }
    // Then columns.
    let mut out = [0.0f32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * cos[v][y];
            }
            out[v * 8 + u] = acc * alpha(v) * 0.5;
        }
    }
    out
}

/// Inverse 2-D DCT (DCT-III), the exact inverse of [`forward_dct_8x8`].
pub fn inverse_dct_8x8(coeffs: &Block) -> Block {
    let cos = cos_table();
    // Columns first.
    let mut tmp = [0.0f32; 64];
    for u in 0..8 {
        for y in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                acc += alpha(v) * coeffs[v * 8 + u] * cos[v][y];
            }
            tmp[y * 8 + u] = acc * 0.5;
        }
    }
    // Then rows.
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for u in 0..8 {
                acc += alpha(u) * tmp[y * 8 + u] * cos[u][x];
            }
            out[y * 8 + x] = acc * 0.5;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        let mut b = [0.0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 29 % 97) as f32) - 48.0;
        }
        b
    }

    #[test]
    fn dc_of_constant_block() {
        let b = [-64.0f32; 64];
        let c = forward_dct_8x8(&b);
        assert!((c[0] - (-512.0)).abs() < 1e-2);
        assert!(c[1..].iter().all(|v| v.abs() < 1e-3));
    }

    #[test]
    fn round_trip_is_identity() {
        let b = sample_block();
        let back = inverse_dct_8x8(&forward_dct_8x8(&b));
        for (a, r) in b.iter().zip(back.iter()) {
            assert!((a - r).abs() < 1e-3, "{a} vs {r}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        // Orthonormal transform: sum of squares invariant.
        let b = sample_block();
        let c = forward_dct_8x8(&b);
        let es: f32 = b.iter().map(|v| v * v).sum();
        let ec: f32 = c.iter().map(|v| v * v).sum();
        assert!((es - ec).abs() < es * 1e-4, "{es} vs {ec}");
    }

    #[test]
    fn horizontal_cosine_excites_single_coefficient() {
        // A pure cos basis function concentrates into one AC coefficient.
        let mut b = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                b[y * 8 + x] =
                    (((2 * x + 1) as f32) * 3.0 * std::f32::consts::PI / 16.0).cos() * 50.0;
            }
        }
        let c = forward_dct_8x8(&b);
        // Expect energy at (v=0, u=3) only.
        for (i, &v) in c.iter().enumerate() {
            if i == 3 {
                assert!(v.abs() > 50.0, "target coefficient too small: {v}");
            } else {
                assert!(v.abs() < 1e-2, "leak at {i}: {v}");
            }
        }
    }

    #[test]
    fn linearity() {
        let a = sample_block();
        let mut b2 = a;
        b2.iter_mut().for_each(|v| *v *= 2.0);
        let ca = forward_dct_8x8(&a);
        let cb = forward_dct_8x8(&b2);
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert!((2.0 * x - y).abs() < 1e-2);
        }
    }
}
