//! # deepn-codec
//!
//! A baseline-sequential JPEG codec written from scratch, serving as the
//! compression substrate of the
//! [DeepN-JPEG](https://arxiv.org/abs/1803.05788) reproduction.
//!
//! The paper builds its framework by "heavily modifying the open source
//! JPEG framework"; this crate is that framework, with every stage exposed
//! so the quantization table — the component DeepN-JPEG redesigns — can be
//! swapped freely:
//!
//! 1. RGB → YCbCr color transform ([`color`])
//! 2. 8×8 block partition with edge replication ([`block`])
//! 3. 2-D DCT-II per block ([`dct`])
//! 4. quantization with arbitrary tables + IJG quality scaling ([`quant`])
//! 5. zig-zag reordering ([`zigzag`])
//! 6. DPCM-coded DC / run-length-coded AC coefficients ([`coeffs`])
//! 7. canonical Huffman entropy coding, with both the Annex K standard
//!    tables and per-image optimized tables ([`huffman`])
//! 8. a JFIF-style marker container (SOI/APP0/DQT/SOF0/DHT/SOS/EOI) with
//!    0xFF byte stuffing ([`marker`], [`bitstream`])
//!
//! The [`Encoder`]/[`Decoder`] pair round-trips any [`RgbImage`]; 4:4:4
//! (no chroma subsampling) is used throughout, matching the paper's scope.
//!
//! Both directions are thin adapters over the streaming stage pipeline
//! ([`stream`]): [`StreamEncoder`]/[`StreamDecoder`] process 8-pixel-high
//! block strips through reusable [`EncodeWorkspace`]/[`DecodeWorkspace`]
//! buffers, so arbitrarily large images compress in O(strip) memory with
//! no per-block allocation (see `docs/CODEC_PIPELINE.md`). Per-stage
//! strip timings are available behind the [`profile`] seam
//! (`deepn pipeline --profile`) without the codec ever reading a clock
//! itself — and without changing output bytes.
//!
//! ## Example
//!
//! ```
//! use deepn_codec::{Decoder, Encoder, QuantTablePair, RgbImage};
//!
//! # fn main() -> Result<(), deepn_codec::CodecError> {
//! let img = RgbImage::gradient(32, 32);
//! let bytes = Encoder::with_tables(QuantTablePair::standard(90)).encode(&img)?;
//! let back = Decoder::new().decode(&bytes)?;
//! assert_eq!((back.width(), back.height()), (32, 32));
//! assert!(deepn_codec::psnr(&img, &back) > 30.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod bitstream;
pub mod block;
pub mod coeffs;
pub mod color;
pub mod dct;
mod decoder;
mod encoder;
mod error;
pub mod huffman;
mod image;
pub mod marker;
mod metrics;
pub mod ppm;
pub mod profile;
pub mod quant;
pub mod stream;
pub mod zigzag;

pub use decoder::Decoder;
pub use encoder::{CoefficientPlanes, Encoder};
pub use error::CodecError;
pub use image::RgbImage;
pub use metrics::{compression_ratio, mse, psnr, CompressionStats};
pub use quant::{QuantTable, QuantTablePair};
pub use stream::{
    DecodeWorkspace, EncodeWorkspace, PixelStrip, StreamDecoder, StreamEncoder, STRIP_ROWS,
};
