//! The streaming stage pipeline: the codec exposed as explicit stages
//! over 8-pixel-high block *strips* instead of whole images.
//!
//! ```text
//! encode:  ColorConvert → BlockSplit → Dct → Quantize → Zigzag → Entropy
//! decode:  Entropy → Unzigzag → Dequantize → Idct → BlockMerge → ColorConvert⁻¹
//! ```
//!
//! A [`StreamEncoder`] / [`StreamDecoder`] session processes one strip at
//! a time through caller-owned, reusable [`EncodeWorkspace`] /
//! [`DecodeWorkspace`] scratch buffers: peak memory is O(strip), and after
//! the first strip of a given width no per-block heap allocation happens
//! at all. The per-block transform stages fan out on the `deepn-parallel`
//! pool with index-addressed writes, so the output is **byte-identical**
//! at any `DEEPN_THREADS` — the same determinism contract as every other
//! pool-wired hot path (`docs/PARALLELISM.md`).
//!
//! [`Encoder::encode`](crate::Encoder::encode) and
//! [`Decoder::decode`](crate::Decoder::decode) are thin adapters over
//! these sessions; driving a session by hand produces the same bytes,
//! which `tests/proptest_stream.rs` enforces. The full stage graph and
//! workspace ownership rules are documented in `docs/CODEC_PIPELINE.md`.
//!
//! ## The two Huffman modes
//!
//! Per-image optimized Huffman tables (the [`Encoder`] default) need the
//! whole image's symbol statistics before the first header byte can be
//! written, so an optimized session is **two passes over the strips**:
//! every strip through [`StreamEncoder::analyze_strip`] (O(1) tally
//! state), then every strip again through
//! [`StreamEncoder::encode_strip`]. With
//! [`optimize_huffman(false)`](crate::Encoder::optimize_huffman) the
//! session is single-pass — the mode for sources that cannot be rewound,
//! like the network strips of `deepn-serve`'s `CompressStream`.
//!
//! ```
//! use deepn_codec::{EncodeWorkspace, Encoder, PixelStrip, RgbImage, StreamEncoder};
//!
//! # fn main() -> Result<(), deepn_codec::CodecError> {
//! let img = RgbImage::gradient(21, 13);
//! let enc = Encoder::with_quality(80);
//! let mut ws = EncodeWorkspace::new();
//! let mut session = StreamEncoder::new(&enc, 21, 13)?;
//! let mut strip = PixelStrip::new();
//! for pass in 0..2 {
//!     for s in 0..session.strip_count() {
//!         strip.copy_from_image(&img, s);
//!         if pass == 0 {
//!             session.analyze_strip(&strip, &mut ws)?;
//!         } else {
//!             session.encode_strip(&strip, &mut ws)?;
//!         }
//!     }
//! }
//! assert_eq!(session.finish()?, enc.encode(&img)?);
//! # Ok(())
//! # }
//! ```

use crate::bitstream::{BitReader, BitWriter};
use crate::block::{blocks_along, Block, BLOCK_SIZE};
use crate::coeffs::{decode_block, encode_block, tally_block};
use crate::color::{rgb_to_ycbcr, ycbcr_to_rgb};
use crate::dct::{forward_dct_8x8, inverse_dct_8x8};
use crate::decoder::ScanSetup;
use crate::encoder::write_headers;
use crate::huffman::{HuffmanEncoder, HuffmanSpec};
use crate::marker::{write_marker, EOI};
use crate::profile::{self, maybe_timer, Profiler, Stage};
use crate::zigzag::{scan, unscan};
use crate::{CodecError, Encoder, QuantTablePair, RgbImage};

/// Height of one strip — one row of 8×8 blocks.
pub const STRIP_ROWS: usize = BLOCK_SIZE;

/// Number of strips an image of `height` pixels streams as.
pub fn strip_count_for(height: usize) -> usize {
    blocks_along(height)
}

/// Rows carried by the strip at `index` for an image of `height` pixels
/// (8, except a shorter final strip when the height is not a multiple of
/// 8) — the single source of strip geometry for every streaming layer.
///
/// # Panics
///
/// Panics if `index >= strip_count_for(height)`.
pub fn strip_rows_for(height: usize, index: usize) -> usize {
    let count = strip_count_for(height);
    assert!(index < count, "strip index out of range");
    if index + 1 == count {
        height - (count - 1) * STRIP_ROWS
    } else {
        STRIP_ROWS
    }
}

/// A reusable buffer holding up to [`STRIP_ROWS`] rows of interleaved RGB
/// pixels — the unit of I/O on both ends of the streaming pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PixelStrip {
    width: usize,
    rows: usize,
    data: Vec<u8>,
}

impl PixelStrip {
    /// Creates an empty strip; the first fill sizes it.
    pub fn new() -> Self {
        PixelStrip::default()
    }

    /// Fills the strip from raw interleaved RGB rows.
    ///
    /// # Errors
    ///
    /// [`CodecError::StreamState`] unless `rgb` holds exactly
    /// `rows * width * 3` bytes with `1 <= rows <= 8` and `width > 0`.
    pub fn set_rows(&mut self, width: usize, rows: usize, rgb: &[u8]) -> Result<(), CodecError> {
        if width == 0 || rows == 0 || rows > STRIP_ROWS || rgb.len() != rows * width * 3 {
            return Err(CodecError::StreamState(format!(
                "{} bytes do not hold {rows} RGB rows of width {width}",
                rgb.len()
            )));
        }
        self.width = width;
        self.rows = rows;
        self.data.clear();
        self.data.extend_from_slice(rgb);
        Ok(())
    }

    /// Fills the strip with rows `8*strip_index ..` of `image`. Returns
    /// `false` (leaving the strip untouched) when the index is past the
    /// last strip.
    pub fn copy_from_image(&mut self, image: &RgbImage, strip_index: usize) -> bool {
        let y0 = strip_index * STRIP_ROWS;
        if y0 >= image.height() {
            return false;
        }
        let rows = STRIP_ROWS.min(image.height() - y0);
        let stride = image.width() * 3;
        self.width = image.width();
        self.rows = rows;
        self.data.clear();
        self.data
            .extend_from_slice(&image.as_bytes()[y0 * stride..(y0 + rows) * stride]);
        true
    }

    /// Strip width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of valid rows (1–8).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The interleaved RGB bytes, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Caller-owned scratch buffers for the encode-side stages. Buffers are
/// sized on first use and reused verbatim while the strip width is
/// unchanged — the steady-state strip loop allocates nothing per block.
#[derive(Debug, Default)]
pub struct EncodeWorkspace {
    width: usize,
    bw: usize,
    planes: [Vec<f32>; 3],
    blocks: Vec<Block>,
    coeffs: Vec<[i32; 64]>,
    /// DCT-output staging used only by profiled sessions, which split the
    /// fused Dct+Quantize pass to time each stage; sized lazily so
    /// unprofiled sessions never pay for it.
    dct: Vec<Block>,
}

impl EncodeWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        EncodeWorkspace::default()
    }

    fn ensure(&mut self, width: usize) {
        if self.width == width {
            return;
        }
        let bw = blocks_along(width);
        for plane in &mut self.planes {
            plane.clear();
            plane.resize(STRIP_ROWS * width, 0.0);
        }
        self.blocks.clear();
        self.blocks.resize(3 * bw, [0.0; 64]);
        self.coeffs.clear();
        self.coeffs.resize(3 * bw, [0; 64]);
        self.width = width;
        self.bw = bw;
    }

    /// The level-shifted blocks of one component (0 = Y, 1 = Cb, 2 = Cr)
    /// produced by the latest [`blockize_strip`] — how `deepn-core`'s
    /// frequency analysis consumes the block stream without materializing
    /// whole-image coefficient planes.
    ///
    /// # Panics
    ///
    /// Panics if `component > 2`.
    pub fn component_blocks(&self, component: usize) -> &[Block] {
        assert!(component < 3, "component index out of range");
        &self.blocks[component * self.bw..(component + 1) * self.bw]
    }
}

/// Caller-owned scratch buffers for the decode-side stages; same reuse
/// contract as [`EncodeWorkspace`].
#[derive(Debug, Default)]
pub struct DecodeWorkspace {
    width: usize,
    bw: usize,
    coeffs: Vec<[i32; 64]>,
    blocks: Vec<Block>,
    planes: [Vec<f32>; 3],
    /// Dequantize-output staging used only by profiled sessions (the
    /// mirror of [`EncodeWorkspace::dct`]); sized lazily.
    dequant: Vec<Block>,
}

impl DecodeWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        DecodeWorkspace::default()
    }

    fn ensure(&mut self, width: usize) {
        if self.width == width {
            return;
        }
        let bw = blocks_along(width);
        self.coeffs.clear();
        self.coeffs.resize(3 * bw, [0; 64]);
        self.blocks.clear();
        self.blocks.resize(3 * bw, [0.0; 64]);
        for plane in &mut self.planes {
            plane.clear();
            plane.resize(STRIP_ROWS * width, 0.0);
        }
        self.width = width;
        self.bw = bw;
    }
}

/// Stages 1–2 of the encode pipeline: color-convert `strip` into Y/Cb/Cr
/// strip planes, then split each plane into level-shifted 8×8 blocks with
/// edge replication (Y blocks first, then Cb, then Cr — read them back
/// with [`EncodeWorkspace::component_blocks`]).
pub fn blockize_strip(strip: &PixelStrip, ws: &mut EncodeWorkspace) {
    ws.ensure(strip.width);
    let (w, rows) = (strip.width, strip.rows);
    // Stage 1 — ColorConvert.
    for y in 0..rows {
        for x in 0..w {
            let i = (y * w + x) * 3;
            let ycc = rgb_to_ycbcr([strip.data[i], strip.data[i + 1], strip.data[i + 2]]);
            for (plane, &v) in ws.planes.iter_mut().zip(ycc.iter()) {
                plane[y * w + x] = v;
            }
        }
    }
    // Stage 2 — BlockSplit: replicate the nearest edge sample beyond the
    // right/bottom borders (the standard JPEG padding choice) and center
    // samples on zero.
    let bw = ws.bw;
    for ci in 0..3 {
        let plane = &ws.planes[ci];
        for bx in 0..bw {
            let blk = &mut ws.blocks[ci * bw + bx];
            for iy in 0..BLOCK_SIZE {
                let sy = iy.min(rows - 1);
                for ix in 0..BLOCK_SIZE {
                    let sx = (bx * BLOCK_SIZE + ix).min(w - 1);
                    blk[iy * BLOCK_SIZE + ix] = plane[sy * w + sx] - 128.0;
                }
            }
        }
    }
}

/// Stages 3–5: Dct → Quantize → Zigzag over every block the workspace
/// holds, in parallel on the `deepn-parallel` pool. Results are written by
/// index into the workspace's coefficient buffer, so they are
/// byte-identical at any thread count and nothing is allocated.
///
/// A profiled session runs the same math as two passes staged through
/// `ws.dct` so Dct and Quantize time separately — per value the identical
/// IEEE operations in the identical order, so the coefficients (and
/// therefore the output bytes) match the fused path exactly.
fn transform_strip(
    ws: &mut EncodeWorkspace,
    tables: &QuantTablePair,
    prof: Option<&'static Profiler>,
) {
    let bw = ws.bw;
    if let Some(p) = prof {
        if ws.dct.len() != ws.blocks.len() {
            ws.dct.clear();
            ws.dct.resize(ws.blocks.len(), [0.0; 64]);
        }
        {
            let _t = p.timer(Stage::EncodeDct);
            deepn_parallel::par_map_into(&ws.blocks, &mut ws.dct, |_, blk| forward_dct_8x8(blk));
        }
        let _t = p.timer(Stage::EncodeQuant);
        deepn_parallel::par_map_into(&ws.dct, &mut ws.coeffs, |i, blk| {
            let table = if i < bw { &tables.luma } else { &tables.chroma };
            scan(&table.quantize(blk))
        });
        return;
    }
    let blocks = &ws.blocks;
    deepn_parallel::par_map_into(blocks, &mut ws.coeffs, |i, blk| {
        let table = if i < bw { &tables.luma } else { &tables.chroma };
        scan(&table.quantize(&forward_dct_8x8(blk)))
    });
}

/// Symbol-frequency tallies for the optimized-Huffman analysis pass —
/// O(1) state regardless of image size.
#[derive(Debug)]
struct Tallies {
    dc_luma: [u64; 256],
    ac_luma: [u64; 256],
    dc_chroma: [u64; 256],
    ac_chroma: [u64; 256],
}

impl Default for Tallies {
    fn default() -> Self {
        Tallies {
            dc_luma: [0; 256],
            ac_luma: [0; 256],
            dc_chroma: [0; 256],
            ac_chroma: [0; 256],
        }
    }
}

#[derive(Debug)]
struct EntropyEncoders {
    dc_luma: HuffmanEncoder,
    ac_luma: HuffmanEncoder,
    dc_chroma: HuffmanEncoder,
    ac_chroma: HuffmanEncoder,
}

/// A push-based streaming encode session created by
/// [`StreamEncoder::new`] (or [`Encoder::stream_encoder`]). Strips are fed
/// in order, top to bottom; output bytes can be drained incrementally with
/// [`take_output`](Self::take_output) so nothing larger than a strip needs
/// to stay resident.
#[derive(Debug)]
pub struct StreamEncoder<'e> {
    encoder: &'e Encoder,
    width: usize,
    height: usize,
    strip_count: usize,
    analyzed: usize,
    encoded: usize,
    tallies: Option<Box<Tallies>>,
    entropy: Option<EntropyEncoders>,
    analyze_prev_dc: [i32; 3],
    prev_dc: [i32; 3],
    writer: BitWriter,
    out: Vec<u8>,
    prof: Option<&'static Profiler>,
}

impl<'e> StreamEncoder<'e> {
    /// Opens a session for a `width` × `height` image encoded with
    /// `encoder`'s tables and Huffman mode.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidDimensions`] for zero or >65535 dimensions.
    pub fn new(encoder: &'e Encoder, width: usize, height: usize) -> Result<Self, CodecError> {
        if width == 0 || height == 0 || width > 0xFFFF || height > 0xFFFF {
            return Err(CodecError::InvalidDimensions { width, height });
        }
        let optimize = encoder.huffman_optimized();
        Ok(StreamEncoder {
            encoder,
            width,
            height,
            strip_count: strip_count_for(height),
            analyzed: 0,
            encoded: 0,
            tallies: optimize.then(Box::default),
            entropy: None,
            analyze_prev_dc: [0; 3],
            prev_dc: [0; 3],
            writer: BitWriter::new(),
            out: Vec::new(),
            prof: profile::current(),
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of strips each pass must feed.
    pub fn strip_count(&self) -> usize {
        self.strip_count
    }

    /// Rows the strip at `index` must carry (8, except a shorter final
    /// strip when the height is not a multiple of 8).
    ///
    /// # Panics
    ///
    /// Panics if `index >= strip_count()`.
    pub fn strip_rows(&self, index: usize) -> usize {
        strip_rows_for(self.height, index)
    }

    /// Whether this session needs the analysis pass before encoding —
    /// true iff the encoder uses per-image optimized Huffman tables.
    pub fn needs_analysis_pass(&self) -> bool {
        self.encoder.huffman_optimized()
    }

    fn check_strip(&self, strip: &PixelStrip, fed: usize) -> Result<(), CodecError> {
        if fed >= self.strip_count {
            return Err(CodecError::StreamState(format!(
                "all {} strips already fed",
                self.strip_count
            )));
        }
        if strip.width() != self.width || strip.rows() != self.strip_rows(fed) {
            return Err(CodecError::StreamState(format!(
                "strip {fed}: got {}x{}, expected {}x{}",
                strip.width(),
                strip.rows(),
                self.width,
                self.strip_rows(fed)
            )));
        }
        Ok(())
    }

    /// Analysis-pass step: runs stages 1–5 on the strip and folds the
    /// entropy symbols into the optimized-Huffman tallies. Must be called
    /// for every strip, in order, before the first
    /// [`encode_strip`](Self::encode_strip).
    ///
    /// # Errors
    ///
    /// [`CodecError::StreamState`] on out-of-order or mis-shaped strips,
    /// or when the encoder uses standard tables (no analysis needed).
    pub fn analyze_strip(
        &mut self,
        strip: &PixelStrip,
        ws: &mut EncodeWorkspace,
    ) -> Result<(), CodecError> {
        if !self.needs_analysis_pass() {
            return Err(CodecError::StreamState(
                "standard-Huffman sessions have no analysis pass".into(),
            ));
        }
        if self.encoded > 0 {
            return Err(CodecError::StreamState(
                "analysis pass after encoding started".into(),
            ));
        }
        self.check_strip(strip, self.analyzed)?;
        {
            let _t = maybe_timer(self.prof, Stage::EncodeColor);
            blockize_strip(strip, ws);
        }
        transform_strip(ws, self.encoder.tables(), self.prof);
        let _t = maybe_timer(self.prof, Stage::EncodeEntropy);
        let t = self
            .tallies
            .as_mut()
            .expect("optimized sessions hold tallies until encoding starts");
        let bw = ws.bw;
        for b in 0..bw {
            for ci in 0..3 {
                let (dcf, acf) = if ci == 0 {
                    (&mut t.dc_luma, &mut t.ac_luma)
                } else {
                    (&mut t.dc_chroma, &mut t.ac_chroma)
                };
                self.analyze_prev_dc[ci] =
                    tally_block(dcf, acf, &ws.coeffs[ci * bw + b], self.analyze_prev_dc[ci]);
            }
        }
        self.analyzed += 1;
        Ok(())
    }

    /// Builds the Huffman encoders and emits every header segment — runs
    /// once, before the first strip's scan bytes.
    fn begin(&mut self) -> Result<(), CodecError> {
        let specs = match self.tallies.take() {
            Some(t) => (
                HuffmanSpec::from_frequencies(&t.dc_luma)?,
                HuffmanSpec::from_frequencies(&t.ac_luma)?,
                HuffmanSpec::from_frequencies(&t.dc_chroma)?,
                HuffmanSpec::from_frequencies(&t.ac_chroma)?,
            ),
            None => (
                HuffmanSpec::standard_dc_luma(),
                HuffmanSpec::standard_ac_luma(),
                HuffmanSpec::standard_dc_chroma(),
                HuffmanSpec::standard_ac_chroma(),
            ),
        };
        self.entropy = Some(EntropyEncoders {
            dc_luma: HuffmanEncoder::from_spec(&specs.0)?,
            ac_luma: HuffmanEncoder::from_spec(&specs.1)?,
            dc_chroma: HuffmanEncoder::from_spec(&specs.2)?,
            ac_chroma: HuffmanEncoder::from_spec(&specs.3)?,
        });
        write_headers(
            &mut self.out,
            self.encoder.tables(),
            self.width,
            self.height,
            [&specs.0, &specs.1, &specs.2, &specs.3],
        );
        Ok(())
    }

    /// Encode-pass step: stages 1–5 on the strip, then the sequential
    /// Entropy stage (DC prediction chains through the scan, so strips
    /// must arrive in order). Headers are emitted with the first strip.
    ///
    /// # Errors
    ///
    /// [`CodecError::StreamState`] on out-of-order or mis-shaped strips,
    /// or when an optimized session's analysis pass is incomplete.
    pub fn encode_strip(
        &mut self,
        strip: &PixelStrip,
        ws: &mut EncodeWorkspace,
    ) -> Result<(), CodecError> {
        if self.needs_analysis_pass() && self.analyzed < self.strip_count {
            return Err(CodecError::StreamState(format!(
                "optimized-Huffman sessions need the full analysis pass first \
                 ({}/{} strips analyzed)",
                self.analyzed, self.strip_count
            )));
        }
        self.check_strip(strip, self.encoded)?;
        if self.encoded == 0 {
            self.begin()?;
        }
        {
            let _t = maybe_timer(self.prof, Stage::EncodeColor);
            blockize_strip(strip, ws);
        }
        transform_strip(ws, self.encoder.tables(), self.prof);
        let _t = maybe_timer(self.prof, Stage::EncodeEntropy);
        let e = self
            .entropy
            .as_ref()
            .expect("begin() built the entropy encoders");
        let bw = ws.bw;
        for b in 0..bw {
            for ci in 0..3 {
                let (dce, ace) = if ci == 0 {
                    (&e.dc_luma, &e.ac_luma)
                } else {
                    (&e.dc_chroma, &e.ac_chroma)
                };
                self.prev_dc[ci] = encode_block(
                    &mut self.writer,
                    dce,
                    ace,
                    &ws.coeffs[ci * bw + b],
                    self.prev_dc[ci],
                );
            }
        }
        self.encoded += 1;
        Ok(())
    }

    /// Drains the output bytes produced so far (headers plus complete scan
    /// bytes). Concatenating every drained chunk with the
    /// [`finish`](Self::finish) remainder yields the complete JFIF stream;
    /// never draining and taking everything from `finish` is equally
    /// valid.
    pub fn take_output(&mut self) -> Vec<u8> {
        let mut chunk = std::mem::take(&mut self.out);
        chunk.extend(self.writer.take_completed());
        chunk
    }

    /// Completes the session: pads the final entropy byte and appends EOI,
    /// returning all not-yet-drained output.
    ///
    /// # Errors
    ///
    /// [`CodecError::StreamState`] unless every strip was encoded.
    pub fn finish(mut self) -> Result<Vec<u8>, CodecError> {
        if self.encoded != self.strip_count {
            return Err(CodecError::StreamState(format!(
                "finish after {}/{} strips",
                self.encoded, self.strip_count
            )));
        }
        let mut out = std::mem::take(&mut self.out);
        out.extend(std::mem::take(&mut self.writer).finish());
        write_marker(&mut out, EOI);
        Ok(out)
    }
}

/// A pull-based streaming decode session over a complete JFIF byte
/// stream: headers are parsed once, pixel strips come out one at a time
/// with O(strip) working memory.
pub struct StreamDecoder<'b> {
    setup: ScanSetup,
    bits: BitReader<'b>,
    strip_count: usize,
    emitted: usize,
    prev_dc: [i32; 3],
    prof: Option<&'static Profiler>,
}

impl<'b> StreamDecoder<'b> {
    pub(crate) fn open(bytes: &'b [u8]) -> Result<Self, CodecError> {
        let setup = ScanSetup::parse(bytes)?;
        let bits = BitReader::new(&bytes[setup.scan_start..]);
        let strip_count = strip_count_for(setup.height);
        Ok(StreamDecoder {
            setup,
            bits,
            strip_count,
            emitted: 0,
            prev_dc: [0; 3],
            prof: profile::current(),
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.setup.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.setup.height
    }

    /// Number of strips the image decodes as.
    pub fn strip_count(&self) -> usize {
        self.strip_count
    }

    /// Rows of the strip at `index` (8, except a shorter final strip).
    ///
    /// # Panics
    ///
    /// Panics if `index >= strip_count()`.
    pub fn strip_rows(&self, index: usize) -> usize {
        strip_rows_for(self.setup.height, index)
    }

    /// Decodes the next strip into `strip`. Returns `Ok(false)` once every
    /// strip has been produced.
    ///
    /// The Entropy stage is sequential (DC prediction chains through the
    /// scan); the per-block Unzigzag → Dequantize → Idct stage fans out on
    /// the `deepn-parallel` pool with index-addressed writes, so pixels
    /// are bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] / [`CodecError::BadHuffmanCode`] on
    /// truncated or corrupt entropy data.
    pub fn next_strip(
        &mut self,
        ws: &mut DecodeWorkspace,
        strip: &mut PixelStrip,
    ) -> Result<bool, CodecError> {
        if self.emitted == self.strip_count {
            return Ok(false);
        }
        let w = self.setup.width;
        ws.ensure(w);
        let bw = ws.bw;
        // Inverse stage 1 — Entropy (sequential).
        {
            let _t = maybe_timer(self.prof, Stage::DecodeEntropy);
            for b in 0..bw {
                for (ci, comp) in self.setup.components.iter().enumerate() {
                    let zz = decode_block(&mut self.bits, &comp.dc, &comp.ac, self.prev_dc[ci])?;
                    self.prev_dc[ci] = zz[0];
                    ws.coeffs[ci * bw + b] = zz;
                }
            }
        }
        // Inverse stages 2–4 — Unzigzag → Dequantize → Idct (parallel,
        // index-addressed). A profiled session stages through `ws.dequant`
        // to time Dequantize and Idct separately — identical math, same
        // bytes (see `transform_strip`).
        let comps = &self.setup.components;
        if let Some(p) = self.prof {
            if ws.dequant.len() != ws.coeffs.len() {
                ws.dequant.clear();
                ws.dequant.resize(ws.coeffs.len(), [0.0; 64]);
            }
            {
                let _t = p.timer(Stage::DecodeDequant);
                deepn_parallel::par_map_into(&ws.coeffs, &mut ws.dequant, |i, zz| {
                    comps[i / bw].quant.dequantize(&unscan(zz))
                });
            }
            let _t = p.timer(Stage::DecodeIdct);
            deepn_parallel::par_map_into(&ws.dequant, &mut ws.blocks, |_, blk| {
                inverse_dct_8x8(blk)
            });
        } else {
            let coeffs = &ws.coeffs;
            deepn_parallel::par_map_into(coeffs, &mut ws.blocks, |i, zz| {
                let q = &comps[i / bw].quant;
                inverse_dct_8x8(&q.dequantize(&unscan(zz)))
            });
        }
        let _t = maybe_timer(self.prof, Stage::DecodeColor);
        // Inverse stage 5 — BlockMerge: reassemble the valid rows, undo
        // the level shift, discard edge padding.
        let rows = self.strip_rows(self.emitted);
        for ci in 0..3 {
            let plane = &mut ws.planes[ci];
            for bx in 0..bw {
                let blk = &ws.blocks[ci * bw + bx];
                for iy in 0..rows {
                    for ix in 0..BLOCK_SIZE {
                        let sx = bx * BLOCK_SIZE + ix;
                        if sx >= w {
                            break;
                        }
                        plane[iy * w + sx] = blk[iy * BLOCK_SIZE + ix] + 128.0;
                    }
                }
            }
        }
        // Inverse stage 6 — ColorConvert⁻¹ into the pixel strip.
        strip.width = w;
        strip.rows = rows;
        strip.data.clear();
        for y in 0..rows {
            for x in 0..w {
                let ycc = [
                    ws.planes[0][y * w + x],
                    ws.planes[1][y * w + x],
                    ws.planes[2][y * w + x],
                ];
                strip.data.extend_from_slice(&ycbcr_to_rgb(ycc));
            }
        }
        self.emitted += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Decoder;

    fn stream_encode(enc: &Encoder, img: &RgbImage, ws: &mut EncodeWorkspace) -> Vec<u8> {
        let mut session = StreamEncoder::new(enc, img.width(), img.height()).expect("open");
        let mut strip = PixelStrip::new();
        if session.needs_analysis_pass() {
            for s in 0..session.strip_count() {
                assert!(strip.copy_from_image(img, s));
                session.analyze_strip(&strip, ws).expect("analyze");
            }
        }
        let mut out = Vec::new();
        for s in 0..session.strip_count() {
            assert!(strip.copy_from_image(img, s));
            session.encode_strip(&strip, ws).expect("encode");
            out.extend(session.take_output()); // exercise incremental drain
        }
        out.extend(session.finish().expect("finish"));
        out
    }

    #[test]
    fn manual_session_matches_oneshot_in_both_huffman_modes() {
        let mut ws = EncodeWorkspace::new();
        for (w, h) in [(16, 16), (9, 7), (1, 1), (1, 17), (33, 1), (24, 8)] {
            let img = RgbImage::gradient(w, h);
            for optimize in [true, false] {
                let enc = Encoder::with_quality(70).optimize_huffman(optimize);
                let streamed = stream_encode(&enc, &img, &mut ws);
                assert_eq!(
                    streamed,
                    enc.encode(&img).expect("oneshot"),
                    "{w}x{h} optimize={optimize}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_across_widths_does_not_leak_state() {
        let enc = Encoder::with_quality(55);
        let mut ws = EncodeWorkspace::new();
        let sizes = [(40, 12), (7, 30), (40, 12), (16, 16)];
        for (w, h) in sizes {
            let img = RgbImage::gradient(w, h);
            assert_eq!(
                stream_encode(&enc, &img, &mut ws),
                enc.encode(&img).expect("oneshot"),
                "{w}x{h}"
            );
        }
    }

    #[test]
    fn stream_decoder_reproduces_decode() {
        let img = RgbImage::gradient(37, 21);
        let bytes = Encoder::with_quality(65).encode(&img).expect("encode");
        let dec = Decoder::new();
        let oneshot = dec.decode(&bytes).expect("decode");
        let mut session = dec.stream_decoder(&bytes).expect("open");
        assert_eq!((session.width(), session.height()), (37, 21));
        let mut ws = DecodeWorkspace::new();
        let mut strip = PixelStrip::new();
        let mut pixels = Vec::new();
        let mut strips = 0;
        while session.next_strip(&mut ws, &mut strip).expect("strip") {
            assert_eq!(strip.width(), 37);
            pixels.extend_from_slice(strip.as_bytes());
            strips += 1;
        }
        assert_eq!(strips, session.strip_count());
        assert_eq!(pixels, oneshot.as_bytes());
    }

    #[test]
    fn profiled_sessions_produce_identical_bytes() {
        let img = RgbImage::gradient(29, 23);
        let enc = Encoder::with_quality(70);
        let mut ws = EncodeWorkspace::new();
        let plain = stream_encode(&enc, &img, &mut ws);
        crate::profile::enable();
        let profiled = stream_encode(&enc, &img, &mut ws);
        let dec = Decoder::new();
        let pixels_profiled = dec.decode(&plain).expect("decode profiled");
        crate::profile::disable();
        let pixels_plain = dec.decode(&plain).expect("decode plain");
        assert_eq!(plain, profiled, "profiling must not change encoded bytes");
        assert_eq!(
            pixels_profiled.as_bytes(),
            pixels_plain.as_bytes(),
            "profiling must not change decoded pixels"
        );
    }

    #[test]
    fn session_misuse_is_a_typed_stream_state_error() {
        let enc = Encoder::with_quality(75); // optimized by default
        let img = RgbImage::gradient(10, 20);
        let mut ws = EncodeWorkspace::new();
        let mut strip = PixelStrip::new();
        strip.copy_from_image(&img, 0);

        // Encoding before the analysis pass.
        let mut s = StreamEncoder::new(&enc, 10, 20).expect("open");
        assert!(matches!(
            s.encode_strip(&strip, &mut ws),
            Err(CodecError::StreamState(_))
        ));
        // Analysis on a standard-table session.
        let std_enc = Encoder::with_quality(75).optimize_huffman(false);
        let mut s = StreamEncoder::new(&std_enc, 10, 20).expect("open");
        assert!(matches!(
            s.analyze_strip(&strip, &mut ws),
            Err(CodecError::StreamState(_))
        ));
        // A mis-shaped strip.
        let wrong = RgbImage::gradient(11, 8);
        let mut bad = PixelStrip::new();
        bad.copy_from_image(&wrong, 0);
        assert!(matches!(
            s.encode_strip(&bad, &mut ws),
            Err(CodecError::StreamState(_))
        ));
        // Finishing early.
        let s = StreamEncoder::new(&std_enc, 10, 20).expect("open");
        assert!(matches!(s.finish(), Err(CodecError::StreamState(_))));
    }

    #[test]
    fn strip_geometry_helpers_cover_ragged_heights() {
        let enc = Encoder::with_quality(75);
        let s = StreamEncoder::new(&enc, 5, 17).expect("open");
        assert_eq!(s.strip_count(), 3);
        assert_eq!(s.strip_rows(0), 8);
        assert_eq!(s.strip_rows(2), 1);
        assert_eq!(strip_count_for(8), 1);
        assert_eq!(strip_count_for(9), 2);
        assert!(StreamEncoder::new(&enc, 0, 4).is_err());
        assert!(StreamEncoder::new(&enc, 70_000, 4).is_err());
    }

    #[test]
    fn set_rows_validates_geometry() {
        let mut strip = PixelStrip::new();
        assert!(strip.set_rows(4, 2, &[0u8; 24]).is_ok());
        assert_eq!((strip.width(), strip.rows()), (4, 2));
        assert!(strip.set_rows(4, 2, &[0u8; 23]).is_err());
        assert!(strip.set_rows(4, 9, &[0u8; 4 * 9 * 3]).is_err());
        assert!(strip.set_rows(0, 1, &[]).is_err());
    }
}
