//! JFIF marker-segment writing and parsing (the container format).

use crate::CodecError;

/// Start of image.
pub const SOI: u8 = 0xD8;
/// End of image.
pub const EOI: u8 = 0xD9;
/// JFIF application segment 0.
pub const APP0: u8 = 0xE0;
/// Define quantization table(s).
pub const DQT: u8 = 0xDB;
/// Baseline sequential start of frame.
pub const SOF0: u8 = 0xC0;
/// Define Huffman table(s).
pub const DHT: u8 = 0xC4;
/// Start of scan.
pub const SOS: u8 = 0xDA;

/// Appends a bare marker (`FF xx`) with no payload.
pub fn write_marker(out: &mut Vec<u8>, marker: u8) {
    out.push(0xFF);
    out.push(marker);
}

/// Appends a marker segment with a length-prefixed payload.
///
/// # Panics
///
/// Panics if the payload exceeds the 16-bit segment limit.
pub fn write_segment(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    assert!(payload.len() + 2 <= 0xFFFF, "segment payload too large");
    write_marker(out, marker);
    let len = (payload.len() + 2) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

/// The standard 16-byte JFIF 1.01 APP0 payload (no thumbnail, 1:1 aspect).
pub fn jfif_app0_payload() -> Vec<u8> {
    vec![
        b'J', b'F', b'I', b'F', 0x00, // identifier
        0x01, 0x01, // version 1.01
        0x00, // units: aspect ratio only
        0x00, 0x01, 0x00, 0x01, // 1:1 density
        0x00, 0x00, // no thumbnail
    ]
}

/// A parsed marker segment: the marker code and its payload bounds within
/// the source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Marker code (the byte after `0xFF`).
    pub marker: u8,
    /// Payload start offset in the source buffer.
    pub start: usize,
    /// Payload end offset (exclusive).
    pub end: usize,
}

/// Iterates marker segments from the start of a JPEG byte stream, stopping
/// after SOS (whose entropy-coded data follows unframed).
#[derive(Debug)]
pub struct SegmentReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    seen_sos: bool,
}

impl<'a> SegmentReader<'a> {
    /// Creates a reader and checks the SOI signature.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMarker`] if the stream does not start with SOI.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        if bytes.len() < 2 || bytes[0] != 0xFF || bytes[1] != SOI {
            return Err(CodecError::BadMarker("missing SOI signature".into()));
        }
        Ok(SegmentReader {
            bytes,
            pos: 2,
            seen_sos: false,
        })
    }

    /// Position of the first entropy-coded byte (valid after SOS was
    /// returned by [`next_segment`](Self::next_segment)).
    pub fn scan_start(&self) -> usize {
        self.pos
    }

    /// Reads the next marker segment.
    ///
    /// Returns `Ok(None)` at EOI. After returning the SOS segment the
    /// iterator stops (use [`scan_start`](Self::scan_start) to locate the
    /// entropy-coded data).
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] on truncation,
    /// [`CodecError::BadMarker`] on framing violations.
    pub fn next_segment(&mut self) -> Result<Option<Segment>, CodecError> {
        if self.seen_sos {
            return Ok(None);
        }
        // Skip fill bytes (0xFF padding before a marker is legal).
        while self.pos + 1 < self.bytes.len()
            && self.bytes[self.pos] == 0xFF
            && self.bytes[self.pos + 1] == 0xFF
        {
            self.pos += 1;
        }
        if self.pos + 2 > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        if self.bytes[self.pos] != 0xFF {
            return Err(CodecError::BadMarker(format!(
                "expected marker at offset {}, found {:#04x}",
                self.pos, self.bytes[self.pos]
            )));
        }
        let marker = self.bytes[self.pos + 1];
        self.pos += 2;
        if marker == EOI {
            return Ok(None);
        }
        if marker == SOI {
            return Err(CodecError::BadMarker("nested SOI".into()));
        }
        if self.pos + 2 > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let len = usize::from(u16::from_be_bytes([
            self.bytes[self.pos],
            self.bytes[self.pos + 1],
        ]));
        if len < 2 || self.pos + len > self.bytes.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let seg = Segment {
            marker,
            start: self.pos + 2,
            end: self.pos + len,
        };
        self.pos += len;
        if marker == SOS {
            self.seen_sos = true;
        }
        Ok(Some(seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_round_trip() {
        let mut out = Vec::new();
        write_marker(&mut out, SOI);
        write_segment(&mut out, APP0, &jfif_app0_payload());
        write_segment(&mut out, DQT, &[0x00, 1, 2, 3]);
        write_segment(&mut out, SOS, &[0x01]);
        out.extend_from_slice(&[0xAA, 0xBB]); // entropy data
        write_marker(&mut out, EOI);

        let mut r = SegmentReader::new(&out).expect("valid SOI");
        let s1 = r.next_segment().expect("ok").expect("segment");
        assert_eq!(s1.marker, APP0);
        assert_eq!(&out[s1.start..s1.start + 4], b"JFIF");
        let s2 = r.next_segment().expect("ok").expect("segment");
        assert_eq!(s2.marker, DQT);
        assert_eq!(&out[s2.start..s2.end], &[0x00, 1, 2, 3]);
        let s3 = r.next_segment().expect("ok").expect("segment");
        assert_eq!(s3.marker, SOS);
        assert_eq!(out[r.scan_start()], 0xAA);
        assert_eq!(r.next_segment().expect("ok"), None);
    }

    #[test]
    fn rejects_missing_soi() {
        assert!(SegmentReader::new(&[0x00, 0x01]).is_err());
        assert!(SegmentReader::new(&[]).is_err());
    }

    #[test]
    fn rejects_truncated_segment() {
        let mut out = Vec::new();
        write_marker(&mut out, SOI);
        out.extend_from_slice(&[0xFF, DQT, 0x00, 0x50]); // claims 0x50 bytes
        let mut r = SegmentReader::new(&out).expect("valid SOI");
        assert!(matches!(r.next_segment(), Err(CodecError::UnexpectedEof)));
    }

    #[test]
    fn eoi_terminates() {
        let mut out = Vec::new();
        write_marker(&mut out, SOI);
        write_marker(&mut out, EOI);
        let mut r = SegmentReader::new(&out).expect("valid SOI");
        assert_eq!(r.next_segment().expect("ok"), None);
    }
}
