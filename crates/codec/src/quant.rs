//! Quantization tables and the quantize/dequantize stage — the component
//! DeepN-JPEG redesigns.

use crate::block::Block;
use crate::CodecError;

/// The ITU T.81 Annex K.1 luminance table, in natural (row-major) order.
pub const STANDARD_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The ITU T.81 Annex K.2 chrominance table, in natural order.
pub const STANDARD_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// A 64-entry quantization table in natural (row-major) order.
///
/// ```
/// use deepn_codec::QuantTable;
///
/// let t = QuantTable::standard_luma().scaled(50);
/// assert_eq!(t.value(0, 0), 16); // QF=50 is the unscaled base table
/// let finer = QuantTable::standard_luma().scaled(100);
/// assert!(finer.value(7, 7) <= t.value(7, 7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuantTable {
    values: [u16; 64],
}

impl QuantTable {
    /// Wraps explicit table values (natural order).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadQuantTable`] if any entry is zero.
    pub fn new(values: [u16; 64]) -> Result<Self, CodecError> {
        if values.contains(&0) {
            return Err(CodecError::BadQuantTable("zero quantization step".into()));
        }
        Ok(QuantTable { values })
    }

    /// The Annex K luminance base table.
    pub fn standard_luma() -> Self {
        QuantTable {
            values: STANDARD_LUMA,
        }
    }

    /// The Annex K chrominance base table.
    pub fn standard_chroma() -> Self {
        QuantTable {
            values: STANDARD_CHROMA,
        }
    }

    /// A uniform table with every step equal to `q` (the paper's "SAME-Q"
    /// baseline).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn uniform(q: u16) -> Self {
        assert!(q > 0, "quantization step must be positive");
        QuantTable { values: [q; 64] }
    }

    /// Scales the table with the IJG quality-factor convention:
    /// `QF = 50` leaves the table unchanged, larger QF refines it,
    /// smaller QF coarsens it. Entries are clamped to `[1, 255]`
    /// (baseline-compatible).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= quality <= 100`.
    pub fn scaled(&self, quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        let q = u32::from(quality);
        let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
        let mut values = [0u16; 64];
        for (v, &base) in values.iter_mut().zip(self.values.iter()) {
            let s = (u32::from(base) * scale + 50) / 100;
            *v = s.clamp(1, 255) as u16;
        }
        QuantTable { values }
    }

    /// Table entry at `(row, col)` of the 8×8 grid.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` exceeds 7.
    pub fn value(&self, row: usize, col: usize) -> u16 {
        assert!(row < 8 && col < 8, "table index out of bounds");
        self.values[row * 8 + col]
    }

    /// All 64 entries in natural order.
    pub fn values(&self) -> &[u16; 64] {
        &self.values
    }

    /// Replaces the entry at natural index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64` or `v == 0`.
    pub fn set(&mut self, i: usize, v: u16) {
        assert!(i < 64, "table index out of bounds");
        assert!(v > 0, "quantization step must be positive");
        self.values[i] = v;
    }

    /// Largest step in the table (determines the DQT precision flag).
    pub fn max_value(&self) -> u16 {
        *self.values.iter().max().expect("table is non-empty")
    }

    /// Quantizes a DCT coefficient block: `round(c / q)` per entry.
    pub fn quantize(&self, coeffs: &Block) -> [i32; 64] {
        let mut out = [0i32; 64];
        for ((o, &c), &q) in out.iter_mut().zip(coeffs.iter()).zip(self.values.iter()) {
            *o = (c / f32::from(q)).round() as i32;
        }
        out
    }

    /// Reconstructs coefficients from quantized levels: `level * q`.
    pub fn dequantize(&self, levels: &[i32; 64]) -> Block {
        let mut out = [0.0f32; 64];
        for ((o, &l), &q) in out.iter_mut().zip(levels.iter()).zip(self.values.iter()) {
            *o = (l as f32) * f32::from(q);
        }
        out
    }
}

/// The luma/chroma table pair carried by an encoder (JPEG allows up to four
/// tables; baseline color uses two).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuantTablePair {
    /// Table for the Y component.
    pub luma: QuantTable,
    /// Table shared by the Cb and Cr components.
    pub chroma: QuantTable,
}

impl QuantTablePair {
    /// Standard Annex K tables scaled to `quality` (1–100, IJG convention).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= quality <= 100`.
    pub fn standard(quality: u8) -> Self {
        QuantTablePair {
            luma: QuantTable::standard_luma().scaled(quality),
            chroma: QuantTable::standard_chroma().scaled(quality),
        }
    }

    /// Uniform tables (the "SAME-Q" baseline of the paper's Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn uniform(q: u16) -> Self {
        QuantTablePair {
            luma: QuantTable::uniform(q),
            chroma: QuantTable::uniform(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_tables_favor_low_frequencies() {
        let t = QuantTable::standard_luma();
        assert!(t.value(0, 0) < t.value(7, 7));
        assert!(t.value(0, 1) < t.value(0, 7));
    }

    #[test]
    fn new_rejects_zero_step() {
        let mut v = [1u16; 64];
        v[10] = 0;
        assert!(matches!(
            QuantTable::new(v),
            Err(CodecError::BadQuantTable(_))
        ));
    }

    #[test]
    fn qf100_is_all_ones_scaled_min() {
        let t = QuantTable::standard_luma().scaled(100);
        // IJG at QF=100: (base*0 + 50)/100 = 0 -> clamped to 1.
        assert!(t.values().iter().all(|&v| v == 1));
    }

    #[test]
    fn qf50_is_identity_scale() {
        let t = QuantTable::standard_luma().scaled(50);
        assert_eq!(t.values(), &STANDARD_LUMA);
    }

    #[test]
    fn lower_quality_coarsens_monotonically() {
        let base = QuantTable::standard_luma();
        for qf in [90u8, 70, 50, 30, 10] {
            let a = base.scaled(qf);
            let b = base.scaled(qf - 5);
            for i in 0..64 {
                assert!(b.values()[i] >= a.values()[i], "qf {qf} idx {i}");
            }
        }
    }

    #[test]
    fn quantize_dequantize_bounds_error_by_half_step() {
        let t = QuantTable::uniform(10);
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f32) * 3.7 - 100.0;
        }
        let levels = t.quantize(&block);
        let back = t.dequantize(&levels);
        for (orig, rec) in block.iter().zip(back.iter()) {
            assert!((orig - rec).abs() <= 5.0 + 1e-3);
        }
    }

    #[test]
    fn uniform_pair_matches_same_q_semantics() {
        let p = QuantTablePair::uniform(4);
        assert!(p.luma.values().iter().all(|&v| v == 4));
        assert!(p.chroma.values().iter().all(|&v| v == 4));
    }

    #[test]
    #[should_panic(expected = "quality must be in 1..=100")]
    fn scaled_rejects_zero_quality() {
        QuantTable::standard_luma().scaled(0);
    }
}
