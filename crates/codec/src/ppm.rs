//! Binary PPM (P6) image I/O, so images and codec artifacts can be
//! inspected with standard tools. PPM is the simplest interoperable RGB
//! container and keeps this crate free of image-format dependencies.

use crate::{CodecError, RgbImage};
use std::io::{Read, Write};

/// Serializes an image as binary PPM (P6, maxval 255).
///
/// Pass `&mut` of any writer (e.g. a `File` or `Vec<u8>`).
///
/// # Errors
///
/// I/O errors from the writer.
pub fn write_ppm<W: Write>(image: &RgbImage, mut writer: W) -> std::io::Result<()> {
    write!(writer, "P6\n{} {}\n255\n", image.width(), image.height())?;
    writer.write_all(image.as_bytes())
}

/// Parses a binary PPM (P6) stream.
///
/// Supports `#` comments in the header and any whitespace separation, per
/// the Netpbm specification; only maxval 255 is accepted.
///
/// # Errors
///
/// [`CodecError::BadMarker`] for malformed headers,
/// [`CodecError::Unsupported`] for non-P6 or non-8-bit files,
/// [`CodecError::UnexpectedEof`] for truncated pixel data.
pub fn read_ppm<R: Read>(mut reader: R) -> Result<RgbImage, CodecError> {
    let mut data = Vec::new();
    reader
        .read_to_end(&mut data)
        .map_err(|_| CodecError::UnexpectedEof)?;
    let mut pos = 0usize;

    let magic = take_token(&data, &mut pos)?;
    if magic != b"P6" {
        return Err(CodecError::Unsupported(format!(
            "PPM magic {:?} (only binary P6 is supported)",
            String::from_utf8_lossy(&magic)
        )));
    }
    let width = parse_number(&take_token(&data, &mut pos)?)?;
    let height = parse_number(&take_token(&data, &mut pos)?)?;
    let maxval = parse_number(&take_token(&data, &mut pos)?)?;
    if maxval != 255 {
        return Err(CodecError::Unsupported(format!("PPM maxval {maxval}")));
    }
    // Exactly one whitespace byte separates the header from pixel data;
    // take_token already consumed it.
    let need = width * height * 3;
    if data.len() < pos + need {
        return Err(CodecError::UnexpectedEof);
    }
    RgbImage::from_bytes(width, height, data[pos..pos + need].to_vec())
}

/// Writes just the P6 header, for row-streaming writers that follow it
/// with `height * width * 3` raw bytes (e.g. the `deepn decompress` CLI,
/// which emits pixel strips as they decode).
///
/// # Errors
///
/// I/O errors from the writer.
pub fn write_ppm_header<W: Write>(
    mut writer: W,
    width: usize,
    height: usize,
) -> std::io::Result<()> {
    write!(writer, "P6\n{width} {height}\n255\n")
}

/// An incremental binary-PPM (P6) reader: the header is parsed eagerly,
/// pixel rows are pulled on demand — so a large image never needs to be
/// resident at once. Feeding the `deepn compress` CLI's streaming path.
#[derive(Debug)]
pub struct PpmRowReader<R> {
    reader: R,
    width: usize,
    height: usize,
    rows_read: usize,
}

impl<R: Read> PpmRowReader<R> {
    /// Parses the P6 header (comments and arbitrary whitespace accepted,
    /// maxval 255 only), leaving the reader positioned at the first pixel
    /// byte.
    ///
    /// # Errors
    ///
    /// As [`read_ppm`], for the header portion.
    pub fn new(mut reader: R) -> Result<Self, CodecError> {
        let mut tok = HeaderTokenizer::new(&mut reader);
        let magic = tok.token()?;
        if magic != b"P6" {
            return Err(CodecError::Unsupported(format!(
                "PPM magic {:?} (only binary P6 is supported)",
                String::from_utf8_lossy(&magic)
            )));
        }
        let width = parse_number(&tok.token()?)?;
        let height = parse_number(&tok.token()?)?;
        let maxval = parse_number(&tok.token()?)?;
        if maxval != 255 {
            return Err(CodecError::Unsupported(format!("PPM maxval {maxval}")));
        }
        if width == 0 || height == 0 {
            return Err(CodecError::InvalidDimensions { width, height });
        }
        Ok(PpmRowReader {
            reader,
            width,
            height,
            rows_read: 0,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads up to `rows` pixel rows into `buf` (replacing its contents),
    /// returning how many were read — 0 only after the last row.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the pixel data is truncated.
    pub fn read_rows(&mut self, rows: usize, buf: &mut Vec<u8>) -> Result<usize, CodecError> {
        let take = rows.min(self.height - self.rows_read);
        buf.clear();
        buf.resize(take * self.width * 3, 0);
        self.reader
            .read_exact(buf)
            .map_err(|_| CodecError::UnexpectedEof)?;
        self.rows_read += take;
        Ok(take)
    }
}

/// Byte-at-a-time header tokenizer with the same grammar as `take_token`,
/// but over a streaming reader: it never consumes past the single
/// whitespace byte that terminates the maxval token.
struct HeaderTokenizer<'r, R> {
    reader: &'r mut R,
}

impl<'r, R: Read> HeaderTokenizer<'r, R> {
    fn new(reader: &'r mut R) -> Self {
        HeaderTokenizer { reader }
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let mut b = [0u8; 1];
        self.reader
            .read_exact(&mut b)
            .map_err(|_| CodecError::UnexpectedEof)?;
        Ok(b[0])
    }

    fn token(&mut self) -> Result<Vec<u8>, CodecError> {
        // Skip whitespace and comments.
        let mut b = self.byte()?;
        loop {
            if b.is_ascii_whitespace() {
                b = self.byte()?;
            } else if b == b'#' {
                while b != b'\n' {
                    b = self.byte()?;
                }
            } else {
                break;
            }
        }
        // Collect through the single terminating whitespace byte.
        let mut token = Vec::new();
        while !b.is_ascii_whitespace() {
            token.push(b);
            b = self.byte()?;
        }
        if token.is_empty() {
            return Err(CodecError::BadMarker("empty PPM header token".into()));
        }
        Ok(token)
    }
}

/// Reads the next whitespace-delimited token, skipping `#` comments, and
/// consumes the single whitespace byte that terminates it.
fn take_token(data: &[u8], pos: &mut usize) -> Result<Vec<u8>, CodecError> {
    // Skip whitespace and comments.
    loop {
        while *pos < data.len() && data[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < data.len() && data[*pos] == b'#' {
            while *pos < data.len() && data[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let start = *pos;
    while *pos < data.len() && !data[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    if start == *pos {
        return Err(CodecError::BadMarker("empty PPM header token".into()));
    }
    let token = data[start..*pos].to_vec();
    if *pos < data.len() {
        *pos += 1; // the single terminating whitespace byte
    }
    Ok(token)
}

fn parse_number(token: &[u8]) -> Result<usize, CodecError> {
    std::str::from_utf8(token)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            CodecError::BadMarker(format!(
                "invalid PPM header number {:?}",
                String::from_utf8_lossy(token)
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_pixels() {
        let img = RgbImage::gradient(13, 7);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).expect("write succeeds");
        let back = read_ppm(&buf[..]).expect("read succeeds");
        assert_eq!(img, back);
    }

    #[test]
    fn header_is_canonical() {
        let img = RgbImage::new(2, 3);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).expect("write succeeds");
        assert!(buf.starts_with(b"P6\n2 3\n255\n"));
        assert_eq!(buf.len(), 11 + 18);
    }

    #[test]
    fn comments_and_odd_whitespace_parse() {
        let mut buf: Vec<u8> = b"P6 # a comment\n# another\n 2\t1 \n255\n".to_vec();
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let img = read_ppm(&buf[..]).expect("read succeeds");
        assert_eq!((img.width(), img.height()), (2, 1));
        assert_eq!(img.get(1, 0), [4, 5, 6]);
    }

    #[test]
    fn row_reader_matches_whole_file_parse() {
        let img = RgbImage::gradient(11, 19);
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).expect("write succeeds");
        let mut reader = PpmRowReader::new(&buf[..]).expect("header parses");
        assert_eq!((reader.width(), reader.height()), (11, 19));
        let mut rows = Vec::new();
        let mut pixels = Vec::new();
        loop {
            let n = reader.read_rows(8, &mut rows).expect("rows read");
            if n == 0 {
                break;
            }
            pixels.extend_from_slice(&rows);
        }
        assert_eq!(pixels, img.as_bytes());
    }

    #[test]
    fn row_reader_accepts_comments_and_rejects_truncation() {
        let mut buf: Vec<u8> = b"P6 # a comment\n# another\n 2\t1 \n255\n".to_vec();
        buf.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let mut reader = PpmRowReader::new(&buf[..]).expect("header parses");
        let mut rows = Vec::new();
        assert_eq!(reader.read_rows(8, &mut rows).expect("row"), 1);
        assert_eq!(rows, vec![1, 2, 3, 4, 5, 6]);

        let cut: &[u8] = b"P6\n2 2\n255\n\x01\x02";
        let mut reader = PpmRowReader::new(cut).expect("header parses");
        assert!(matches!(
            reader.read_rows(8, &mut rows),
            Err(CodecError::UnexpectedEof)
        ));
    }

    #[test]
    fn header_writer_matches_write_ppm_prefix() {
        let img = RgbImage::new(5, 4);
        let mut whole = Vec::new();
        write_ppm(&img, &mut whole).expect("write succeeds");
        let mut header = Vec::new();
        write_ppm_header(&mut header, 5, 4).expect("header writes");
        assert!(whole.starts_with(&header));
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(matches!(
            read_ppm(&b"P3\n1 1\n255\n000"[..]),
            Err(CodecError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_truncated_pixels() {
        let buf: &[u8] = b"P6\n2 2\n255\n\x01\x02";
        assert!(matches!(read_ppm(buf), Err(CodecError::UnexpectedEof)));
    }

    #[test]
    fn rejects_16_bit_maxval() {
        assert!(matches!(
            read_ppm(&b"P6\n1 1\n65535\n\0\0\0\0\0\0"[..]),
            Err(CodecError::Unsupported(_))
        ));
    }
}
